//! Methodological check: the simulation's *shape* results must not depend
//! on the scale factor. DESIGN.md promises that `--scale` only divides
//! request volumes; hit rates, geographic shares, and availability are
//! scale-free.

use nagano_cluster::{ClusterConfig, ClusterSim};
use nagano_db::GamesConfig;
use nagano_workload::Region;

fn run_at(scale: f64) -> nagano_cluster::ClusterReport {
    ClusterSim::new(ClusterConfig {
        scale,
        seed: 99,
        games: GamesConfig::small(),
        start_day: 4,
        end_day: 6,
        ..Default::default()
    })
    .run()
}

#[test]
fn shape_metrics_are_scale_free() {
    let coarse = run_at(60_000.0);
    let fine = run_at(15_000.0);

    // Volumes scale ~4x …
    let ratio = fine.total_requests as f64 / coarse.total_requests as f64;
    assert!((ratio - 4.0).abs() < 0.4, "volume ratio {ratio}");
    // … paper-unit totals agree …
    let coarse_paper = coarse.total_requests_paper();
    let fine_paper = fine.total_requests_paper();
    assert!(
        (coarse_paper / fine_paper - 1.0).abs() < 0.05,
        "paper totals {coarse_paper:.0} vs {fine_paper:.0}"
    );
    // … and the shape metrics match within sampling noise.
    assert_eq!(coarse.availability(), 1.0);
    assert_eq!(fine.availability(), 1.0);
    assert!((coarse.hit_rate() - fine.hit_rate()).abs() < 0.01);
    for region in Region::ALL {
        let share = |r: &nagano_cluster::ClusterReport| {
            *r.by_region.get(&region).unwrap_or(&0) as f64 / r.total_requests as f64
        };
        let (a, b) = (share(&coarse), share(&fine));
        assert!((a - b).abs() < 0.03, "{}: {a:.3} vs {b:.3}", region.label());
    }
    // Per-site traffic split is stable too.
    let total_c: f64 = coarse.per_site_totals().iter().sum();
    let total_f: f64 = fine.per_site_totals().iter().sum();
    for site in 0..4 {
        let a = coarse.per_site_totals()[site] / total_c;
        let b = fine.per_site_totals()[site] / total_f;
        assert!((a - b).abs() < 0.03, "site {site}: {a:.3} vs {b:.3}");
    }
}

#[test]
fn freshness_is_scale_free() {
    // Update application timing has nothing to do with request volume.
    let coarse = run_at(60_000.0);
    let fine = run_at(15_000.0);
    assert_eq!(coarse.updates_applied, fine.updates_applied);
    assert!((coarse.freshness.mean() - fine.freshness.mean()).abs() < 1.0);
    assert!(coarse.freshness_max < 60.0 && fine.freshness_max < 60.0);
}
