//! The determinism contract, end to end (DESIGN.md §10): two cluster
//! runs with the same seed must export **byte-identical** telemetry —
//! the Prometheus text, the JSON snapshot, the hourly JSONL series,
//! the update-lineage trace trees, and the SLO verdicts.
//! This is the runtime twin of the `nagano-lint` static gate: D001–D003
//! keep wall clocks, OS entropy, and randomized-order maps out of the
//! sim paths, and this test catches anything the linter cannot see.

use std::path::{Path, PathBuf};

use nagano_cluster::{
    scripted_chaos_plan, scripted_serving_plan, ClusterConfig, ClusterSim, ServingResilience,
};
use nagano_db::GamesConfig;
use nagano_simcore::SimTime;

const EXPORTS: [&str; 5] = [
    "metrics.prom",
    "metrics.json",
    "telemetry_hourly.jsonl",
    "traces.jsonl",
    "slo.json",
];

/// Run a one-day sim exporting telemetry into a fresh subdirectory of
/// the cargo-provided test tmpdir; returns the export directory.
fn run_exporting(seed: u64, tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join("determinism")
        .join(tag);
    // Stale files from a previous test run must not mask a regression.
    let _ = std::fs::remove_dir_all(&dir);
    ClusterSim::new(ClusterConfig {
        scale: 20_000.0,
        seed,
        games: GamesConfig::small(),
        start_day: 3,
        end_day: 3,
        export_dir: Some(dir.clone()),
        ..Default::default()
    })
    .run();
    dir
}

#[test]
fn same_seed_runs_export_byte_identical_telemetry() {
    let a = run_exporting(42, "seed42_a");
    let b = run_exporting(42, "seed42_b");
    for name in EXPORTS {
        let left = std::fs::read(a.join(name)).unwrap_or_else(|e| panic!("read {name}: {e}"));
        let right = std::fs::read(b.join(name)).unwrap_or_else(|e| panic!("read {name}: {e}"));
        assert!(!left.is_empty(), "{name} must not be empty");
        assert_eq!(
            left, right,
            "{name} differs between two same-seed runs — nondeterminism leaked into telemetry"
        );
    }
}

/// Like [`run_exporting`], but over the update-dense day 10 with the
/// day-0 slice of the scripted chaos schedule active: lossy and delayed
/// replication links, catch-up retries, and the convergence audit all
/// on the clock.
fn run_chaos_exporting(seed: u64, tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join("determinism")
        .join(tag);
    let _ = std::fs::remove_dir_all(&dir);
    ClusterSim::new(ClusterConfig {
        scale: 20_000.0,
        seed,
        games: GamesConfig::small(),
        start_day: 10,
        end_day: 10,
        fault_plan: scripted_chaos_plan(10)
            .into_iter()
            .filter(|e| e.at < SimTime::at(11, 0, 0))
            .collect(),
        export_dir: Some(dir.clone()),
        audit_convergence: true,
        ..Default::default()
    })
    .run();
    dir
}

#[test]
fn same_seed_chaos_runs_export_byte_identical_telemetry() {
    // Fault injection is part of the deterministic surface: drops,
    // delivery jitter, catch-up retries, and recovery replays must all
    // replay exactly from the seed.
    let a = run_chaos_exporting(42, "chaos42_a");
    let b = run_chaos_exporting(42, "chaos42_b");
    for name in EXPORTS {
        let left = std::fs::read(a.join(name)).unwrap_or_else(|e| panic!("read {name}: {e}"));
        let right = std::fs::read(b.join(name)).unwrap_or_else(|e| panic!("read {name}: {e}"));
        assert!(!left.is_empty(), "{name} must not be empty");
        assert_eq!(
            left, right,
            "{name} differs between two same-seed chaos runs — fault \
             injection leaked nondeterminism into telemetry"
        );
    }
    // The chaos schedule must actually exercise the fault-path metrics.
    let prom = std::fs::read_to_string(a.join("metrics.prom")).expect("read chaos metrics.prom");
    for metric in [
        "nagano_cluster_replication_lag_txns",
        "nagano_cluster_retries_total",
        "nagano_trigger_recoveries_total",
    ] {
        assert!(prom.contains(metric), "{metric} missing from chaos export");
    }
}

/// Like [`run_exporting`], but under the hotness-aware Hybrid policy on
/// the update-dense day 10: EWMA folds, priority ranking, budget
/// deferral, and drain ticks are all on the deterministic surface.
fn run_hybrid_exporting(seed: u64, tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join("determinism")
        .join(tag);
    let _ = std::fs::remove_dir_all(&dir);
    ClusterSim::new(ClusterConfig {
        scale: 20_000.0,
        seed,
        games: GamesConfig::small(),
        start_day: 10,
        end_day: 10,
        policy: nagano_trigger::ConsistencyPolicy::hybrid(0.5, Some(400)),
        export_dir: Some(dir.clone()),
        ..Default::default()
    })
    .run();
    dir
}

#[test]
fn same_seed_hybrid_runs_export_byte_identical_telemetry() {
    let a = run_hybrid_exporting(42, "hybrid42_a");
    let b = run_hybrid_exporting(42, "hybrid42_b");
    for name in EXPORTS {
        let left = std::fs::read(a.join(name)).unwrap_or_else(|e| panic!("read {name}: {e}"));
        let right = std::fs::read(b.join(name)).unwrap_or_else(|e| panic!("read {name}: {e}"));
        assert!(!left.is_empty(), "{name} must not be empty");
        assert_eq!(
            left, right,
            "{name} differs between two same-seed Hybrid runs — the \
             hotness scheduler leaked nondeterminism into telemetry"
        );
    }
    // The scheduler's own metrics are part of the exported surface.
    let prom = std::fs::read_to_string(a.join("metrics.prom")).expect("read hybrid metrics.prom");
    for metric in [
        "nagano_trigger_regen_saved_ms_total",
        "nagano_trigger_regen_cpu_ms_total",
        "nagano_trigger_pages_deferred_total",
        "nagano_trigger_weighted_staleness_seconds",
    ] {
        assert!(prom.contains(metric), "{metric} missing from hybrid export");
    }
}

/// Like [`run_exporting`], but with the serving-plane resilience
/// machinery on and the scripted serving-fault schedule active: render
/// slowdowns, a backend outage (breaker trips + seeded retry backoff),
/// and a cache cold-restart are all on the deterministic surface.
fn run_resilience_exporting(seed: u64, tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join("determinism")
        .join(tag);
    let _ = std::fs::remove_dir_all(&dir);
    ClusterSim::new(ClusterConfig {
        scale: 20_000.0,
        seed,
        games: GamesConfig::small(),
        start_day: 10,
        end_day: 10,
        policy: nagano_trigger::ConsistencyPolicy::Invalidate,
        serving_fault_plan: scripted_serving_plan(10),
        resilience: Some(ServingResilience::default()),
        export_dir: Some(dir.clone()),
        ..Default::default()
    })
    .run();
    dir
}

#[test]
fn same_seed_resilience_runs_export_byte_identical_telemetry() {
    // The resilience paths draw retry jitter from their own fork of the
    // run seed; two same-seed runs must still replay byte-identically.
    let a = run_resilience_exporting(42, "resilience42_a");
    let b = run_resilience_exporting(42, "resilience42_b");
    for name in EXPORTS {
        let left = std::fs::read(a.join(name)).unwrap_or_else(|e| panic!("read {name}: {e}"));
        let right = std::fs::read(b.join(name)).unwrap_or_else(|e| panic!("read {name}: {e}"));
        assert!(!left.is_empty(), "{name} must not be empty");
        assert_eq!(
            left, right,
            "{name} differs between two same-seed resilience runs — the \
             serving-plane fault machinery leaked nondeterminism into telemetry"
        );
    }
    // The schedule must actually exercise the resilience metrics.
    let prom =
        std::fs::read_to_string(a.join("metrics.prom")).expect("read resilience metrics.prom");
    for metric in [
        "nagano_cache_stale_served_total",
        "nagano_cache_coalesced_total",
    ] {
        assert!(
            prom.contains(metric),
            "{metric} missing from resilience export"
        );
    }
}

/// Like [`run_exporting`], but with fragment-level caching on: plan
/// index builds, fragment-store refreshes, recomposition ordering, and
/// the fragment counters are all on the deterministic surface.
fn run_fragment_exporting(seed: u64, tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join("determinism")
        .join(tag);
    let _ = std::fs::remove_dir_all(&dir);
    ClusterSim::new(ClusterConfig {
        scale: 20_000.0,
        seed,
        games: GamesConfig::small(),
        start_day: 10,
        end_day: 10,
        policy: nagano_trigger::ConsistencyPolicy::hybrid(0.5, Some(400)),
        fragment_mode: true,
        export_dir: Some(dir.clone()),
        ..Default::default()
    })
    .run();
    dir
}

#[test]
fn same_seed_fragment_runs_export_byte_identical_telemetry() {
    // Fragment mode renders dirty fragments in parallel before the
    // ordered distribute loop; two same-seed runs must still replay
    // byte-identically — no rayon scheduling order may leak.
    let a = run_fragment_exporting(42, "fragment42_a");
    let b = run_fragment_exporting(42, "fragment42_b");
    for name in EXPORTS {
        let left = std::fs::read(a.join(name)).unwrap_or_else(|e| panic!("read {name}: {e}"));
        let right = std::fs::read(b.join(name)).unwrap_or_else(|e| panic!("read {name}: {e}"));
        assert!(!left.is_empty(), "{name} must not be empty");
        assert_eq!(
            left, right,
            "{name} differs between two same-seed fragment runs — \
             fragment composition leaked nondeterminism into telemetry"
        );
    }
    // The fragment counters are part of the exported surface.
    let prom = std::fs::read_to_string(a.join("metrics.prom")).expect("read fragment metrics.prom");
    for metric in [
        "nagano_trigger_fragments_regenerated_total",
        "nagano_trigger_pages_recomposed_total",
    ] {
        assert!(
            prom.contains(metric),
            "{metric} missing from fragment export"
        );
    }
}

#[test]
fn different_seeds_actually_change_the_exports() {
    // Guard against the vacuous version of the test above: if the
    // exports ignored the workload entirely they would trivially match.
    let a = run_exporting(42, "seed42_c");
    let c = run_exporting(43, "seed43");
    let left = std::fs::read(a.join("metrics.json")).expect("read seed-42 metrics.json");
    let right = std::fs::read(c.join("metrics.json")).expect("read seed-43 metrics.json");
    assert_ne!(left, right, "seed must influence exported telemetry");
}

#[test]
fn lint_json_export_is_byte_identical_across_runs() {
    // The static gate falls under the same determinism contract as the
    // telemetry: two scans of the same tree must produce the same
    // bytes (sorted findings, ordered file walk — no map-order or
    // inode-order leaks), and the tree itself must be clean.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..");
    let first = nagano_lint::lint_workspace(&root).expect("first scan");
    let second = nagano_lint::lint_workspace(&root).expect("second scan");
    assert!(first.files_scanned > 50, "scanned {}", first.files_scanned);
    assert!(
        first.is_clean(),
        "workspace has lint findings:\n{:#?}",
        first.diagnostics
    );
    let left = nagano_lint::render_json(&first.diagnostics, first.files_scanned);
    let right = nagano_lint::render_json(&second.diagnostics, second.files_scanned);
    assert_eq!(left, right, "lint --json output must be byte-identical");
    let sarif_a = nagano_lint::render_sarif(&first.diagnostics, first.files_scanned);
    let sarif_b = nagano_lint::render_sarif(&second.diagnostics, second.files_scanned);
    assert_eq!(sarif_a, sarif_b, "SARIF output must be byte-identical");
}
