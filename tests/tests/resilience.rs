//! Serving-path resilience properties (DESIGN.md §11a): the
//! single-flight stampede pin — **exactly one regeneration per
//! (key, stale-epoch)** no matter how many concurrent misses race —
//! plus the serve-stale guarantees: a follower observes the fresh body
//! or a within-budget stale copy, never an error while a stale copy
//! exists, and tombstones respect the staleness age bound.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use bytes::Bytes;
use nagano::{BreakerConfig, CircuitBreaker, RetryBackoff};
use nagano_cache::{CacheConfig, FlightOutcome, PageCache, StalePolicy};
use nagano_simcore::DeterministicRng;
use proptest::prelude::*;

fn stale_cache() -> Arc<PageCache> {
    Arc::new(PageCache::new(
        CacheConfig::default().with_stale(StalePolicy::bounded(900.0)),
    ))
}

/// One stampede round: the main thread leads a flight for `key`, then
/// `followers` threads pile onto the same miss while it is open.
/// Returns the number of actual regenerations (body renders) the round
/// performed — the property is that this is always exactly 1.
fn stampede_round(cache: &Arc<PageCache>, key: &str, followers: usize, fresh: &str) -> usize {
    let token = match cache.join_or_lead(key, Duration::from_secs(5)) {
        FlightOutcome::Lead(t) => t,
        other => panic!("first miss must lead the flight, got {other:?}"),
    };
    let handles: Vec<_> = (0..followers)
        .map(|_| {
            let c = Arc::clone(cache);
            let key = key.to_string();
            thread::spawn(move || c.join_or_lead(&key, Duration::from_secs(5)))
        })
        .collect();
    // Let followers attach, then render once and publish.
    thread::sleep(Duration::from_millis(10));
    cache.put(key, Bytes::copy_from_slice(fresh.as_bytes()), 1.0);
    let page = cache.peek(key).expect("leader just inserted the body");
    cache.complete_flight(token, Some(page));
    let renders = 1usize;

    for h in handles {
        match h.join().expect("follower thread panicked") {
            // The single-flight contract: followers get the leader's
            // body without rendering.
            FlightOutcome::Joined(page) => assert_eq!(&page.body[..], fresh.as_bytes()),
            // Raced in after completion: the serving path re-checks the
            // cache, finds the fresh body, and renders nothing.
            FlightOutcome::Lead(t) => {
                let cached = cache.peek(key).expect("fresh body must be cached");
                assert_eq!(&cached.body[..], fresh.as_bytes());
                cache.complete_flight(t, Some(cached));
            }
            // Never an error while a stale copy exists: a timed-out
            // follower must have a within-budget fallback.
            FlightOutcome::TimedOut => {
                let copy = cache
                    .serve_stale(key)
                    .expect("timed-out follower must find a stale copy to serve");
                assert!(
                    copy.age_secs <= 900.0,
                    "stale fallback beyond the policy bound: {} s",
                    copy.age_secs
                );
            }
        }
    }
    renders
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any number of concurrent misses, across any number of
    /// invalidation rounds, regenerates each key exactly once per
    /// stale epoch — the stampede number the `resilience` experiment
    /// bounds at cluster scale.
    #[test]
    fn exactly_one_regeneration_per_key_and_stale_epoch(
        followers in 2usize..6,
        rounds in 1usize..4,
    ) {
        let cache = stale_cache();
        let key = "/results/jump";
        let mut regens = 0usize;
        for round in 0..rounds {
            if round > 0 {
                // live → stale transition bumps the epoch and leaves a
                // tombstone behind.
                prop_assert!(cache.invalidate(key));
                prop_assert_eq!(cache.stale_epoch(key), round as u64);
            }
            regens += stampede_round(&cache, key, followers, &format!("body-{round}"));
        }
        prop_assert_eq!(regens, rounds, "one regeneration per (key, stale-epoch)");
    }

    /// The retry schedule is part of the deterministic surface: the
    /// same seed yields the same jittered delays, every delay respects
    /// the cap, and the attempt budget is exact.
    #[test]
    fn retry_backoff_is_seeded_bounded_and_exhausts(seed in any::<u64>()) {
        let delays = |seed: u64| -> Vec<f64> {
            let mut rng = DeterministicRng::seed_from_u64(seed);
            let mut backoff = RetryBackoff::new(0.05, 0.4, 4);
            std::iter::from_fn(|| backoff.next_delay(&mut rng)).collect()
        };
        let a = delays(seed);
        let b = delays(seed);
        prop_assert_eq!(&a, &b, "same seed must replay the same schedule");
        prop_assert_eq!(a.len(), 4, "attempt budget is exact");
        for d in &a {
            prop_assert!(*d > 0.0 && *d <= 0.4, "delay {d} outside (0, max]");
        }
    }

    /// Consecutive failures always trip the breaker at the configured
    /// threshold, and the open window rejects until it elapses.
    #[test]
    fn breaker_trips_at_threshold_and_reopens_after_window(
        threshold in 1u32..8,
        open_secs in 1.0f64..60.0,
    ) {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            open_secs,
            probe_successes: 1,
        });
        for i in 0..threshold {
            prop_assert!(b.allow(f64::from(i)), "breaker must stay closed before the threshold");
            b.record_failure(f64::from(i));
        }
        prop_assert_eq!(b.trips(), 1, "threshold consecutive failures trip once");
        let tripped_at = f64::from(threshold - 1);
        prop_assert!(!b.allow(tripped_at + open_secs * 0.5), "open window must reject");
        prop_assert!(b.allow(tripped_at + open_secs + 0.001), "half-open probe after the window");
        b.record_success();
        prop_assert!(b.allow(tripped_at + open_secs + 0.002), "probe success re-closes");
    }
}

#[test]
fn stale_copies_respect_the_age_bound() {
    let cache = PageCache::new(CacheConfig::default().with_stale(StalePolicy::bounded(60.0)));
    cache.set_now_secs(0.0);
    cache.put("/medals", Bytes::from_static(b"gold: 1"), 1.0);
    cache.invalidate("/medals");
    cache.set_now_secs(59.0);
    let copy = cache.serve_stale("/medals").expect("within the bound");
    assert_eq!(&copy.body[..], b"gold: 1");
    assert!(copy.age_secs <= 60.0);
    // Past the bound the heartbeat prune retires the tombstone: the
    // caller sees a miss, never an over-age body.
    cache.set_now_secs(61.0);
    cache.prune_stale();
    assert!(
        cache.serve_stale("/medals").is_none(),
        "over-age stale copy must not be served"
    );
}
