//! Fragment-composition byte-equivalence suite (ISSUE 10, the PR-5
//! pattern).
//!
//! Fragment mode changes *how* pages are produced — skeleton plans plus
//! independently cached fragments instead of whole-page renders — but it
//! must never change a single served byte. The property: for an
//! arbitrary seed, day mix, and transaction prefix, every `PageKey` the
//! fragment-mode monitor serves is byte-identical to the legacy
//! whole-page renderer, with matching cache versions (the two modes do
//! the same *work*, not just reach the same bytes). Each content
//! category also gets a plain named driver so a regression pinpoints the
//! page family that broke.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use nagano_cache::{CacheConfig, CacheFleet, FragmentStore};
use nagano_db::{seed_games, AthleteId, GamesConfig, NewsArticle, NewsId, OlympicDb, Transaction};
use nagano_pagegen::{PageKey, PageRegistry, Renderer};
use nagano_simcore::{DeterministicRng, SimTime};
use nagano_trigger::{ConsistencyPolicy, TriggerMonitor};

fn fresh_db() -> Arc<OlympicDb> {
    let db = Arc::new(OlympicDb::new());
    seed_games(&db, &GamesConfig::small());
    db
}

/// A prewarmed fragment-mode monitor and a prewarmed legacy monitor over
/// the SAME db, each with its own two-member fleet.
fn monitor_pair(
    db: &Arc<OlympicDb>,
    policy: ConsistencyPolicy,
) -> (TriggerMonitor, TriggerMonitor, Arc<PageRegistry>) {
    let registry = Arc::new(PageRegistry::build(db, 16));
    let fragmented = TriggerMonitor::new(
        Renderer::new(Arc::clone(db)),
        Arc::new(CacheFleet::new(2, CacheConfig::default())),
        Arc::clone(&registry),
        policy,
    )
    .with_fragments(Arc::new(FragmentStore::new()));
    let legacy = TriggerMonitor::new(
        Renderer::new(Arc::clone(db)),
        Arc::new(CacheFleet::new(2, CacheConfig::default())),
        Arc::clone(&registry),
        policy,
    );
    fragmented.prewarm();
    legacy.prewarm();
    (fragmented, legacy, registry)
}

/// Deterministic mixed transaction prefix: result batches against random
/// events (random podium sizes, ~30% finals) interleaved with news
/// stories on the touched days — together these dirty every fragment
/// class (result tables, the medal table, headline strips).
fn generate_txns(
    db: &Arc<OlympicDb>,
    rng: &mut DeterministicRng,
    n: usize,
) -> Vec<Arc<Transaction>> {
    let events = db.events();
    (0..n)
        .map(|i| {
            let ev = &events[rng.index(events.len())];
            if rng.chance(0.25) {
                db.publish_news(NewsArticle {
                    id: NewsId(9_000 + i as u32),
                    day: ev.day,
                    title: format!("Late report {i}"),
                    body: format!("Fragment-equivalence probe on day {}", ev.day),
                    about_event: Some(ev.id),
                })
            } else {
                let pool = db.athletes_of_sport(ev.sport);
                let take = (3 + rng.index(5)).min(pool.len());
                let placements: Vec<(AthleteId, f64)> = pool
                    .iter()
                    .take(take)
                    .enumerate()
                    .map(|(i, a)| (a.id, 95.0 - i as f64 - rng.f64()))
                    .collect();
                db.record_results(ev.id, &placements, rng.chance(0.3), ev.day)
            }
        })
        .collect()
}

/// Canonical cache view of fleet member `member`: url → (body, version).
fn cache_state(monitor: &TriggerMonitor, member: usize) -> BTreeMap<String, (Vec<u8>, u64)> {
    monitor
        .fleet()
        .member(member)
        .export_entries()
        .into_iter()
        .map(|(key, body, _cost, version)| (key, (body.to_vec(), version)))
        .collect()
}

fn sorted(mut keys: Vec<PageKey>) -> Vec<PageKey> {
    keys.sort();
    keys
}

/// The core property. Drives both monitors txn-by-txn, asserting the
/// per-txn stale sets match, then checks the full final cache state
/// (keys, bodies AND versions) and — under update-in-place, where every
/// cached page is fresh — that every registry page equals a from-scratch
/// whole-page render.
fn check_fragment_equivalence(seed: u64, n: usize) {
    let db = fresh_db();
    let mut rng = DeterministicRng::seed_from_u64(seed);
    let txns = generate_txns(&db, &mut rng, n);
    let (fragmented, legacy, registry) = monitor_pair(&db, ConsistencyPolicy::UpdateInPlace);
    let now = SimTime::from_mins(5);
    for (i, txn) in txns.iter().enumerate() {
        let f = fragmented.process_txn_at(txn, now);
        let l = legacy.process_txn_at(txn, now);
        assert_eq!(
            sorted(f.regenerated.clone()),
            sorted(l.regenerated.clone()),
            "txn {i}: regenerated sets diverge between fragment and whole-page modes"
        );
    }
    for member in 0..2 {
        assert_eq!(
            cache_state(&fragmented, member),
            cache_state(&legacy, member),
            "member {member}: fragment-composed cache diverges from whole-page cache"
        );
    }
    // Third leg: composition must also agree with the *renderer itself*,
    // not merely with the legacy monitor's copy of its output.
    let fresh = Renderer::new(Arc::clone(&db));
    for key in registry.pages().iter().map(|(k, _)| *k) {
        let cached = fragmented
            .fleet()
            .member(0)
            .peek(&key.to_url())
            .unwrap_or_else(|| panic!("{key:?} missing from fragment-mode fleet"));
        assert_eq!(
            cached.body,
            fresh.render(key).body,
            "{key:?}: composed bytes diverge from a fresh whole-page render"
        );
    }
}

/// Named per-category driver: after the shared txn script, every cached
/// page whose url starts with one of `prefixes` must be byte-identical
/// across the two modes, and at least `min_pages` such pages must exist
/// (guarding against a vacuous pass if urls are renamed).
fn check_category(
    txns: &[Arc<Transaction>],
    fragmented: &TriggerMonitor,
    legacy: &TriggerMonitor,
    prefixes: &[&str],
    min_pages: usize,
) {
    let now = SimTime::from_mins(5);
    for txn in txns {
        fragmented.process_txn_at(txn, now);
        legacy.process_txn_at(txn, now);
    }
    let frag_state = cache_state(fragmented, 0);
    let legacy_state = cache_state(legacy, 0);
    let mut compared = 0usize;
    for (url, entry) in &legacy_state {
        if prefixes.iter().any(|p| url.starts_with(p)) {
            let composed = frag_state
                .get(url)
                .unwrap_or_else(|| panic!("{url} missing from fragment-mode fleet"));
            assert_eq!(composed, entry, "{url}: category bytes/version diverge");
            compared += 1;
        }
    }
    assert!(
        compared >= min_pages,
        "only {compared} pages matched {prefixes:?} — category check is vacuous"
    );
}

fn final_podium(db: &OlympicDb, ev: nagano_db::EventId) -> Vec<(AthleteId, f64)> {
    let event = db.event(ev).unwrap();
    db.athletes_of_sport(event.sport)
        .iter()
        .take(3)
        .enumerate()
        .map(|(i, a)| (a.id, 90.0 - i as f64))
        .collect()
}

#[test]
fn result_pages_compose_identically() {
    let db = fresh_db();
    let (fragmented, legacy, _registry) = monitor_pair(&db, ConsistencyPolicy::UpdateInPlace);
    let evs: Vec<_> = db.events().iter().take(3).cloned().collect();
    let txns: Vec<_> = evs
        .iter()
        .enumerate()
        .map(|(i, ev)| db.record_results(ev.id, &final_podium(&db, ev.id), i % 2 == 0, ev.day))
        .collect();
    check_category(
        &txns,
        &fragmented,
        &legacy,
        &["/events/", "/sports/", "/fragments/results/"],
        3,
    );
}

#[test]
fn medal_pages_compose_identically() {
    let db = fresh_db();
    let (fragmented, legacy, _registry) = monitor_pair(&db, ConsistencyPolicy::UpdateInPlace);
    // Finals move the medal standings — the shared MedalTable fragment
    // plus every country page's inline medal box.
    let evs: Vec<_> = db.events().iter().take(2).cloned().collect();
    let txns: Vec<_> = evs
        .iter()
        .map(|ev| db.record_results(ev.id, &final_podium(&db, ev.id), true, ev.day))
        .collect();
    check_category(&txns, &fragmented, &legacy, &["/medals", "/countries/"], 2);
}

#[test]
fn news_pages_compose_identically() {
    let db = fresh_db();
    let (fragmented, legacy, _registry) = monitor_pair(&db, ConsistencyPolicy::UpdateInPlace);
    let ev = db.events()[0].clone();
    // One update to an existing story, one brand-new story: both touch
    // the day's Headlines fragment and the news index.
    let existing = db.news_on_day(ev.day).first().map(|a| a.id);
    let mut txns = vec![db.publish_news(NewsArticle {
        id: NewsId(9_900),
        day: ev.day,
        title: "Stop-press".into(),
        body: "Fresh story for the headline strip".into(),
        about_event: Some(ev.id),
    })];
    if let Some(id) = existing {
        txns.push(db.publish_news(NewsArticle {
            id,
            day: ev.day,
            title: "Corrected headline".into(),
            body: "Updated body".into(),
            about_event: None,
        }));
    }
    check_category(
        &txns,
        &fragmented,
        &legacy,
        &["/news", "/fragments/headlines/"],
        2,
    );
}

#[test]
fn home_and_welcome_pages_compose_identically() {
    let db = fresh_db();
    let (fragmented, legacy, _registry) = monitor_pair(&db, ConsistencyPolicy::UpdateInPlace);
    let ev = db.events()[1].clone();
    let txns = vec![
        db.record_results(ev.id, &final_podium(&db, ev.id), false, ev.day),
        db.record_results(ev.id, &final_podium(&db, ev.id), true, ev.day),
    ];
    check_category(&txns, &fragmented, &legacy, &["/day/", "/welcome"], 2);
}

#[test]
fn fragment_equivalence_plain_seeds() {
    for seed in [1, 42, 0x1998] {
        check_fragment_equivalence(seed, 4);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn prop_fragment_composition_is_byte_equivalent(seed in 0u64..(1u64 << 32), n in 1usize..7) {
        check_fragment_equivalence(seed, n);
    }
}
