//! Regeneration-precision suite for fragment mode (ISSUE 10).
//!
//! Byte-equivalence (`fragment_equivalence.rs`) proves fragment
//! composition serves the right bytes; this suite proves it does the
//! right *amount of work*, asserted through the `nagano_trigger_*`
//! counters: a single result transaction re-renders exactly one
//! `ResultTable` fragment and *recomposes* (never re-renders) the pages
//! embedding it; a medal-moving final renders the shared `MedalTable`
//! once no matter how many pages embed it; and a fragment whose
//! accumulated staleness lands exactly on the DUP threshold regenerates
//! (the `>=` edge), while one epsilon above the weight is tolerated.

use std::sync::Arc;

use nagano_cache::{CacheConfig, CacheFleet, FragmentStore};
use nagano_db::{seed_games, AthleteId, EventId, GamesConfig, OlympicDb};
use nagano_odg::StalenessPolicy;
use nagano_pagegen::{FragmentKey, PageKey, PageRegistry, Renderer};
use nagano_trigger::{ConsistencyPolicy, TriggerMonitor};

fn setup(policy: ConsistencyPolicy) -> (Arc<OlympicDb>, TriggerMonitor) {
    let db = Arc::new(OlympicDb::new());
    seed_games(&db, &GamesConfig::small());
    let registry = Arc::new(PageRegistry::build(&db, 16));
    let monitor = TriggerMonitor::new(
        Renderer::new(Arc::clone(&db)),
        Arc::new(CacheFleet::new(2, CacheConfig::default())),
        registry,
        policy,
    )
    .with_fragments(Arc::new(FragmentStore::new()));
    monitor.prewarm();
    (db, monitor)
}

fn podium(db: &OlympicDb, ev: EventId) -> Vec<(AthleteId, f64)> {
    let event = db.event(ev).unwrap();
    db.athletes_of_sport(event.sport)
        .iter()
        .take(3)
        .enumerate()
        .map(|(i, a)| (a.id, 90.0 - i as f64))
        .collect()
}

fn fragment_keys(keys: &[PageKey]) -> Vec<FragmentKey> {
    let mut frags: Vec<FragmentKey> = keys
        .iter()
        .filter_map(|k| match k {
            PageKey::Fragment(f) => Some(*f),
            _ => None,
        })
        .collect();
    frags.sort();
    frags
}

/// A single (non-final) result under a threshold that tolerates the
/// day's weight-0.5 `Headlines` edge re-renders exactly ONE fragment —
/// the event's `ResultTable` — and every embedding page recomposes from
/// its cached plan instead of re-rendering.
#[test]
fn single_result_txn_rerenders_exactly_one_fragment() {
    let (db, monitor) = setup(ConsistencyPolicy::UpdateInPlace);
    // 0.6 sits above the Headlines data edge (0.5) and below a full
    // strength-1.0 edge, isolating the ResultTable.
    monitor.set_staleness_policy(StalenessPolicy::Threshold(0.6));
    let ev = db.events()[0].clone();
    let before = monitor.stats().snapshot();
    let txn = db.record_results(ev.id, &podium(&db, ev.id), false, ev.day);
    let outcome = monitor.process_txn(&txn);

    assert_eq!(
        fragment_keys(&outcome.regenerated),
        vec![FragmentKey::ResultTable(ev.id)],
        "exactly the event's result table must re-render"
    );
    let after = monitor.stats().snapshot();
    assert_eq!(
        after.fragments_regenerated - before.fragments_regenerated,
        1,
        "nagano_trigger_fragments_regenerated_total must advance by one"
    );
    // The event page embeds the fragment and its skeleton reads no
    // result rows, so it must come back via recomposition.
    assert!(outcome.regenerated.contains(&PageKey::Event(ev.id)));
    assert!(
        after.pages_recomposed > before.pages_recomposed,
        "embedding pages must recompose, not re-render"
    );
    // Recomposition still lands the correct bytes.
    let cached = monitor
        .fleet()
        .member(0)
        .peek(&PageKey::Event(ev.id).to_url())
        .unwrap();
    assert_eq!(
        cached.body,
        Renderer::new(Arc::clone(&db))
            .render(PageKey::Event(ev.id))
            .body
    );
}

/// A medal-moving final dirties the `MedalTable` fragment that several
/// pages embed (the standings page and every day-home page). The shared
/// fragment renders ONCE; each embedder recomposes.
#[test]
fn medal_table_shared_by_many_pages_renders_once() {
    let (db, monitor) = setup(ConsistencyPolicy::UpdateInPlace);
    let ev = db.events()[0].clone();
    let before = monitor.stats().snapshot();
    let txn = db.record_results(ev.id, &podium(&db, ev.id), true, ev.day);
    let outcome = monitor.process_txn(&txn);

    // Strict policy: the final touches exactly three fragments — the
    // event's results, the standings table, and the day's headlines.
    assert_eq!(
        fragment_keys(&outcome.regenerated),
        vec![
            FragmentKey::ResultTable(ev.id),
            FragmentKey::MedalTable,
            FragmentKey::Headlines(ev.day),
        ],
        "a final dirties results + medal table + headlines, each once"
    );
    let after = monitor.stats().snapshot();
    assert_eq!(
        after.fragments_regenerated - before.fragments_regenerated,
        3,
        "each dirty fragment renders exactly once"
    );

    // The medal table is embedded by the standings page and the day-home
    // pages; all of them must be refreshed in this outcome, yet the
    // fragment itself appeared only once above.
    let embedders: Vec<&PageKey> = outcome
        .regenerated
        .iter()
        .filter(|k| matches!(k, PageKey::Medals | PageKey::Home(_)))
        .collect();
    assert!(
        embedders.len() >= 2,
        "medal table must fan out to at least standings + a home page, got {embedders:?}"
    );
    assert!(
        after.pages_recomposed > before.pages_recomposed,
        "embedders with clean skeletons recompose instead of re-rendering"
    );
    // And the fan-out still serves fresh standings everywhere.
    let fresh = Renderer::new(Arc::clone(&db));
    for key in [PageKey::Medals, PageKey::Home(ev.day)] {
        let cached = monitor.fleet().member(0).peek(&key.to_url()).unwrap();
        assert_eq!(cached.body, fresh.render(key).body, "{key:?}");
    }
}

/// DUP threshold edge semantics at fragment granularity: `Headlines`
/// accumulates staleness 0.5 from a result day-edge. A threshold of
/// exactly 0.5 must mark it stale (`>=`), one just above must tolerate
/// it — the fragment stays cached, slightly obsolete.
#[test]
fn fragment_exactly_at_dup_threshold_regenerates() {
    let headline = |day| PageKey::Fragment(FragmentKey::Headlines(day));

    // At the threshold: stale.
    let (db, monitor) = setup(ConsistencyPolicy::UpdateInPlace);
    monitor.set_staleness_policy(StalenessPolicy::Threshold(0.5));
    let ev = db.events()[0].clone();
    let txn = db.record_results(ev.id, &podium(&db, ev.id), false, ev.day);
    let outcome = monitor.process_txn(&txn);
    assert!(
        outcome.regenerated.contains(&headline(ev.day)),
        "staleness == threshold must regenerate (>= edge), got {:?}",
        outcome.regenerated
    );

    // Just above: tolerated, and the counter confirms only the result
    // table rendered.
    let (db, monitor) = setup(ConsistencyPolicy::UpdateInPlace);
    monitor.set_staleness_policy(StalenessPolicy::Threshold(0.5 + 1e-9));
    let ev = db.events()[0].clone();
    let before = monitor.stats().snapshot();
    let txn = db.record_results(ev.id, &podium(&db, ev.id), false, ev.day);
    let outcome = monitor.process_txn(&txn);
    assert!(
        outcome.tolerated.contains(&headline(ev.day)),
        "staleness below threshold must be tolerated, got {:?}",
        outcome.tolerated
    );
    assert!(!outcome.regenerated.contains(&headline(ev.day)));
    assert_eq!(
        monitor.stats().snapshot().fragments_regenerated - before.fragments_regenerated,
        1,
        "only the result-table fragment renders when headlines are tolerated"
    );
}
