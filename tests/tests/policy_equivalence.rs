//! Propagation policy equivalence suite (ISSUE 5).
//!
//! The `Hybrid` scheduler must *degenerate* exactly: with every page hot
//! and no budget it is `UpdateInPlace`; with every page cold it is
//! `Invalidate`. And under every policy, batch processing may coalesce
//! *work* but must never change final *state* relative to sequential
//! processing. Each property has a plain seeded `#[test]` driver (so the
//! core logic always runs) plus a proptest wrapper over random seeds.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use nagano_cache::{CacheConfig, CacheFleet, FragmentStore};
use nagano_db::{seed_games, AthleteId, GamesConfig, OlympicDb, Transaction};
use nagano_pagegen::{PageKey, PageRegistry, Renderer};
use nagano_simcore::{DeterministicRng, SimTime};
use nagano_trigger::{ConsistencyPolicy, TriggerMonitor, TxnOutcome};

fn fresh_db() -> Arc<OlympicDb> {
    let db = Arc::new(OlympicDb::new());
    seed_games(&db, &GamesConfig::small());
    db
}

/// A prewarmed monitor over `db` with a two-member fleet; with
/// `fragments` set the monitor runs in fragment-composition mode
/// (DESIGN.md §14), so the degenerate identities below are also checked
/// at fragment granularity.
fn monitor_for(db: &Arc<OlympicDb>, policy: ConsistencyPolicy, fragments: bool) -> TriggerMonitor {
    let registry = Arc::new(PageRegistry::build(db, 16));
    let fleet = Arc::new(CacheFleet::new(2, CacheConfig::default()));
    let mut monitor = TriggerMonitor::new(Renderer::new(Arc::clone(db)), fleet, registry, policy);
    if fragments {
        monitor = monitor.with_fragments(Arc::new(FragmentStore::new()));
    }
    monitor.prewarm();
    monitor
}

/// Deterministic pseudo-random result batch: `n` transactions against
/// randomly chosen events with randomly sized podiums. Committed to the
/// shared `db` up front so every monitor renders the same final state.
fn generate_txns(
    db: &Arc<OlympicDb>,
    rng: &mut DeterministicRng,
    n: usize,
) -> Vec<Arc<Transaction>> {
    let events = db.events();
    (0..n)
        .map(|_| {
            let ev = &events[rng.index(events.len())];
            let pool = db.athletes_of_sport(ev.sport);
            let take = (3 + rng.index(5)).min(pool.len());
            let placements: Vec<(AthleteId, f64)> = pool
                .iter()
                .take(take)
                .enumerate()
                .map(|(i, a)| (a.id, 95.0 - i as f64 - rng.f64()))
                .collect();
            db.record_results(ev.id, &placements, rng.chance(0.3), ev.day)
        })
        .collect()
}

/// Canonical cache view of fleet member `member`: url → (body, version).
fn cache_state(monitor: &TriggerMonitor, member: usize) -> BTreeMap<String, (Vec<u8>, u64)> {
    monitor
        .fleet()
        .member(member)
        .export_entries()
        .into_iter()
        .map(|(key, body, _cost, version)| (key, (body.to_vec(), version)))
        .collect()
}

/// Like [`cache_state`] but without versions — batch coalescing is
/// allowed to regenerate a page fewer times than sequential processing,
/// so only keys and bodies must agree.
fn cache_contents(monitor: &TriggerMonitor, member: usize) -> BTreeMap<String, Vec<u8>> {
    monitor
        .fleet()
        .member(member)
        .export_entries()
        .into_iter()
        .map(|(key, body, _cost, _version)| (key, body.to_vec()))
        .collect()
}

fn sorted(mut keys: Vec<PageKey>) -> Vec<PageKey> {
    keys.sort();
    keys
}

/// The pages an outcome *touched* (regenerated ∪ invalidated ∪ deferred),
/// sorted — the per-txn set the degenerate hybrids must reproduce.
fn touched(outcome: &TxnOutcome) -> Vec<PageKey> {
    let mut keys: Vec<PageKey> = outcome
        .regenerated
        .iter()
        .chain(&outcome.invalidated)
        .chain(&outcome.deferred)
        .copied()
        .collect();
    keys.sort();
    keys
}

/// Drive both monitors over the same transactions txn-by-txn and check
/// the per-txn outcome page sets plus the final cache state (bodies AND
/// versions — the degenerate forms must do the same work, not just reach
/// the same bytes).
fn check_degenerate_equivalence(
    seed: u64,
    n: usize,
    hybrid: ConsistencyPolicy,
    pure: ConsistencyPolicy,
    fragments: bool,
) {
    let db = fresh_db();
    let mut rng = DeterministicRng::seed_from_u64(seed);
    let txns = generate_txns(&db, &mut rng, n);
    let hybrid_monitor = monitor_for(&db, hybrid, fragments);
    let pure_monitor = monitor_for(&db, pure, fragments);
    let now = SimTime::from_mins(5);
    for (i, txn) in txns.iter().enumerate() {
        let h = hybrid_monitor.process_txn_at(txn, now);
        let p = pure_monitor.process_txn_at(txn, now);
        assert_eq!(
            touched(&h),
            touched(&p),
            "txn {i}: touched page sets diverge ({hybrid:?} vs {pure:?})"
        );
        assert_eq!(
            sorted(h.tolerated.clone()),
            sorted(p.tolerated.clone()),
            "txn {i}: tolerated sets diverge"
        );
    }
    assert_eq!(
        hybrid_monitor.deferred_len(),
        0,
        "degenerate hybrid must never defer"
    );
    for member in 0..2 {
        assert_eq!(
            cache_state(&hybrid_monitor, member),
            cache_state(&pure_monitor, member),
            "member {member}: final cache state diverges ({hybrid:?} vs {pure:?})"
        );
    }
}

/// Hybrid with everything hot and no budget regenerates exactly what
/// `UpdateInPlace` regenerates (the regenerated/invalidated split must
/// match, not just the union).
fn check_hybrid_full_hot_is_update_in_place(seed: u64, n: usize, fragments: bool) {
    let db = fresh_db();
    let mut rng = DeterministicRng::seed_from_u64(seed);
    let txns = generate_txns(&db, &mut rng, n);
    let hybrid = monitor_for(&db, ConsistencyPolicy::hybrid(1.0, None), fragments);
    let uip = monitor_for(&db, ConsistencyPolicy::UpdateInPlace, fragments);
    let now = SimTime::from_mins(5);
    for (i, txn) in txns.iter().enumerate() {
        let h = hybrid.process_txn_at(txn, now);
        let p = uip.process_txn_at(txn, now);
        assert_eq!(
            sorted(h.regenerated.clone()),
            sorted(p.regenerated.clone()),
            "txn {i}: regenerated sets diverge"
        );
        assert!(h.invalidated.is_empty(), "txn {i}: full-hot invalidated");
        assert!(h.deferred.is_empty(), "txn {i}: unbounded budget deferred");
    }
    for member in 0..2 {
        assert_eq!(cache_state(&hybrid, member), cache_state(&uip, member));
    }
}

/// Hybrid with everything cold invalidates exactly what `Invalidate`
/// invalidates.
fn check_hybrid_full_cold_is_invalidate(seed: u64, n: usize, fragments: bool) {
    let db = fresh_db();
    let mut rng = DeterministicRng::seed_from_u64(seed);
    let txns = generate_txns(&db, &mut rng, n);
    let hybrid = monitor_for(&db, ConsistencyPolicy::hybrid(0.0, Some(400)), fragments);
    let inv = monitor_for(&db, ConsistencyPolicy::Invalidate, fragments);
    let now = SimTime::from_mins(5);
    for (i, txn) in txns.iter().enumerate() {
        let h = hybrid.process_txn_at(txn, now);
        let p = inv.process_txn_at(txn, now);
        assert_eq!(
            sorted(h.invalidated.clone()),
            sorted(p.invalidated.clone()),
            "txn {i}: invalidated sets diverge"
        );
        assert!(h.regenerated.is_empty(), "txn {i}: full-cold regenerated");
        assert!(h.deferred.is_empty(), "txn {i}: full-cold deferred");
    }
    for member in 0..2 {
        assert_eq!(cache_state(&hybrid, member), cache_state(&inv, member));
    }
}

/// Give a monitor's hotness tracker a deterministic traffic profile so a
/// mid-range hot fraction produces a non-trivial hot/cold split.
fn heat(monitor: &TriggerMonitor, rng: &mut DeterministicRng) {
    let keys: Vec<String> = monitor
        .fleet()
        .member(0)
        .export_entries()
        .into_iter()
        .map(|(key, ..)| key)
        .collect();
    for key in &keys {
        // Zipf-ish: a few pages get many hits, most get few or none.
        let hits = if rng.chance(0.2) {
            20 + rng.index(30)
        } else {
            rng.index(3)
        };
        for _ in 0..hits {
            monitor.fleet().get_from(0, key);
        }
    }
    monitor.fleet().fold_hotness(1);
}

/// `process_batch` must leave the fleet in the same final *state* as
/// sequential `process_txn` calls under every policy (coalescing may
/// skip duplicate work, never change content). Bounded-budget hybrids
/// drain their deferred queues before comparison.
fn check_batch_matches_sequential(seed: u64, n: usize) {
    let policies = [
        ConsistencyPolicy::UpdateInPlace,
        ConsistencyPolicy::Invalidate,
        ConsistencyPolicy::Conservative96,
        ConsistencyPolicy::hybrid(0.5, None),
        ConsistencyPolicy::hybrid(0.75, Some(50)),
    ];
    for policy in policies {
        let db = fresh_db();
        let mut rng = DeterministicRng::seed_from_u64(seed);
        let txns = generate_txns(&db, &mut rng, n);
        let batched = monitor_for(&db, policy, false);
        let sequential = monitor_for(&db, policy, false);
        // Identical traffic on both monitors: the hot/cold split is a
        // pure function of the (shared) hotness profile, so it cannot
        // depend on batching.
        let mut heat_rng = DeterministicRng::seed_from_u64(seed ^ 0xbeef);
        heat(&batched, &mut heat_rng);
        let mut heat_rng = DeterministicRng::seed_from_u64(seed ^ 0xbeef);
        heat(&sequential, &mut heat_rng);

        let now = SimTime::from_mins(5);
        batched.process_batch_at(&txns, now);
        for txn in &txns {
            sequential.process_txn_at(txn, now);
        }
        // Budget overflow parks pages instead of dropping them; pump the
        // drain tick until both queues are empty (progress per tick is
        // guaranteed, so this terminates).
        for monitor in [&batched, &sequential] {
            let mut guard = 0;
            while monitor.deferred_len() > 0 {
                monitor.drain_deferred(now);
                guard += 1;
                assert!(guard < 100_000, "deferred queue failed to drain");
            }
        }
        for member in 0..2 {
            assert_eq!(
                cache_contents(&batched, member),
                cache_contents(&sequential, member),
                "member {member}: batch vs sequential state diverges under {policy:?}"
            );
        }
    }
}

#[test]
fn hybrid_full_hot_matches_update_in_place() {
    // The sentinels must hold whole-page AND at fragment granularity:
    // fragment mode changes what a "page" is (fragments are first-class
    // regeneration targets), not what the scheduler admits.
    for fragments in [false, true] {
        for seed in [1, 42, 0x1998] {
            check_hybrid_full_hot_is_update_in_place(seed, 4, fragments);
            check_degenerate_equivalence(
                seed,
                4,
                ConsistencyPolicy::hybrid(1.0, None),
                ConsistencyPolicy::UpdateInPlace,
                fragments,
            );
        }
    }
}

#[test]
fn hybrid_full_cold_matches_invalidate() {
    for fragments in [false, true] {
        for seed in [1, 42, 0x1998] {
            check_hybrid_full_cold_is_invalidate(seed, 4, fragments);
            check_degenerate_equivalence(
                seed,
                4,
                ConsistencyPolicy::hybrid(0.0, Some(400)),
                ConsistencyPolicy::Invalidate,
                fragments,
            );
        }
    }
}

#[test]
fn batch_equals_sequential_under_every_policy() {
    for seed in [7, 42] {
        check_batch_matches_sequential(seed, 5);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn prop_hybrid_full_hot_matches_update_in_place(seed in 0u64..(1u64 << 32), n in 1usize..6) {
        check_hybrid_full_hot_is_update_in_place(seed, n, false);
    }

    #[test]
    fn prop_hybrid_full_cold_matches_invalidate(seed in 0u64..(1u64 << 32), n in 1usize..6) {
        check_hybrid_full_cold_is_invalidate(seed, n, false);
    }

    #[test]
    fn prop_fragment_hybrid_full_hot_matches_update_in_place(
        seed in 0u64..(1u64 << 32), n in 1usize..6
    ) {
        check_hybrid_full_hot_is_update_in_place(seed, n, true);
    }

    #[test]
    fn prop_fragment_hybrid_full_cold_matches_invalidate(
        seed in 0u64..(1u64 << 32), n in 1usize..6
    ) {
        check_hybrid_full_cold_is_invalidate(seed, n, true);
    }

    #[test]
    fn prop_batch_equals_sequential(seed in 0u64..(1u64 << 32), n in 1usize..5) {
        check_batch_matches_sequential(seed, n);
    }
}
