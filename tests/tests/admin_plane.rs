//! The live admin plane, scraped over real TCP while the site serves
//! page traffic: `/metrics` stays well-formed Prometheus text mid-run,
//! `/status` tracks the trigger monitor's progress, and wrapping the
//! page handler in the plane leaves overload shedding (503 +
//! Retry-After on the accept thread) untouched.

use std::io::Read;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use nagano::{ServingSite, SiteConfig};
use nagano_httpd::{
    AdminPlane, Handler, HttpClient, Request, Response, Server, ServerConfig, Status, StatusFn,
};
use nagano_telemetry::{parse_prometheus_line, MetricsRegistry};

#[test]
fn metrics_and_status_scrape_over_tcp_mid_run() {
    let site = Arc::new(ServingSite::build(SiteConfig::small()));
    let registry = Arc::new(MetricsRegistry::new());
    site.bind_telemetry(&registry, &[("site", "tokyo")]);
    let server = site
        .serve_admin_http("127.0.0.1:0", 0, registry, ServerConfig::default())
        .unwrap();
    let mut client = HttpClient::connect(server.addr()).unwrap();

    // Generate real traffic and a real update so the scrape observes a
    // site in motion, not a quiescent one.
    let (code, _) = client.get("/medals").unwrap();
    assert_eq!(code, 200);
    let ev = site.db().events()[0].clone();
    let a = site.db().athletes_of_sport(ev.sport)[0].clone();
    site.db()
        .record_results(ev.id, &[(a.id, 9.0)], true, ev.day);
    site.pump();
    let (code, _) = client.get("/medals").unwrap();
    assert_eq!(code, 200);

    // /metrics: every non-comment line must parse as Prometheus text,
    // and the live cells must reflect the traffic just served.
    let (code, body) = client.get("/metrics").unwrap();
    assert_eq!(code, 200);
    let text = String::from_utf8(body.to_vec()).unwrap();
    let mut parsed = 0usize;
    for line in text
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
    {
        assert!(
            parse_prometheus_line(line).is_some(),
            "malformed exposition line: {line}"
        );
        parsed += 1;
    }
    assert!(parsed > 10, "expected a real scrape, got {parsed} samples");
    assert!(text.contains("nagano_trigger_txns_total{site=\"tokyo\"} 1"));
    assert!(text.contains("nagano_cache_hits_total{node=\"0\",site=\"tokyo\"}"));
    assert!(text.contains("nagano_httpd_admin_scrapes_total 1"));

    // /status: the JSON document tracks the same run.
    let (code, body) = client.get("/status").unwrap();
    assert_eq!(code, 200);
    let doc = String::from_utf8(body.to_vec()).unwrap();
    assert!(doc.starts_with("{\"pages\":"), "{doc}");
    assert!(doc.ends_with("]}"), "{doc}");
    assert!(doc.contains("\"txns\":1"), "{doc}");
    assert!(doc.contains("\"watermark\":1"), "{doc}");
    assert!(doc.contains("\"deferred_depth\":0"), "{doc}");
    assert!(doc.contains("\"node\":1"), "{doc}");

    // /healthz: liveness while all of the above was in flight.
    let (code, body) = client.get("/healthz").unwrap();
    assert_eq!(code, 200);
    assert_eq!(&body[..], b"ok\n");

    // Page traffic still flows after the scrapes.
    let (code, _) = client.get("/day/1/").unwrap();
    assert_eq!(code, 200);
    drop(client);
    server.shutdown();
}

#[test]
fn admin_plane_leaves_overload_shedding_untouched() {
    use crossbeam::channel;

    let (started_tx, started_rx) = channel::bounded::<()>(1);
    let (release_tx, release_rx) = channel::bounded::<()>(1);
    let slow: Arc<dyn Handler> = Arc::new(move |_req: &Request| {
        let _ = started_tx.send(());
        let _ = release_rx.recv();
        Response::text(Status::Ok, "slow")
    });
    let registry = Arc::new(MetricsRegistry::new());
    let status: StatusFn = Arc::new(|| "{}".to_string());
    let handler: Arc<dyn Handler> =
        Arc::new(AdminPlane::new(Arc::clone(&registry), status).with_inner(slow));
    let server = Server::bind(
        "127.0.0.1:0",
        handler,
        ServerConfig {
            workers: 1,
            backlog: 1,
            retry_after_secs: 3,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    // Occupy the single worker, then fill the single pending slot.
    let busy = std::thread::spawn(move || {
        let mut client = HttpClient::connect(addr).unwrap();
        client.get("/slow").unwrap()
    });
    started_rx
        .recv_timeout(Duration::from_secs(5))
        .expect("handler never started");
    let queued = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(100));

    // Overflow is shed on the accept thread exactly as without the
    // plane: 503 + Retry-After before any routing happens.
    let shed_stream = TcpStream::connect(addr).unwrap();
    shed_stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut raw = String::new();
    std::io::BufReader::new(shed_stream)
        .read_to_string(&mut raw)
        .unwrap();
    assert!(
        raw.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
        "{raw}"
    );
    assert!(raw.contains("Retry-After: 3\r\n"), "{raw}");
    assert_eq!(server.shed(), 1);

    // Release the worker; the queued connection and fresh admin scrapes
    // both drain normally.
    release_tx.send(()).unwrap();
    let (code, body) = busy.join().unwrap();
    assert_eq!(code, 200);
    assert_eq!(&body[..], b"slow");
    drop(queued);
    let mut client = HttpClient::connect(addr).unwrap();
    let (code, _) = client.get("/healthz").unwrap();
    assert_eq!(code, 200);
    drop(client);
    server.shutdown();
}
