//! Provable convergence under data-plane faults (DESIGN.md §11): for
//! ANY generated fault schedule — lossy, delayed, reordered, or
//! partitioned replication links plus trigger-monitor crashes — once
//! every fault has healed, each replica's applied watermark equals the
//! master's transaction log, every trigger monitor has processed up to
//! that watermark, and a full render audit finds no stale cache entry
//! anywhere in the fleet.

use nagano_cluster::{random_fault_plan, ClusterConfig, ClusterReport, ClusterSim};
use nagano_db::GamesConfig;
use proptest::prelude::*;

/// Run the update-dense days 10–11 under a generated fault plan.
/// [`random_fault_plan`] draws fault starts at or before 22:59 with
/// durations of at most 45 minutes, so every fault heals before
/// midnight of its own day — strictly inside the simulated window.
fn run_with_plan(plan_seed: u64, events_per_day: u32) -> ClusterReport {
    ClusterSim::new(ClusterConfig {
        scale: 50_000.0,
        seed: 0x1998,
        games: GamesConfig::small(),
        start_day: 10,
        end_day: 11,
        fault_plan: random_fault_plan(10, 11, events_per_day, plan_seed),
        audit_convergence: true,
        ..Default::default()
    })
    .run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The convergence property itself.
    #[test]
    fn healed_fault_schedules_always_converge(
        plan_seed in any::<u64>(),
        events_per_day in 1u32..=4,
    ) {
        let report = run_with_plan(plan_seed, events_per_day);
        let master = report.master_txns;
        prop_assert!(master > 0, "the window must carry update traffic");
        prop_assert_eq!(
            report.site_watermarks,
            [master; 4],
            "a replica's applied watermark diverged from the master log"
        );
        prop_assert_eq!(
            report.monitor_watermarks,
            [master; 4],
            "a trigger monitor stopped short of the applied watermark"
        );
        prop_assert_eq!(
            report.stale_pages,
            Some(0),
            "the end-of-run render audit found stale cache entries"
        );
        prop_assert_eq!(report.failed_requests, 0);
    }
}

/// The worst single schedule deserves a named, always-run case: every
/// primary edge partitioned at once (the DR re-feed carries Schaumburg),
/// then healed.
#[test]
fn simultaneous_partitions_of_every_primary_edge_converge() {
    use nagano_cluster::{DataFaultKind, DataFaultPlanEntry, LinkFault};
    use nagano_simcore::SimTime;

    let mut plan = Vec::new();
    for edge in 0..4 {
        plan.push(DataFaultPlanEntry {
            at: SimTime::at(10, 8, 30),
            kind: DataFaultKind::Link {
                edge,
                fault: LinkFault::Partition,
            },
            up: false,
        });
        plan.push(DataFaultPlanEntry {
            at: SimTime::at(10, 11, 30),
            kind: DataFaultKind::Link {
                edge,
                fault: LinkFault::Partition,
            },
            up: true,
        });
    }
    let report = ClusterSim::new(ClusterConfig {
        scale: 50_000.0,
        seed: 7,
        games: GamesConfig::small(),
        start_day: 10,
        end_day: 10,
        fault_plan: plan,
        audit_convergence: true,
        ..Default::default()
    })
    .run();
    let master = report.master_txns;
    assert!(master > 0);
    assert_eq!(report.site_watermarks, [master; 4]);
    assert_eq!(report.monitor_watermarks, [master; 4]);
    assert_eq!(report.stale_pages, Some(0));
    assert!(
        report.replication_dropped > 0,
        "the partitions must actually have blocked traffic"
    );
}
