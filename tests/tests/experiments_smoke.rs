//! Smoke tests for the experiment harness: every experiment id runs in
//! quick mode and produces shape-consistent output.

use nagano_bench::{run_experiment, ExpConfig, ALL_EXPERIMENTS};

fn quick() -> ExpConfig {
    ExpConfig::quick()
}

#[test]
fn every_experiment_runs_in_quick_mode() {
    let config = quick();
    for id in ALL_EXPERIMENTS {
        let result = run_experiment(id, &config).unwrap_or_else(|| panic!("unknown id {id}"));
        assert_eq!(result.id, id);
        assert!(!result.rendered.is_empty(), "{id} produced no output");
        assert!(!result.verdict.is_empty());
        assert!(result.json.is_object(), "{id} json shape");
    }
    assert!(run_experiment("bogus", &config).is_none());
}

#[test]
fn fig20_totals_track_the_calendar() {
    let result = run_experiment("fig20", &quick()).unwrap();
    let total = result.json["total_millions"].as_f64().unwrap();
    assert!(
        (total - 634.7).abs() / 634.7 < 0.10,
        "total {total}M too far from 634.7M"
    );
    assert_eq!(result.json["peak_day"].as_u64(), Some(7));
}

#[test]
fn hitrate_ordering_holds() {
    let result = run_experiment("hitrate", &quick()).unwrap();
    let rows = result.json["rows"].as_array().unwrap();
    let rate = |label: &str| -> f64 {
        rows.iter()
            .find(|r| r["policy"] == label)
            .and_then(|r| r["hit_rate"].as_f64())
            .unwrap()
    };
    let update = rate("dup-update-in-place");
    let invalidate = rate("dup-invalidate");
    let conservative = rate("conservative-96");
    assert!(update > 0.999, "update-in-place {update}");
    assert!(update >= invalidate);
    assert!(invalidate > conservative, "{invalidate} vs {conservative}");
    assert!(conservative < 0.95);
    assert_eq!(rate("no-cache"), 0.0);
}

#[test]
fn fig23_is_a_distribution() {
    let result = run_experiment("fig23", &quick()).unwrap();
    let shares = result.json["shares_percent"].as_array().unwrap();
    let total: f64 = shares.iter().map(|s| s["share"].as_f64().unwrap()).sum();
    assert!((total - 100.0).abs() < 0.5, "shares sum {total}");
    assert_eq!(shares.len(), 6);
}

#[test]
fn odg_reproduces_large_fanout() {
    let result = run_experiment("odg", &quick()).unwrap();
    let affected = result.json["single_update_affected"].as_u64().unwrap();
    // Paper: one update affected 128 pages; small-scale dataset still
    // fans out to tens of pages.
    assert!(affected >= 10, "affected {affected}");
    let sweep = result.json["sweep"].as_array().unwrap();
    assert!(!sweep.is_empty());
    for row in sweep {
        assert!(row["affected"].as_u64().unwrap() > 0);
        assert!(row["simple_us"].as_f64().unwrap() > 0.0);
    }
}

#[test]
fn avail_is_one_hundred_percent() {
    let result = run_experiment("avail", &quick()).unwrap();
    assert_eq!(result.json["availability"].as_f64(), Some(1.0));
    assert_eq!(result.json["failed"].as_u64(), Some(0));
    let during = result.json["tokyo_share_during"].as_f64().unwrap();
    assert_eq!(during, 0.0, "Tokyo served while dark");
}

#[test]
fn fresh_is_within_the_bound() {
    let result = run_experiment("fresh", &quick()).unwrap();
    let max = result.json["max_s"].as_f64().unwrap();
    assert!(max < 60.0, "max freshness {max}s");
    assert!(result.json["count"].as_u64().unwrap() > 0);
}

#[test]
fn nav_shows_the_3x_reduction() {
    let result = run_experiment("nav", &quick()).unwrap();
    let ratio = result.json["ratio"].as_f64().unwrap();
    assert!((2.0..4.5).contains(&ratio), "ratio {ratio}");
    let home = result.json["home_satisfaction_98"].as_f64().unwrap();
    assert!(home > 0.25, "home satisfaction {home}");
    let projected = result.json["projected_1996_peak_millions"]
        .as_f64()
        .unwrap();
    assert!(projected > 120.0, "projection {projected}M");
}

#[test]
fn memory_fits_in_one_machine() {
    let result = run_experiment("memory", &quick()).unwrap();
    let bytes = result.json["bytes"].as_u64().unwrap();
    assert!(bytes > 0);
    let extrapolated = result.json["extrapolated_21k_mb"].as_f64().unwrap();
    // The paper's bound: a single copy stayed under 175 MB.
    assert!(extrapolated < 400.0, "extrapolated {extrapolated}MB");
}

#[test]
fn fig22_shows_the_us_anomaly() {
    let result = run_experiment("fig22", &quick()).unwrap();
    let us_bad = result.json["us_days7_9"].as_f64().unwrap();
    let us_ok = result.json["us_other"].as_f64().unwrap();
    assert!(
        us_bad > us_ok * 1.15,
        "US anomaly missing: {us_bad} vs {us_ok}"
    );
}

#[test]
fn hybrid_sweep_trades_cpu_for_staleness() {
    let result = run_experiment("hybrid", &quick()).unwrap();
    let rows = result.json["rows"].as_array().unwrap();
    assert_eq!(rows.len(), 5);
    // Acceptance: hot_fraction 0.5 spends less regen CPU than
    // update-in-place while staying fresher than pure invalidation.
    assert_eq!(result.json["checks"]["cpu_below_uip"].as_bool(), Some(true));
    assert_eq!(
        result.json["checks"]["staleness_below_invalidate"].as_bool(),
        Some(true)
    );
    // Regen CPU grows with the hot fraction; traffic capture is monotone.
    let cpu: Vec<u64> = rows
        .iter()
        .map(|r| r["regen_cpu_ms"].as_u64().unwrap())
        .collect();
    for w in cpu.windows(2) {
        assert!(
            w[1] >= w[0],
            "regen CPU must grow with hot fraction: {cpu:?}"
        );
    }
    let capture: Vec<f64> = rows
        .iter()
        .map(|r| r["traffic_captured_pct"].as_f64().unwrap())
        .collect();
    for w in capture.windows(2) {
        assert!(w[1] >= w[0] - 1e-9, "capture monotone: {capture:?}");
    }
    // The endpoints behave like the pure policies they degenerate to.
    assert!(rows[4]["hit_rate"].as_f64().unwrap() >= rows[0]["hit_rate"].as_f64().unwrap());
    assert!(result.verdict.contains("acceptance checks hold"));
}

#[test]
fn staleness_threshold_saves_work_monotonically() {
    let result = run_experiment("staleness", &quick()).unwrap();
    let rows = result.json["rows"].as_array().unwrap();
    let saved: Vec<f64> = rows
        .iter()
        .map(|r| r["saved_pct"].as_f64().unwrap())
        .collect();
    assert_eq!(saved[0], 0.0, "strict is the baseline");
    for w in saved.windows(2) {
        assert!(w[1] >= w[0] - 1e-9, "saving must be monotone: {saved:?}");
    }
    assert!(
        *saved.last().unwrap() > 20.0,
        "high threshold saves real work"
    );
    // Tolerated + regenerated stays conserved-ish (affected set unchanged).
    let strict_total = rows[0]["regenerated"].as_u64().unwrap();
    for r in rows {
        let total = r["regenerated"].as_u64().unwrap() + r["tolerated"].as_u64().unwrap();
        assert_eq!(total, strict_total, "affected set must not change");
    }
}

#[test]
fn batching_reduces_regeneration() {
    let result = run_experiment("batching", &quick()).unwrap();
    let individual = result.json["individual_regenerated"].as_u64().unwrap();
    let batch = result.json["batch_regenerated"].as_u64().unwrap();
    assert!(batch < individual, "{batch} vs {individual}");
    assert!(batch > 0);
}

#[test]
fn shift_moves_traffic_in_twelfths() {
    let result = run_experiment("shift", &quick()).unwrap();
    let rows = result.json["rows"].as_array().unwrap();
    let shares: Vec<f64> = rows
        .iter()
        .map(|r| r["tokyo_share_pct"].as_f64().unwrap())
        .collect();
    // Monotone decrease, roughly linear steps of baseline/12.
    let step = shares[0] / 12.0;
    for w in shares.windows(2) {
        let delta = w[0] - w[1];
        assert!(delta > 0.0, "withdrawal must shed traffic: {shares:?}");
        assert!(
            (delta - step).abs() < step * 0.5,
            "step {delta:.2} vs expected {step:.2}"
        );
    }
}

#[test]
fn mix_centres_on_the_home_page() {
    let result = run_experiment("mix", &quick()).unwrap();
    let shares = result.json["shares"].as_array().unwrap();
    let total: f64 = shares.iter().map(|s| s["share"].as_f64().unwrap()).sum();
    assert!((total - 100.0).abs() < 0.5, "shares sum {total}");
    // Sports + Today dominate the request mix.
    let of = |cat: &str| -> f64 {
        shares
            .iter()
            .find(|s| s["category"] == cat)
            .and_then(|s| s["share"].as_f64())
            .unwrap_or(0.0)
    };
    assert!(of("Sports") + of("Today") > 60.0);
    assert!(
        result.verdict.contains("/day/"),
        "home page is the top destination"
    );
}

#[test]
fn contention_shows_the_1996_colocation_penalty() {
    let result = run_experiment("contention", &quick()).unwrap();
    let r96 = result.json["ratio_1996"].as_f64().unwrap();
    let r98 = result.json["ratio_1998"].as_f64().unwrap();
    assert!(r96 > 3.0, "1996 co-location must degrade: {r96}");
    assert!(r98 < 1.5, "1998 separation must stay flat: {r98}");
}

#[test]
fn tables_rank_olympics_among_the_fastest() {
    for id in ["table1", "table2"] {
        let result = run_experiment(id, &quick()).unwrap();
        let rows = result.json["rows"].as_array().unwrap();
        let olympics_best = rows
            .iter()
            .filter(|r| r["site"].as_str().unwrap().starts_with("Olympics"))
            .map(|r| r["response_s"].as_f64().unwrap())
            .fold(f64::INFINITY, f64::min);
        let comparator_worst = rows
            .iter()
            .filter(|r| !r["site"].as_str().unwrap().starts_with("Olympics"))
            .map(|r| r["response_s"].as_f64().unwrap())
            .fold(0.0, f64::max);
        assert!(
            olympics_best < comparator_worst,
            "{id}: {olympics_best} vs {comparator_worst}"
        );
    }
}
