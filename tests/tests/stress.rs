//! Stress test: real HTTP load against a site while the update stream
//! runs live — no errors, no stale reads, hit rate stays at 100%.

use std::sync::Arc;
use std::time::Duration;

use nagano::{ServingSite, SiteConfig};
use nagano_db::AthleteId;
use nagano_httpd::{HttpClient, LoadRunner, ServerConfig};
use nagano_pagegen::PageKey;

#[test]
fn live_updates_under_http_load_lose_nothing() {
    let site = Arc::new(ServingSite::build(SiteConfig::small()));
    let runner = site.spawn_trigger_runner();
    let server = site
        .serve_http(
            "127.0.0.1:0",
            0,
            ServerConfig {
                workers: 6,
                ..Default::default()
            },
        )
        .unwrap();

    // Load over the hot pages the updates keep touching.
    let events = site.db().events();
    let paths: Vec<String> = vec![
        PageKey::Medals.to_url(),
        PageKey::Home(3).to_url(),
        PageKey::Event(events[0].id).to_url(),
        PageKey::Sport(events[0].sport).to_url(),
    ];
    let load = LoadRunner::new(4, paths);
    let addr = server.addr();
    let load_handle = std::thread::spawn(move || load.run(addr, Duration::from_millis(800)));

    // Meanwhile, a burst of result updates lands.
    let ev = events[0].clone();
    let pool = site.db().athletes_of_sport(ev.sport);
    for round in 0..20u32 {
        let placements: Vec<(AthleteId, f64)> = pool
            .iter()
            .take(4)
            .enumerate()
            .map(|(i, a)| (a.id, 100.0 - i as f64 - round as f64 * 0.01))
            .collect();
        site.db()
            .record_results(ev.id, &placements, round == 19, ev.day);
        std::thread::sleep(Duration::from_millis(20));
    }

    let report = load_handle.join().unwrap();
    let processed = runner.stop();
    assert_eq!(report.errors, 0, "no failed requests under live updates");
    assert!(report.requests > 500, "requests {}", report.requests);
    assert_eq!(processed, 20, "every update processed");

    // Update-in-place: the load never caused a miss on node 0 beyond the
    // (zero) expected — everything stayed resident.
    let stats = site.fleet().member(0).stats();
    assert_eq!(stats.misses, 0, "hot pages must never miss");
    assert!(stats.updates > 0, "pages were updated in place during load");

    // Final content is fresh: the served event page equals a fresh render.
    let mut client = HttpClient::connect(server.addr()).unwrap();
    let (code, body) = client.get(&PageKey::Event(ev.id).to_url()).unwrap();
    assert_eq!(code, 200);
    let fresh = nagano_pagegen::Renderer::new(Arc::clone(site.db())).render(PageKey::Event(ev.id));
    assert_eq!(body, fresh.body, "served page matches a fresh render");

    drop(client);
    server.shutdown();
}

#[test]
fn conditional_gets_under_updates_never_see_stale_304() {
    // A client holding an ETag must never receive 304 for a page whose
    // content changed: the version bump guarantees revalidation misses.
    let site = Arc::new(ServingSite::build(SiteConfig::small()));
    let server = site
        .serve_http("127.0.0.1:0", 0, ServerConfig::default())
        .unwrap();
    let mut client = HttpClient::connect(server.addr()).unwrap();
    let ev = site.db().events()[0].clone();
    let pool = site.db().athletes_of_sport(ev.sport);
    let path = PageKey::Event(ev.id).to_url();

    let (_, mut last_body, mut last_etag) = client.get_conditional(&path, None).unwrap();
    for round in 0..10u32 {
        site.db().record_results(
            ev.id,
            &[(
                pool[round as usize % pool.len().min(4)].id,
                50.0 + round as f64,
            )],
            false,
            ev.day,
        );
        site.pump();
        let (code, body, etag) = client.get_conditional(&path, last_etag.as_deref()).unwrap();
        // Content always changes (new result row), so a 304 here would be
        // a staleness bug.
        assert_eq!(code, 200, "round {round}: stale 304");
        assert_ne!(body, last_body, "round {round}: body did not change");
        assert_ne!(etag, last_etag, "round {round}: etag did not change");
        last_body = body;
        last_etag = etag;
        // Re-validating immediately (no change) is a 304.
        let (code, body, _) = client.get_conditional(&path, last_etag.as_deref()).unwrap();
        assert_eq!(code, 304);
        assert!(body.is_empty());
    }
    drop(client);
    server.shutdown();
}
