//! Replication-chain tests: Nagano master → Tokyo/Schaumburg →
//! Columbus/Bethesda, with per-site trigger monitors (Figure 5 wiring).

use std::sync::Arc;

use nagano_cache::{CacheConfig, CacheFleet};
use nagano_db::{seed_games, GamesConfig, OlympicDb, Replica};
use nagano_pagegen::{PageKey, PageRegistry, Renderer};
use nagano_trigger::{ConsistencyPolicy, TriggerMonitor};

struct SiteUnderTest {
    replica: Replica,
    monitor: TriggerMonitor,
    rx: crossbeam::channel::Receiver<Arc<nagano_db::Transaction>>,
}

impl SiteUnderTest {
    fn new(replica: Replica, registry: Arc<PageRegistry>) -> Self {
        let fleet = Arc::new(CacheFleet::new(1, CacheConfig::default()));
        let monitor = TriggerMonitor::new(
            Renderer::new(Arc::clone(replica.db())),
            fleet,
            registry,
            ConsistencyPolicy::UpdateInPlace,
        );
        monitor.prewarm();
        let rx = replica.subscribe();
        SiteUnderTest {
            replica,
            monitor,
            rx,
        }
    }

    /// Apply replication then run the local trigger monitor.
    fn sync(&self) -> usize {
        self.replica.pump();
        let mut n = 0;
        while let Ok(txn) = self.rx.try_recv() {
            self.monitor.process_txn(&txn);
            n += 1;
        }
        n
    }

    fn page_version(&self, key: PageKey) -> u64 {
        self.monitor
            .fleet()
            .member(0)
            .peek(&key.to_url())
            .map(|p| p.version)
            .unwrap_or(0)
    }
}

fn production_chain() -> (Arc<OlympicDb>, SiteUnderTest, SiteUnderTest, SiteUnderTest) {
    let master = Arc::new(OlympicDb::new());
    seed_games(&master, &GamesConfig::small());
    let registry = Arc::new(PageRegistry::build(&master, 16));
    let schaumburg = Replica::attach("schaumburg", Arc::clone(&master));
    let columbus = Replica::attach_downstream("columbus", &schaumburg);
    let tokyo = Replica::attach("tokyo", Arc::clone(&master));
    (
        master,
        SiteUnderTest::new(schaumburg, Arc::clone(&registry)),
        SiteUnderTest::new(columbus, Arc::clone(&registry)),
        SiteUnderTest::new(tokyo, registry),
    )
}

#[test]
fn updates_propagate_down_the_chain_in_order() {
    let (master, schaumburg, columbus, tokyo) = production_chain();
    let ev = master.events()[0].clone();
    let pool = master.athletes_of_sport(ev.sport);
    let event_page = PageKey::Event(ev.id);
    let v0 = schaumburg.page_version(event_page);

    master.record_results(ev.id, &[(pool[0].id, 10.0)], false, ev.day);
    master.record_results(ev.id, &[(pool[1].id, 11.0)], true, ev.day);

    // Directly-fed sites update first.
    assert_eq!(schaumburg.sync(), 2);
    assert_eq!(tokyo.sync(), 2);
    assert!(schaumburg.page_version(event_page) >= v0 + 2);
    assert!(tokyo.page_version(event_page) >= v0 + 2);

    // Columbus is fed by Schaumburg's local log.
    assert_eq!(columbus.sync(), 2);
    assert!(columbus.page_version(event_page) >= v0 + 2);

    // All sites hold byte-identical content.
    let a = schaumburg
        .monitor
        .fleet()
        .member(0)
        .peek(&event_page.to_url())
        .unwrap();
    let b = columbus
        .monitor
        .fleet()
        .member(0)
        .peek(&event_page.to_url())
        .unwrap();
    let c = tokyo
        .monitor
        .fleet()
        .member(0)
        .peek(&event_page.to_url())
        .unwrap();
    assert_eq!(a.body, b.body);
    assert_eq!(a.body, c.body);
}

#[test]
fn downstream_sites_lag_until_upstream_applies() {
    let (master, schaumburg, columbus, _tokyo) = production_chain();
    let ev = master.events()[0].clone();
    let pool = master.athletes_of_sport(ev.sport);
    master.record_results(ev.id, &[(pool[0].id, 10.0)], false, ev.day);
    // Columbus cannot see anything before Schaumburg replicates.
    assert_eq!(columbus.sync(), 0);
    assert_eq!(columbus.replica.lag(), 1);
    schaumburg.sync();
    assert_eq!(columbus.sync(), 1);
    assert_eq!(columbus.replica.lag(), 0);
}

#[test]
fn replica_watermarks_track_application() {
    let (master, schaumburg, _columbus, tokyo) = production_chain();
    let ev = master.events()[1].clone();
    let pool = master.athletes_of_sport(ev.sport);
    for _ in 0..4 {
        master.record_results(ev.id, &[(pool[0].id, 5.0)], false, ev.day);
    }
    assert_eq!(schaumburg.replica.lag(), 4);
    schaumburg.replica.pump_n(2);
    assert_eq!(schaumburg.replica.applied().0, 2);
    assert_eq!(schaumburg.replica.lag(), 2);
    // Tokyo is independent of Schaumburg's progress.
    assert_eq!(tokyo.replica.lag(), 4);
    tokyo.sync();
    assert_eq!(tokyo.replica.lag(), 0);
}
