//! Chaos tests on the global cluster simulation: random failure
//! injection must never lose a request while at least one complex lives,
//! and the simulation must be deterministic.

use nagano_cluster::{
    ClusterConfig, ClusterSim, ClusterState, FailureKind, FailurePlanEntry, Msirp, RouteDecision,
};
use nagano_db::GamesConfig;
use nagano_simcore::{DeterministicRng, SimTime};
use nagano_workload::Region;
use proptest::prelude::*;

fn quick_config(seed: u64) -> ClusterConfig {
    ClusterConfig {
        scale: 50_000.0,
        seed,
        games: GamesConfig::small(),
        start_day: 3,
        end_day: 3,
        ..Default::default()
    }
}

#[test]
fn three_complexes_down_still_serves_everything() {
    let mut cfg = quick_config(1);
    cfg.failure_plan = (0..3)
        .map(|site| FailurePlanEntry {
            at: SimTime::at(3, 6, 0),
            kind: FailureKind::Complex { site },
            up: false,
        })
        .collect();
    let report = ClusterSim::new(cfg).run();
    assert!(report.total_requests > 100);
    assert_eq!(
        report.failed_requests, 0,
        "one complex must carry everything"
    );
    // Everything after the failure went to Tokyo (site 3).
    let after_start = 2 * 1440 + 6 * 60 + 5;
    for site in 0..3 {
        let served: f64 = report.per_site_minute[site].bins()[after_start..(3 * 1440 - 1)]
            .iter()
            .sum();
        assert_eq!(served, 0.0, "site {site} served while dark");
    }
}

#[test]
fn total_outage_fails_requests_then_recovers() {
    let mut cfg = quick_config(2);
    let mut plan: Vec<FailurePlanEntry> = (0..4)
        .map(|site| FailurePlanEntry {
            at: SimTime::at(3, 10, 0),
            kind: FailureKind::Complex { site },
            up: false,
        })
        .collect();
    plan.extend((0..4).map(|site| FailurePlanEntry {
        at: SimTime::at(3, 12, 0),
        kind: FailureKind::Complex { site },
        up: true,
    }));
    cfg.failure_plan = plan;
    let report = ClusterSim::new(cfg).run();
    assert!(
        report.failed_requests > 0,
        "total outage must drop requests"
    );
    assert!(report.availability() < 1.0);
    // Service resumed after the restore.
    let tail: f64 = report.per_minute.bins()[(2 * 1440 + 13 * 60)..(3 * 1440 - 1)]
        .iter()
        .sum();
    assert!(tail > 0.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Routing never strands a request while any complex advertises, for
    /// arbitrary health states.
    #[test]
    fn routing_total_when_any_complex_lives(
        dead_nodes in proptest::collection::vec((0..4usize, 0..3usize, 0..8usize), 0..30),
        dead_frames in proptest::collection::vec((0..4usize, 0..3usize), 0..6),
        dead_nds in proptest::collection::vec((0..4usize, 0..4usize), 0..10),
        dead_complexes in proptest::collection::vec(0..4usize, 0..3),
        addr in 0..12usize,
        region_sel in 0..6usize,
    ) {
        let mut cluster = ClusterState::new();
        for (site, frame, node) in dead_nodes {
            cluster.apply(FailureKind::Node { site, frame, node }, false);
        }
        for (site, frame) in dead_frames {
            cluster.apply(FailureKind::Frame { site, frame }, false);
        }
        for (site, nd) in dead_nds {
            cluster.apply(FailureKind::Dispatcher { site, nd }, false);
        }
        for site in dead_complexes {
            cluster.apply(FailureKind::Complex { site }, false);
        }
        let msirp = Msirp::nagano();
        let region = Region::ALL[region_sel];
        let adverts = cluster.adverts(&msirp, addr);
        let any_alive = cluster.availability().iter().any(|&a| a);
        match msirp.route(region, addr, &adverts) {
            RouteDecision::Site(s) => {
                prop_assert!(cluster.availability()[s.0], "routed to a dead complex");
                // The picked complex can actually produce a node.
                prop_assert!(cluster.site_mut(s).pick_node().is_some());
            }
            RouteDecision::Unroutable => {
                prop_assert!(!any_alive, "unroutable while a complex lives");
            }
        }
    }

    /// Failure + restore returns the cluster to a fully routable state.
    #[test]
    fn restore_is_complete(ops in proptest::collection::vec(any::<u64>(), 1..20)) {
        let mut cluster = ClusterState::new();
        let mut rng = DeterministicRng::seed_from_u64(99);
        let mut applied = Vec::new();
        for _ in &ops {
            let kind = cluster.random_failure_target(&mut rng);
            cluster.apply(kind, false);
            applied.push(kind);
        }
        for kind in applied {
            cluster.apply(kind, true);
        }
        prop_assert_eq!(cluster.availability(), [true; 4]);
        let msirp = Msirp::nagano();
        for addr in 0..12 {
            let adverts = cluster.adverts(&msirp, addr);
            prop_assert!(matches!(
                msirp.route(Region::Japan, addr, &adverts),
                RouteDecision::Site(_)
            ));
        }
    }
}

#[test]
fn simulation_is_deterministic_across_runs() {
    let a = ClusterSim::new(quick_config(7)).run();
    let b = ClusterSim::new(quick_config(7)).run();
    assert_eq!(a.total_requests, b.total_requests);
    assert_eq!(a.failed_requests, b.failed_requests);
    assert_eq!(a.cache.hits, b.cache.hits);
    assert_eq!(a.cache.misses, b.cache.misses);
    assert_eq!(a.per_site_totals(), b.per_site_totals());
    assert_eq!(a.updates_applied, b.updates_applied);
    // Different seeds diverge.
    let c = ClusterSim::new(quick_config(8)).run();
    assert_ne!(a.total_requests, c.total_requests);
}
