//! The DUP correctness invariant, property-tested across random
//! update/request interleavings:
//!
//! **after the trigger monitor has processed all pending transactions,
//! every cached page equals a fresh render of that page.**
//!
//! This is exactly what the paper's system guarantees: cached dynamic
//! pages never serve content older than the last processed database
//! change, whether the policy regenerates in place or invalidates.

use proptest::prelude::*;
use std::sync::Arc;

use nagano::{ServingSite, SiteConfig};
use nagano_db::AthleteId;
use nagano_pagegen::{PageKey, Renderer};
use nagano_trigger::ConsistencyPolicy;

#[derive(Debug, Clone)]
enum Op {
    /// Record results for event index `e` (mod events), `final` flag.
    Results(u8, bool),
    /// Serve some pages from node `n`.
    Browse(u8),
    /// Process pending transactions.
    Pump,
    /// Publish a news story.
    News(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..12u8, any::<bool>()).prop_map(|(e, f)| Op::Results(e, f)),
        (0..2u8).prop_map(Op::Browse),
        Just(Op::Pump),
        (0..20u8).prop_map(Op::News),
    ]
}

fn check_consistency(site: &ServingSite) {
    // After a pump, every cached body must equal a fresh render.
    let renderer = Renderer::new(Arc::clone(site.db()));
    let probes: Vec<PageKey> = site
        .registry()
        .pages()
        .iter()
        .map(|(k, _)| *k)
        .filter(|k| {
            matches!(
                k,
                PageKey::Medals
                    | PageKey::Home(_)
                    | PageKey::Event(_)
                    | PageKey::Sport(_)
                    | PageKey::Fragment(_)
            )
        })
        .take(40)
        .collect();
    for key in probes {
        if let Some(cached) = site.fleet().member(0).peek(&key.to_url()) {
            let fresh = renderer.render(key);
            assert_eq!(
                cached.body, fresh.body,
                "stale page served for {key} — DUP missed a dependency"
            );
        }
    }
}

fn run_scenario(policy: ConsistencyPolicy, ops: &[Op]) {
    let mut cfg = SiteConfig::small();
    cfg.policy = policy;
    let site = ServingSite::build(cfg);
    let events = site.db().events();
    for op in ops {
        match op {
            Op::Results(e, is_final) => {
                let ev = &events[*e as usize % events.len()];
                let pool = site.db().athletes_of_sport(ev.sport);
                let placements: Vec<(AthleteId, f64)> = pool
                    .iter()
                    .take(4)
                    .enumerate()
                    .map(|(i, a)| (a.id, 50.0 - i as f64))
                    .collect();
                site.db()
                    .record_results(ev.id, &placements, *is_final, ev.day);
            }
            Op::Browse(node) => {
                for key in [
                    PageKey::Medals,
                    PageKey::Home(3),
                    PageKey::Event(events[0].id),
                ] {
                    site.handle(*node as usize, &key.to_url());
                }
            }
            Op::Pump => {
                site.pump();
                check_consistency(&site);
            }
            Op::News(n) => {
                site.db().publish_news(nagano_db::NewsArticle {
                    id: nagano_db::NewsId(5_000 + *n as u32),
                    day: 3,
                    title: format!("story {n}"),
                    body: "…".into(),
                    about_event: Some(events[*n as usize % events.len()].id),
                });
            }
        }
    }
    site.pump();
    check_consistency(&site);
}

proptest! {
    // Site construction is comparatively expensive; a moderate case count
    // still explores thousands of operations.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn update_in_place_never_serves_stale(ops in proptest::collection::vec(op_strategy(), 1..25)) {
        run_scenario(ConsistencyPolicy::UpdateInPlace, &ops);
    }

    #[test]
    fn invalidate_never_serves_stale(ops in proptest::collection::vec(op_strategy(), 1..25)) {
        run_scenario(ConsistencyPolicy::Invalidate, &ops);
    }

    #[test]
    fn conservative_never_serves_stale(ops in proptest::collection::vec(op_strategy(), 1..15)) {
        run_scenario(ConsistencyPolicy::Conservative96, &ops);
    }
}

#[test]
fn hit_rate_ordering_matches_the_paper() {
    // Replay an identical scripted load under each policy; the 1998
    // policy must dominate precise invalidation, which must dominate the
    // 1996 baseline.
    let mut rates = Vec::new();
    for policy in [
        ConsistencyPolicy::UpdateInPlace,
        ConsistencyPolicy::Invalidate,
        ConsistencyPolicy::Conservative96,
    ] {
        let mut cfg = SiteConfig::small();
        cfg.policy = policy;
        let site = ServingSite::build(cfg);
        let events = site.db().events();
        // Interleave: browse 40 pages, then an update, 10 rounds.
        for round in 0..10u32 {
            for i in 0..40u32 {
                let key = match i % 4 {
                    0 => PageKey::Medals,
                    1 => PageKey::Home(3),
                    2 => PageKey::Event(events[(i % 8) as usize].id),
                    _ => PageKey::Athlete(nagano_db::AthleteId(i % 20 + 1)),
                };
                site.handle(0, &key.to_url());
            }
            let ev = &events[(round % 8) as usize];
            let pool = site.db().athletes_of_sport(ev.sport);
            let placements: Vec<(AthleteId, f64)> = pool
                .iter()
                .take(3)
                .enumerate()
                .map(|(i, a)| (a.id, 10.0 - i as f64))
                .collect();
            site.db().record_results(ev.id, &placements, false, ev.day);
            site.pump();
        }
        rates.push((policy.label(), site.metrics().cache.hit_rate()));
    }
    assert!(
        rates[0].1 >= rates[1].1 && rates[1].1 > rates[2].1,
        "ordering violated: {rates:?}"
    );
    assert!(rates[0].1 > 0.999, "update-in-place {rates:?}");
    assert!(
        rates[2].1 < 0.9,
        "conservative should miss a lot: {rates:?}"
    );
}
