//! End-to-end tests: database update → trigger monitor → cache → HTTP
//! client, across the full stack.

use std::sync::Arc;

use nagano::{ServingSite, SiteConfig};
use nagano_db::AthleteId;
use nagano_httpd::{HttpClient, ServerConfig};
use nagano_pagegen::PageKey;

fn podium(site: &ServingSite, event: nagano_db::EventId) -> Vec<(AthleteId, f64)> {
    let ev = site.db().event(event).unwrap();
    site.db()
        .athletes_of_sport(ev.sport)
        .iter()
        .take(6)
        .enumerate()
        .map(|(i, a)| (a.id, 100.0 - i as f64))
        .collect()
}

#[test]
fn results_flow_to_http_clients_without_cache_misses() {
    let site = Arc::new(ServingSite::build(SiteConfig::small()));
    let server = site
        .serve_http("127.0.0.1:0", 0, ServerConfig::default())
        .unwrap();
    let mut client = HttpClient::connect(server.addr()).unwrap();

    let ev = site.db().events()[0].clone();
    let event_url = PageKey::Event(ev.id).to_url();
    let (code, before) = client.get(&event_url).unwrap();
    assert_eq!(code, 200);

    // Post results; process them; the page changes but stays cached.
    let misses_before = site.metrics().cache.misses;
    site.db()
        .record_results(ev.id, &podium(&site, ev.id), true, ev.day);
    site.pump();
    let (code, after) = client.get(&event_url).unwrap();
    assert_eq!(code, 200);
    assert_ne!(before, after, "page must reflect the new results");
    assert_eq!(
        site.metrics().cache.misses,
        misses_before,
        "update-in-place must not cause a single miss"
    );

    // The winning athlete's page reflects the result too.
    let winner = podium(&site, ev.id)[0].0;
    let (_, athlete_page) = client.get(&PageKey::Athlete(winner).to_url()).unwrap();
    let html = String::from_utf8(athlete_page.to_vec()).unwrap();
    assert!(html.contains("rank 1"), "winner page shows the gold");

    drop(client);
    server.shutdown();
}

#[test]
fn every_registry_page_is_servable_over_http() {
    let site = Arc::new(ServingSite::build(SiteConfig::small()));
    let server = site
        .serve_http("127.0.0.1:0", 0, ServerConfig::default())
        .unwrap();
    let mut client = HttpClient::connect(server.addr()).unwrap();
    for (key, meta) in site.registry().pages() {
        let (code, body) = client.get(&key.to_url()).unwrap();
        assert_eq!(code, 200, "page {key}");
        assert!(!body.is_empty());
        // Bodies land near their registered nominal sizes.
        assert!(
            body.len() + 4096 >= meta.bytes,
            "{key}: {} vs {}",
            body.len(),
            meta.bytes
        );
    }
    drop(client);
    server.shutdown();
}

#[test]
fn all_fleet_nodes_serve_identical_content_after_updates() {
    let site = Arc::new(ServingSite::build(SiteConfig::small()));
    let ev = site.db().events()[1].clone();
    site.db()
        .record_results(ev.id, &podium(&site, ev.id), true, ev.day);
    site.pump();
    // Both serving nodes hold the same bytes for every affected page.
    for key in [
        PageKey::Event(ev.id),
        PageKey::Medals,
        PageKey::Home(ev.day),
        PageKey::Sport(ev.sport),
    ] {
        let a = site.handle(0, &key.to_url()).unwrap();
        let b = site.handle(1, &key.to_url()).unwrap();
        assert!(a.cache_hit && b.cache_hit, "{key}");
        assert_eq!(a.body, b.body, "{key}: fleet members diverged");
    }
}

#[test]
fn background_runner_keeps_site_fresh_under_live_updates() {
    let site = Arc::new(ServingSite::build(SiteConfig::small()));
    let runner = site.spawn_trigger_runner();
    let ev = site.db().events()[2].clone();
    let url = PageKey::Event(ev.id).to_url();
    let v0 = site.fleet().member(0).peek(&url).unwrap().version;
    for round in 0..5 {
        site.db()
            .record_results(ev.id, &podium(&site, ev.id), round == 4, ev.day);
    }
    let processed = runner.stop();
    assert_eq!(processed, 5);
    let v1 = site.fleet().member(0).peek(&url).unwrap().version;
    assert!(v1 >= v0 + 5, "version {v0} -> {v1}");
    // Final results awarded medals; the standings page shows a country
    // with gold.
    let medals = site.handle(0, "/medals").unwrap();
    assert!(medals.cache_hit);
    let standings = site.db().medal_standings();
    assert!(standings[0].1.gold >= 1);
}

#[test]
fn invalidation_policy_serves_fresh_content_via_demand_miss() {
    let mut cfg = SiteConfig::small();
    cfg.policy = nagano_trigger::ConsistencyPolicy::Invalidate;
    let site = ServingSite::build(cfg);
    let ev = site.db().events()[0].clone();
    let url = PageKey::Event(ev.id).to_url();
    site.db()
        .record_results(ev.id, &podium(&site, ev.id), true, ev.day);
    site.pump();
    // Page was dropped; the next request regenerates it fresh.
    let served = site.handle(0, &url).unwrap();
    assert!(!served.cache_hit);
    let html = String::from_utf8(served.body.to_vec()).unwrap();
    assert!(html.contains("<table class=\"results\">"));
    // And it is cached again afterwards.
    assert!(site.handle(0, &url).unwrap().cache_hit);
}
