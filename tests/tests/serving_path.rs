//! The serving hot path over real TCP, at the wire-byte level: one
//! keep-alive connection carrying mixed 200/304/503 sequences, with the
//! invariants the zero-copy rearchitecture must preserve — a 304 puts
//! zero body bytes on the wire, a shed 503 closes its connection while
//! page connections keep flowing, and the prebuilt-head fast path is
//! byte-identical to the legacy formatted write path.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use nagano::{ServingSite, SiteConfig};
use nagano_httpd::{Handler, Request, Response, Server, ServerConfig, Status};

/// One parsed raw response: status code, headers (lowercased names), and
/// the exact body bytes that followed the header block.
struct RawResponse {
    code: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl RawResponse {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Read exactly one response off the reader, consuming exactly
/// `Content-Length` body bytes — any stray byte beyond that corrupts the
/// next response on the keep-alive connection and fails the test there.
fn read_raw_response(reader: &mut BufReader<TcpStream>) -> RawResponse {
    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    let code: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {line:?}"));
    let mut headers = Vec::new();
    loop {
        let mut h = String::new();
        reader.read_line(&mut h).expect("header line");
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        let (name, value) = h.split_once(':').expect("header colon");
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    let len: usize = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| v.parse().expect("content-length"))
        .expect("content-length present");
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body).expect("body");
    RawResponse {
        code,
        headers,
        body,
    }
}

fn send_get(stream: &mut TcpStream, path: &str, etag: Option<&str>, close: bool) {
    let connection = if close { "close" } else { "keep-alive" };
    let inm = etag.map_or(String::new(), |t| format!("If-None-Match: {t}\r\n"));
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: nagano\r\nConnection: {connection}\r\n{inm}\r\n"
    )
    .expect("send request");
}

#[test]
fn keep_alive_connection_serves_200_then_304_with_zero_body_bytes() {
    let site = Arc::new(ServingSite::build(SiteConfig::small()));
    let server = site
        .serve_http("127.0.0.1:0", 0, ServerConfig::default())
        .unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    // Plain GET: 200 with a body and a version ETag.
    send_get(&mut stream, "/medals", None, false);
    let first = read_raw_response(&mut reader);
    assert_eq!(first.code, 200);
    assert!(!first.body.is_empty());
    let etag = first.header("etag").expect("etag on 200").to_string();
    assert_eq!(etag, "\"v1\"", "prewarmed entries start at version 1");

    // Revalidation on the same connection: 304, Content-Length 0, and —
    // because read_raw_response consumes exactly Content-Length bytes —
    // any body byte the server leaked would desynchronise the requests
    // that follow.
    send_get(&mut stream, "/medals", Some(&etag), false);
    let revalidated = read_raw_response(&mut reader);
    assert_eq!(revalidated.code, 304);
    assert_eq!(revalidated.header("content-length"), Some("0"));
    assert!(
        revalidated.body.is_empty(),
        "304 must put zero body bytes on the wire"
    );
    assert_eq!(revalidated.header("etag"), Some(etag.as_str()));

    // A long mixed sequence keeps flowing on the one connection.
    for i in 0..20 {
        let (path, inm) = match i % 4 {
            0 => ("/medals", Some(etag.as_str())),
            1 => ("/day/1/", None),
            2 => ("/medals", Some("\"v999\"")),
            _ => ("/welcome", None),
        };
        send_get(&mut stream, path, inm, false);
        let resp = read_raw_response(&mut reader);
        match i % 4 {
            0 => {
                assert_eq!(resp.code, 304, "request {i}");
                assert!(resp.body.is_empty(), "request {i}");
            }
            2 => {
                // Mismatched validator: full 200 body, not a 304.
                assert_eq!(resp.code, 200, "request {i}");
                assert!(!resp.body.is_empty(), "request {i}");
            }
            _ => {
                assert_eq!(resp.code, 200, "request {i}");
                assert!(!resp.body.is_empty(), "request {i}");
            }
        }
    }

    // An update bumps the version: the old validator now fetches bytes.
    let ev = site.db().events()[0].clone();
    let a = site.db().athletes_of_sport(ev.sport)[0].clone();
    site.db()
        .record_results(ev.id, &[(a.id, 9.0)], true, ev.day);
    site.pump();
    send_get(&mut stream, "/medals", Some(&etag), true);
    let refreshed = read_raw_response(&mut reader);
    assert_eq!(refreshed.code, 200);
    assert!(!refreshed.body.is_empty());
    assert_ne!(refreshed.header("etag"), Some(etag.as_str()));
    server.shutdown();
}

#[test]
fn overloaded_server_mixes_503_sheds_with_served_pages() {
    use crossbeam::channel;

    // Gate one path through a channel so the single worker can be pinned
    // while the site handler stays untouched for the rest.
    let site = Arc::new(ServingSite::build(SiteConfig::small()));
    let pages = site.http_handler(0);
    let (started_tx, started_rx) = channel::bounded::<()>(1);
    let (release_tx, release_rx) = channel::bounded::<()>(1);
    let handler: Arc<dyn Handler> = Arc::new(move |req: &Request| {
        if req.path == "/slow" {
            let _ = started_tx.send(());
            let _ = release_rx.recv();
            return Response::text(Status::Ok, "slow");
        }
        pages.handle(req)
    });
    let server = Server::bind(
        "127.0.0.1:0",
        handler,
        ServerConfig {
            workers: 1,
            backlog: 1,
            retry_after_secs: 4,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    // Pin the worker, fill the one pending slot, then overflow.
    let busy = std::thread::spawn(move || {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut r = BufReader::new(s.try_clone().unwrap());
        send_get(&mut s, "/slow", None, true);
        read_raw_response(&mut r).code
    });
    started_rx
        .recv_timeout(Duration::from_secs(5))
        .expect("slow handler never started");
    let queued = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(100));

    // The overflow connection gets a 503 + Retry-After, then EOF: shed
    // connections are closed, not kept alive.
    let shed = TcpStream::connect(addr).unwrap();
    shed.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut shed_reader = BufReader::new(shed.try_clone().unwrap());
    let resp = read_raw_response(&mut shed_reader);
    assert_eq!(resp.code, 503);
    assert_eq!(resp.header("retry-after"), Some("4"));
    let mut rest = Vec::new();
    shed_reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "shed connection must close after the 503");
    assert_eq!(server.shed(), 1);

    // Release the worker: the pinned request finishes and page traffic —
    // including 304 revalidation — resumes on fresh connections.
    release_tx.send(()).unwrap();
    assert_eq!(busy.join().unwrap(), 200);
    drop(queued);
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut r = BufReader::new(s.try_clone().unwrap());
    send_get(&mut s, "/medals", None, false);
    let ok = read_raw_response(&mut r);
    assert_eq!(ok.code, 200);
    let etag = ok.header("etag").unwrap().to_string();
    send_get(&mut s, "/medals", Some(&etag), true);
    let revalidated = read_raw_response(&mut r);
    assert_eq!(revalidated.code, 304);
    assert!(revalidated.body.is_empty());
    server.shutdown();
}

#[test]
fn prebuilt_fast_path_is_byte_identical_to_legacy_formatted_path() {
    let fast_site = Arc::new(ServingSite::build(SiteConfig::small()));
    let mut legacy_cfg = SiteConfig::small();
    legacy_cfg.prebuilt_heads = false;
    let legacy_site = Arc::new(ServingSite::build(legacy_cfg));

    let fast_server = fast_site
        .serve_http("127.0.0.1:0", 0, ServerConfig::default())
        .unwrap();
    let legacy_server = legacy_site
        .serve_http(
            "127.0.0.1:0",
            0,
            ServerConfig {
                legacy_write_path: true,
                ..Default::default()
            },
        )
        .unwrap();

    let fetch = |addr, path: &str, etag: Option<&str>| -> Vec<u8> {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        send_get(&mut s, path, etag, true);
        let mut bytes = Vec::new();
        s.read_to_end(&mut bytes).unwrap();
        bytes
    };
    for path in ["/medals", "/day/1/", "/welcome", "/bogus"] {
        for etag in [None, Some("\"v1\""), Some("\"v7\"")] {
            let fast = fetch(fast_server.addr(), path, etag);
            let legacy = fetch(legacy_server.addr(), path, etag);
            assert!(!fast.is_empty());
            assert_eq!(
                fast, legacy,
                "wire bytes diverge for {path} If-None-Match {etag:?}"
            );
        }
    }
    fast_server.shutdown();
    legacy_server.shutdown();
}
