//! Access-log integration: the server logs every request in CLF; the
//! analyzer recovers the aggregate picture (the §3.1 workflow).

use std::sync::Arc;

use nagano::{ServingSite, SiteConfig};
use nagano_httpd::{
    AccessLog, HttpClient, LogAnalysis, LogEntry, RequestObserver, Server, ServerConfig,
};
use std::io::BufReader;
use std::time::{SystemTime, UNIX_EPOCH};

#[test]
fn served_requests_are_logged_and_analyzable() {
    let site = Arc::new(ServingSite::build(SiteConfig::small()));
    let log = Arc::new(AccessLog::new(Vec::new()));
    let observer: RequestObserver = {
        let log = Arc::clone(&log);
        Arc::new(move |req, status, bytes| {
            let _ = log.log(&LogEntry {
                host: "203.0.113.9".into(),
                epoch_secs: SystemTime::now()
                    .duration_since(UNIX_EPOCH)
                    .unwrap()
                    .as_secs(),
                method: req.method.clone(),
                path: req.path.clone(),
                status,
                bytes,
            });
        })
    };
    let server = Server::bind_with_observer(
        "127.0.0.1:0",
        site.http_handler(0),
        ServerConfig::default(),
        Some(observer),
    )
    .unwrap();

    let mut client = HttpClient::connect(server.addr()).unwrap();
    for _ in 0..5 {
        client.get("/medals").unwrap();
    }
    for _ in 0..3 {
        client.get("/day/3/").unwrap();
    }
    client.get("/no/such/page").unwrap();
    drop(client);
    server.shutdown();

    // Recover the log buffer and analyse it.
    let buf = Arc::try_unwrap(log)
        .map_err(|_| "log still shared")
        .unwrap()
        .into_inner();
    let analysis = LogAnalysis::from_reader(BufReader::new(&buf[..])).unwrap();
    assert_eq!(analysis.total, 9);
    assert_eq!(analysis.malformed, 0);
    assert_eq!(
        analysis.top_pages(2),
        vec![("/medals".to_string(), 5), ("/day/3/".to_string(), 3)]
    );
    assert_eq!(analysis.by_status[&404], 1);
    assert!(analysis.status_class_share(2) > 0.8);
    // Mean bytes reflects real page sizes (medals ~10 KB, home ~55 KB).
    assert!(
        analysis.mean_bytes() > 5_000.0,
        "mean {}",
        analysis.mean_bytes()
    );
}
