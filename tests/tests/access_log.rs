//! Access-log integration: the server logs every request in CLF; the
//! analyzer recovers the aggregate picture (the §3.1 workflow).

use std::sync::Arc;

use nagano::{ServingSite, SiteConfig};
use nagano_httpd::{
    AccessLog, HttpClient, LogAnalysis, LogEntry, RequestObserver, Server, ServerConfig,
};
use std::io::BufReader;
use std::time::{SystemTime, UNIX_EPOCH};

#[test]
fn served_requests_are_logged_and_analyzable() {
    let site = Arc::new(ServingSite::build(SiteConfig::small()));
    let log = Arc::new(AccessLog::new(Vec::new()));
    let observer: RequestObserver = {
        let log = Arc::clone(&log);
        Arc::new(move |req, status, bytes| {
            let _ = log.log(&LogEntry {
                host: "203.0.113.9".into(),
                epoch_secs: SystemTime::now()
                    .duration_since(UNIX_EPOCH)
                    .unwrap()
                    .as_secs(),
                method: req.method.clone(),
                path: req.path.clone(),
                status,
                bytes,
                stale: false,
            });
        })
    };
    let server = Server::bind_with_observer(
        "127.0.0.1:0",
        site.http_handler(0),
        ServerConfig::default(),
        Some(observer),
    )
    .unwrap();

    let mut client = HttpClient::connect(server.addr()).unwrap();
    for _ in 0..5 {
        client.get("/medals").unwrap();
    }
    for _ in 0..3 {
        client.get("/day/3/").unwrap();
    }
    client.get("/no/such/page").unwrap();
    drop(client);
    server.shutdown();

    // Recover the log buffer and analyse it.
    let buf = Arc::try_unwrap(log)
        .map_err(|_| "log still shared")
        .unwrap()
        .into_inner();
    let analysis = LogAnalysis::from_reader(BufReader::new(&buf[..])).unwrap();
    assert_eq!(analysis.total, 9);
    assert_eq!(analysis.malformed, 0);
    assert_eq!(
        analysis.top_pages(2),
        vec![("/medals".to_string(), 5), ("/day/3/".to_string(), 3)]
    );
    assert_eq!(analysis.by_status[&404], 1);
    assert!(analysis.status_class_share(2) > 0.8);
    // Mean bytes reflects real page sizes (medals ~10 KB, home ~55 KB).
    assert!(
        analysis.mean_bytes() > 5_000.0,
        "mean {}",
        analysis.mean_bytes()
    );
    // No resilience fallback was involved: everything served fresh.
    assert_eq!(analysis.stale, 0);
    assert_eq!(analysis.fresh(), 9);
}

#[test]
fn stale_serves_are_counted_separately_from_fresh() {
    use nagano::cache::{CacheConfig, StalePolicy};

    let mut cfg = SiteConfig::small();
    cfg.cache = CacheConfig::default().with_stale(StalePolicy::bounded(3600.0));
    let site = ServingSite::build(cfg);
    let log = AccessLog::new(Vec::new());
    let serve_and_log = |path: &str, secs: u64| {
        let page = site.handle(0, path).expect("served");
        log.log(&LogEntry {
            host: "203.0.113.9".into(),
            epoch_secs: secs,
            method: "GET".into(),
            path: path.into(),
            status: 200,
            bytes: page.body.len() as u64,
            stale: page.stale,
        })
        .unwrap();
    };

    serve_and_log("/medals", 0); // fresh hit
    serve_and_log("/day/3/", 1); // fresh hit

    // The page is invalidated and the backend breaker trips: the next
    // read falls back to the tombstoned stale copy.
    site.fleet()
        .invalidate_everywhere(&nagano::pagegen::PageKey::parse("/medals").unwrap().to_url());
    site.with_breaker(|b| {
        for _ in 0..10 {
            b.record_failure(0.0);
        }
    });
    serve_and_log("/medals", 2); // stale serve

    let analysis = LogAnalysis::from_reader(BufReader::new(&log.into_inner()[..])).unwrap();
    assert_eq!(analysis.total, 3);
    assert_eq!(analysis.stale, 1, "one request answered from a stale copy");
    assert_eq!(analysis.fresh(), 2);
    assert!((analysis.stale_share() - 1.0 / 3.0).abs() < 1e-12);
    // The stale marker round-trips through the CLF text.
    assert_eq!(analysis.malformed, 0);
}
