//! Diagnostic exporters: the `--json` form consumed by the determinism
//! gate and a minimal SARIF 2.1.0 document for CI code-scanning
//! surfaces. Both are hand-rolled (the linter is dependency-free) and
//! byte-deterministic: diagnostics are emitted in their sorted order
//! and the rule registry in registry order.

use crate::rules::{Diagnostic, RULES};

/// The `--json` export: `{"files_scanned":N,"diagnostics":[…]}`.
pub fn render_json(diags: &[Diagnostic], files_scanned: usize) -> String {
    let mut out = String::from("{\"files_scanned\":");
    out.push_str(&files_scanned.to_string());
    out.push_str(",\"diagnostics\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\",\"suggestion\":\"{}\"}}",
            d.rule,
            json_escape(&d.file),
            d.line,
            json_escape(&d.message),
            json_escape(&d.suggestion)
        ));
    }
    out.push_str("]}");
    out
}

/// The `--sarif` export: one run, one result per diagnostic, rule
/// metadata from the registry. Line-level regions only (the lexer does
/// not track columns).
pub fn render_sarif(diags: &[Diagnostic], files_scanned: usize) -> String {
    let mut out = String::from(
        "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\
         \"name\":\"nagano-lint\",\"rules\":[",
    );
    for (i, r) in RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}}}}",
            r.id,
            json_escape(r.summary)
        ));
    }
    out.push_str("]}},\"properties\":{\"filesScanned\":");
    out.push_str(&files_scanned.to_string());
    out.push_str("},\"results\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"ruleId\":\"{}\",\"level\":\"error\",\
             \"message\":{{\"text\":\"{}\"}},\
             \"locations\":[{{\"physicalLocation\":{{\
             \"artifactLocation\":{{\"uri\":\"{}\",\"uriBaseId\":\"SRCROOT\"}},\
             \"region\":{{\"startLine\":{}}}}}}}]}}",
            d.rule,
            json_escape(&format!("{} (fix: {})", d.message, d.suggestion)),
            json_escape(&d.file),
            d.line
        ));
    }
    out.push_str("]}]}");
    out
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Diagnostic> {
        vec![Diagnostic {
            rule: "D001",
            file: "crates/x/src/a.rs".to_string(),
            line: 7,
            message: "wall-clock \"now\"".to_string(),
            suggestion: "use the sim clock".to_string(),
        }]
    }

    #[test]
    fn json_escapes_quotes_and_is_stable() {
        let a = render_json(&sample(), 3);
        let b = render_json(&sample(), 3);
        assert_eq!(a, b);
        assert!(a.contains("\\\"now\\\""));
        assert!(a.starts_with("{\"files_scanned\":3"));
    }

    #[test]
    fn sarif_has_schema_rules_and_locations() {
        let s = render_sarif(&sample(), 3);
        assert!(s.contains("\"version\":\"2.1.0\""));
        assert!(s.contains("\"id\":\"L001\""), "registry rules present");
        assert!(s.contains("\"uri\":\"crates/x/src/a.rs\""));
        assert!(s.contains("\"startLine\":7"));
        assert_eq!(s, render_sarif(&sample(), 3), "byte-stable");
    }
}
