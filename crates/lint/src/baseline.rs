//! Finding baselines — the ratchet.
//!
//! A baseline file records, per `(rule, file)`, how many findings are
//! *tolerated*. Applying it suppresses that many findings (earliest
//! lines first, so the budget tracks the oldest debt) and leaves the
//! rest as failures: new findings can never hide behind old ones, and
//! when debt is paid down the unused budget is reported as slack so the
//! file can be ratcheted.
//!
//! The format is line-oriented and diff-friendly:
//!
//! ```text
//! # nagano-lint baseline — regenerate with --write-baseline
//! O001 crates/pagegen/src/render.rs 2
//! ```

use std::collections::BTreeMap;

use crate::rules::Diagnostic;

/// Tolerated finding counts per `(rule, file)`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    budgets: BTreeMap<(String, String), usize>,
}

/// Result of applying a baseline to a report.
#[derive(Debug, Default)]
pub struct BaselineOutcome {
    /// Findings not covered by any budget — still failures.
    pub remaining: Vec<Diagnostic>,
    /// Number of findings the baseline absorbed.
    pub suppressed: usize,
    /// Human-readable slack notes: budgets larger than today's count.
    pub slack: Vec<String>,
}

impl Baseline {
    /// Parse the line format; `#`-comments and blank lines are skipped.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut budgets = BTreeMap::new();
        for (n, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(rule), Some(file), Some(count), None) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return Err(format!(
                    "baseline line {}: expected `<rule> <file> <count>`, got `{line}`",
                    n + 1
                ));
            };
            let count: usize = count
                .parse()
                .map_err(|_| format!("baseline line {}: bad count `{count}`", n + 1))?;
            if budgets
                .insert((rule.to_string(), file.to_string()), count)
                .is_some()
            {
                return Err(format!(
                    "baseline line {}: duplicate entry for {rule} {file}",
                    n + 1
                ));
            }
        }
        Ok(Baseline { budgets })
    }

    /// Render in the canonical sorted form.
    pub fn render(&self) -> String {
        let mut out = String::from("# nagano-lint baseline — regenerate with --write-baseline\n");
        for ((rule, file), count) in &self.budgets {
            out.push_str(&format!("{rule} {file} {count}\n"));
        }
        out
    }

    /// Baseline that exactly covers `diags`.
    pub fn from_report(diags: &[Diagnostic]) -> Baseline {
        let mut budgets: BTreeMap<(String, String), usize> = BTreeMap::new();
        for d in diags {
            *budgets
                .entry((d.rule.to_string(), d.file.clone()))
                .or_default() += 1;
        }
        Baseline { budgets }
    }

    /// Suppress up to the budgeted count per `(rule, file)` — earliest
    /// lines first (`diags` must already be in the report's sorted
    /// order, which is line-ascending within a file).
    pub fn apply(&self, diags: Vec<Diagnostic>) -> BaselineOutcome {
        let mut spent: BTreeMap<(String, String), usize> = BTreeMap::new();
        let mut out = BaselineOutcome::default();
        for d in diags {
            let key = (d.rule.to_string(), d.file.clone());
            let budget = self.budgets.get(&key).copied().unwrap_or(0);
            let used = spent.entry(key).or_default();
            if *used < budget {
                *used += 1;
                out.suppressed += 1;
            } else {
                out.remaining.push(d);
            }
        }
        for ((rule, file), budget) in &self.budgets {
            let used = spent
                .get(&(rule.clone(), file.clone()))
                .copied()
                .unwrap_or(0);
            if used < *budget {
                out.slack.push(format!(
                    "{rule} {file}: budget {budget} but only {used} found — ratchet the \
                     baseline down"
                ));
            }
        }
        out
    }

    /// Number of `(rule, file)` entries.
    pub fn len(&self) -> usize {
        self.budgets.len()
    }

    /// True when no budgets are recorded.
    pub fn is_empty(&self) -> bool {
        self.budgets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, file: &str, line: u32) -> Diagnostic {
        Diagnostic {
            rule,
            file: file.to_string(),
            line,
            message: "m".to_string(),
            suggestion: "s".to_string(),
        }
    }

    #[test]
    fn parse_render_round_trips() {
        let b = Baseline::parse("# c\nO001 crates/a.rs 2\nL001 crates/b.rs 1\n").unwrap();
        let again = Baseline::parse(&b.render()).unwrap();
        assert_eq!(b, again);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn parse_rejects_garbage_and_duplicates() {
        assert!(
            Baseline::parse("O001 crates/a.rs").is_err(),
            "missing count"
        );
        assert!(
            Baseline::parse("O001 crates/a.rs two").is_err(),
            "bad count"
        );
        assert!(Baseline::parse("O001 a.rs 1 extra").is_err(), "extra field");
        assert!(Baseline::parse("O001 a.rs 1\nO001 a.rs 2").is_err(), "dup");
    }

    #[test]
    fn apply_suppresses_earliest_lines_first() {
        let b = Baseline::parse("O001 a.rs 2").unwrap();
        let out = b.apply(vec![
            diag("O001", "a.rs", 3),
            diag("O001", "a.rs", 9),
            diag("O001", "a.rs", 20),
            diag("L001", "a.rs", 1),
        ]);
        assert_eq!(out.suppressed, 2);
        assert_eq!(out.remaining.len(), 2);
        assert_eq!(out.remaining[0].rule, "O001");
        assert_eq!(out.remaining[0].line, 20, "newest finding stays a failure");
        assert_eq!(out.remaining[1].rule, "L001", "unbudgeted rule unaffected");
        assert!(out.slack.is_empty());
    }

    #[test]
    fn unused_budget_is_reported_as_slack() {
        let b = Baseline::parse("O001 a.rs 5").unwrap();
        let out = b.apply(vec![diag("O001", "a.rs", 3)]);
        assert!(out.remaining.is_empty());
        assert_eq!(out.slack.len(), 1);
        assert!(out.slack[0].contains("budget 5 but only 1"));
    }

    #[test]
    fn from_report_covers_exactly() {
        let diags = vec![
            diag("O001", "a.rs", 3),
            diag("O001", "a.rs", 9),
            diag("L002", "b.rs", 4),
        ];
        let b = Baseline::from_report(&diags);
        let out = b.apply(diags);
        assert!(out.remaining.is_empty());
        assert!(out.slack.is_empty());
        assert_eq!(out.suppressed, 3);
    }
}
