//! CLI entry point: `cargo run -p nagano-lint [-- --json | --rules | --root <path>]`.
//!
//! Exits 0 when the workspace is clean, 1 when there are findings, and
//! 2 on I/O or usage errors. `--json` emits the machine-readable form
//! consumed by tooling; the default output is one finding per line in
//! `rule file:line message` shape with an indented suggestion.

use std::path::PathBuf;
use std::process::ExitCode;

use nagano_lint::{lint_workspace, Diagnostic, RULES};

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--rules" => {
                for rule in RULES {
                    println!("{}  {}", rule.id, rule.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                println!(
                    "nagano-lint: workspace determinism & robustness linter\n\n\
                     usage: cargo run -p nagano-lint [-- OPTIONS]\n\n\
                     options:\n  \
                     --json         machine-readable output\n  \
                     --rules        list the rule registry\n  \
                     --root <path>  workspace root (default: this repo)"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(default_root);

    let report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("nagano-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", render_json(&report.diagnostics, report.files_scanned));
    } else {
        for d in &report.diagnostics {
            println!("{} {}:{} {}", d.rule, d.file, d.line, d.message);
            println!("     fix: {}", d.suggestion);
        }
        if report.is_clean() {
            println!(
                "nagano-lint: clean — {} files, {} rules",
                report.files_scanned,
                RULES.len()
            );
        } else {
            println!(
                "nagano-lint: {} violation(s) in {} file(s) scanned",
                report.diagnostics.len(),
                report.files_scanned
            );
        }
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The repo root: two levels above this crate's manifest when built by
/// cargo, the current directory otherwise.
fn default_root() -> PathBuf {
    match option_env!("CARGO_MANIFEST_DIR") {
        Some(dir) => PathBuf::from(dir).join("../.."),
        None => PathBuf::from("."),
    }
}

fn render_json(diags: &[Diagnostic], files_scanned: usize) -> String {
    let mut out = String::from("{\"files_scanned\":");
    out.push_str(&files_scanned.to_string());
    out.push_str(",\"diagnostics\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\",\"suggestion\":\"{}\"}}",
            d.rule,
            json_escape(&d.file),
            d.line,
            json_escape(&d.message),
            json_escape(&d.suggestion)
        ));
    }
    out.push_str("]}");
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
