//! CLI entry point: `cargo run -p nagano-lint [-- OPTIONS]`.
//!
//! Exits 0 when the workspace is clean (after baseline application), 1
//! when there are findings, and 2 on I/O or usage errors. `--json`
//! emits the machine-readable form consumed by tooling, `--sarif` the
//! SARIF 2.1.0 document CI uploads; the default output is one finding
//! per line in `rule file:line message` shape with an indented
//! suggestion.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

use nagano_lint::{lint_workspace, render_json, render_sarif, Baseline, RULES};

struct Options {
    json: bool,
    sarif: bool,
    sarif_file: Option<PathBuf>,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    expect: Option<BTreeSet<String>>,
    root: Option<PathBuf>,
}

fn main() -> ExitCode {
    let mut opts = Options {
        json: false,
        sarif: false,
        sarif_file: None,
        baseline: None,
        write_baseline: None,
        expect: None,
        root: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--sarif" => opts.sarif = true,
            "--rules" => {
                for rule in RULES {
                    println!("{}  {}", rule.id, rule.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--sarif-file" | "--baseline" | "--write-baseline" | "--root" => {
                let Some(p) = args.next() else {
                    eprintln!("{arg} requires a path");
                    return ExitCode::from(2);
                };
                let p = PathBuf::from(p);
                match arg.as_str() {
                    "--sarif-file" => opts.sarif_file = Some(p),
                    "--baseline" => opts.baseline = Some(p),
                    "--write-baseline" => opts.write_baseline = Some(p),
                    _ => opts.root = Some(p),
                }
            }
            "--expect" => match args.next() {
                Some(ids) => {
                    opts.expect = Some(
                        ids.split(',')
                            .map(|s| s.trim().to_string())
                            .filter(|s| !s.is_empty())
                            .collect(),
                    );
                }
                None => {
                    eprintln!("--expect requires a comma-separated rule list");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                println!(
                    "nagano-lint: workspace determinism, robustness & ODG-semantics linter\n\n\
                     usage: cargo run -p nagano-lint [-- OPTIONS]\n\n\
                     options:\n  \
                     --json                  machine-readable output\n  \
                     --sarif                 SARIF 2.1.0 output on stdout\n  \
                     --sarif-file <path>     also write the SARIF document to <path>\n  \
                     --baseline <path>       suppress findings budgeted in <path> (ratchet)\n  \
                     --write-baseline <path> write a baseline covering today's findings\n  \
                     --expect <ID,ID,...>    exit 0 iff exactly these rule ids fire (fixture CI)\n  \
                     --rules                 list the rule registry\n  \
                     --root <path>           workspace root (default: this repo)"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }
    let root = opts.root.clone().unwrap_or_else(default_root);

    let report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("nagano-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &opts.write_baseline {
        let text = Baseline::from_report(&report.diagnostics).render();
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("nagano-lint: cannot write baseline {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "nagano-lint: baseline covering {} finding(s) written to {}",
            report.diagnostics.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    // Apply the baseline ratchet. A missing baseline file is an error,
    // not an empty baseline: CI passing because the file went missing
    // would defeat the gate.
    let mut diagnostics = report.diagnostics;
    if let Some(path) = &opts.baseline {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("nagano-lint: cannot read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let baseline = match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("nagano-lint: {e}");
                return ExitCode::from(2);
            }
        };
        let outcome = baseline.apply(diagnostics);
        for note in &outcome.slack {
            eprintln!("nagano-lint: baseline slack: {note}");
        }
        if outcome.suppressed > 0 {
            eprintln!(
                "nagano-lint: {} finding(s) suppressed by the baseline",
                outcome.suppressed
            );
        }
        diagnostics = outcome.remaining;
    }

    // The SARIF artifact is written whatever the verdict — CI uploads
    // it from failing runs too.
    if let Some(path) = &opts.sarif_file {
        if let Err(e) = std::fs::write(path, render_sarif(&diagnostics, report.files_scanned)) {
            eprintln!("nagano-lint: cannot write SARIF {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if opts.sarif {
        println!("{}", render_sarif(&diagnostics, report.files_scanned));
    } else if opts.json {
        println!("{}", render_json(&diagnostics, report.files_scanned));
    } else {
        for d in &diagnostics {
            println!("{} {}:{} {}", d.rule, d.file, d.line, d.message);
            println!("     fix: {}", d.suggestion);
        }
    }

    // Fixture mode: assert that exactly the expected rule set fires.
    if let Some(expected) = &opts.expect {
        let fired: BTreeSet<String> = diagnostics.iter().map(|d| d.rule.to_string()).collect();
        if &fired == expected {
            if !opts.sarif && !opts.json {
                println!(
                    "nagano-lint: expected rule set {{{}}} fired",
                    expected.iter().cloned().collect::<Vec<_>>().join(", ")
                );
            }
            return ExitCode::SUCCESS;
        }
        eprintln!(
            "nagano-lint: expected rules {{{}}} but got {{{}}}",
            expected.iter().cloned().collect::<Vec<_>>().join(", "),
            fired.into_iter().collect::<Vec<_>>().join(", ")
        );
        return ExitCode::FAILURE;
    }

    if !opts.sarif && !opts.json {
        if diagnostics.is_empty() {
            println!(
                "nagano-lint: clean — {} files, {} rules",
                report.files_scanned,
                RULES.len()
            );
        } else {
            println!(
                "nagano-lint: {} violation(s) in {} file(s) scanned",
                diagnostics.len(),
                report.files_scanned
            );
        }
    }

    if diagnostics.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The repo root: two levels above this crate's manifest when built by
/// cargo, the current directory otherwise.
fn default_root() -> PathBuf {
    match option_env!("CARGO_MANIFEST_DIR") {
        Some(dir) => PathBuf::from(dir).join("../.."),
        None => PathBuf::from("."),
    }
}
