//! Pass 2, ODG rules: O001 (renderer reads data with no covering ODG
//! edge) and O002 (registered edge whose data is never read).
//!
//! The paper's correctness story rests on the Object Dependence Graph
//! being *complete*: one missing edge and the trigger monitor serves a
//! stale page forever. This pass audits the renderer source in
//! `crates/pagegen` directly: every `match` over `PageKey` /
//! `FragmentKey` is an ODG registration site, and within each arm we
//! compare
//!
//! * the **reads** — `self.db.<method>(…)` calls, mapped to the data
//!   family they touch (`events_on_day` reads `data:today:*` and
//!   `data:event:*`, `medal_standings` reads `data:medals:*`, …) —
//!   against
//! * the **edges** — `deps.push(Dependency::…)` calls, classified by
//!   the key expression (`today_data_key(day)` → today,
//!   `FragmentKey::MedalTable` → a fragment edge, `c.data_key()` → the
//!   arm binder's family, …).
//!
//! Fragments are hybrid vertices (data → fragment → page, the paper's
//! Figure 15), so a read is also covered when the arm registers a
//! fragment edge whose own arm registers the data family — the
//! fragment-to-family closure is computed across *all* pagegen files
//! first, which is what makes the audit cross-file.
//!
//! O001 fires on an uncovered read (and on `inline_fragment(V)` with no
//! `Fragment(V)` edge); O002 fires on a dead edge — a registered data
//! family the arm never reads, or a fragment edge never inlined. The
//! purely static arms (Welcome/Nagano/Fun/Venue) are exempt from O001:
//! they are regenerated never and invalidated never by design.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{TokKind, Token};
use crate::model::SourceFile;
use crate::rules::Diagnostic;

/// Data-key families (the `<family>` in `data:<family>:<id>`).
type Family = &'static str;

/// `self.db.<method>(…)` → the data families the method reads.
const METHOD_FAMILIES: &[(&str, &[Family])] = &[
    ("athlete", &["athlete"]),
    ("athletes_of_country", &["country"]),
    ("athletes_of_sport", &["sport"]),
    ("country", &["country"]),
    ("event", &["event"]),
    ("events_of_sport", &["sport"]),
    ("events_on_day", &["today", "event"]),
    ("medal_standings", &["medals"]),
    ("news", &["news"]),
    ("news_on_day", &["today", "news"]),
    ("photos_for_event", &["event", "photo"]),
    ("results_for_athlete", &["athlete"]),
    ("results_for_event", &["event"]),
    ("sport", &["sport"]),
];

/// Typed-id constructors → family (`Dependency::new(EventId(n).data_key())`).
const ID_CTORS: &[(&str, Family)] = &[
    ("AthleteId", "athlete"),
    ("CountryId", "country"),
    ("EventId", "event"),
    ("NewsId", "news"),
    ("PhotoId", "photo"),
    ("SportId", "sport"),
];

/// Arm-binder variants → the family `<binder>.data_key()` resolves to.
const BINDER_FAMILY: &[(&str, Family)] = &[
    ("Athlete", "athlete"),
    ("Country", "country"),
    ("Event", "event"),
    ("News", "news"),
    ("ResultTable", "event"),
    ("Sport", "sport"),
    ("Venue", "sport"),
];

/// Well-known loop locals whose `.data_key()` family is their row type.
const LOCAL_NAMES: &[(&str, Family)] =
    &[("article", "news"), ("event", "event"), ("photo", "photo")];

/// Arms that render fixed content: no data reads expected, O001 off.
const STATIC_ARMS: &[&str] = &["Fun", "Nagano", "Venue", "Welcome"];

/// One classified ODG edge registration.
#[derive(Debug, Clone, PartialEq)]
enum Dep {
    /// Edge to a raw data key of this family.
    Data(Family),
    /// Edge to a fragment object (hybrid vertex).
    Fragment(String),
    /// Key expression we could not classify — ignored by both rules.
    Unknown,
}

/// One `match` arm of an ODG registration site.
#[derive(Debug)]
struct Arm {
    file: String,
    /// Variant name (`Home`, `Country`, `ResultTable`, …).
    variant: String,
    /// Arm pattern binder (`day` in `Home(day)`), if any.
    binder: Option<String>,
    /// True when the arm matches a `FragmentKey` variant.
    is_fragment: bool,
    /// (method, line, families) per `db` read.
    reads: Vec<(String, u32, &'static [Family])>,
    /// (classification, `push` line) per registered edge.
    deps: Vec<(Dep, u32)>,
    /// (fragment variant, line) per `inline_fragment` call.
    inlines: Vec<(String, u32)>,
}

fn lookup<V: Copy>(table: &[(&str, V)], key: &str) -> Option<V> {
    table
        .binary_search_by_key(&key, |(k, _)| k)
        .ok()
        .map(|i| table[i].1)
}

/// Run the ODG audit over the parsed pagegen files.
pub fn run(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut arms: Vec<Arm> = Vec::new();
    for f in files.iter().filter(|f| f.krate == "pagegen") {
        collect_arms(f, &mut arms);
    }
    // Fragment → data-family closure: a page arm registering a
    // Fragment(V) edge is covered for every family V's own arm
    // registers (union across files; deterministic BTree order).
    let mut frag_families: BTreeMap<String, BTreeSet<Family>> = BTreeMap::new();
    for arm in arms.iter().filter(|a| a.is_fragment) {
        let entry = frag_families.entry(arm.variant.clone()).or_default();
        for (dep, _) in &arm.deps {
            if let Dep::Data(fam) = dep {
                entry.insert(fam);
            }
        }
    }
    let mut diags = Vec::new();
    for arm in &arms {
        audit_arm(arm, &frag_families, &mut diags);
    }
    diags
}

fn audit_arm(
    arm: &Arm,
    frag_families: &BTreeMap<String, BTreeSet<Family>>,
    diags: &mut Vec<Diagnostic>,
) {
    // Families covered by this arm's registered edges.
    let mut covered: BTreeSet<Family> = BTreeSet::new();
    for (dep, _) in &arm.deps {
        match dep {
            Dep::Data(fam) => {
                covered.insert(fam);
            }
            Dep::Fragment(v) => {
                if let Some(fams) = frag_families.get(v) {
                    covered.extend(fams.iter().copied());
                }
            }
            Dep::Unknown => {}
        }
    }
    // Families this arm actually reads.
    let mut read_families: BTreeSet<Family> = BTreeSet::new();
    for (_, _, fams) in &arm.reads {
        read_families.extend(fams.iter().copied());
    }

    // O001: uncovered reads (one finding per read line + family).
    if !STATIC_ARMS.contains(&arm.variant.as_str()) {
        let mut seen: BTreeSet<(u32, Family)> = BTreeSet::new();
        for (method, line, fams) in &arm.reads {
            for fam in fams.iter() {
                if !covered.contains(fam) && seen.insert((*line, fam)) {
                    diags.push(Diagnostic {
                        rule: "O001",
                        file: arm.file.clone(),
                        line: *line,
                        message: format!(
                            "arm `{}` reads `db.{}()` (`data:{}:*`) but registers no covering \
                             ODG edge — updates to that data will not invalidate this object",
                            arm.variant, method, fam
                        ),
                        suggestion: format!(
                            "push a Dependency on the `data:{fam}` key (or on a fragment whose \
                             arm registers it)"
                        ),
                    });
                }
            }
        }
        // An inlined fragment body without the fragment edge is the
        // same staleness hole one level up.
        for (v, line) in &arm.inlines {
            if !arm
                .deps
                .iter()
                .any(|(d, _)| matches!(d, Dep::Fragment(fv) if fv == v))
            {
                diags.push(Diagnostic {
                    rule: "O001",
                    file: arm.file.clone(),
                    line: *line,
                    message: format!(
                        "arm `{}` inlines fragment `{}` without registering its fragment edge",
                        arm.variant, v
                    ),
                    suggestion: format!(
                        "push a Dependency on PageKey::Fragment(FragmentKey::{v}).object_key()"
                    ),
                });
            }
        }
    }

    // O002: dead edges.
    for (dep, line) in &arm.deps {
        match dep {
            Dep::Data(fam) if !read_families.contains(fam) => {
                diags.push(Diagnostic {
                    rule: "O002",
                    file: arm.file.clone(),
                    line: *line,
                    message: format!(
                        "arm `{}` registers an ODG edge on `data:{}:*` but never reads that \
                         data — every update there causes a wasted invalidation",
                        arm.variant, fam
                    ),
                    suggestion: "remove the dead edge, or render the data it tracks".to_string(),
                });
            }
            Dep::Fragment(v) if !arm.inlines.iter().any(|(iv, _)| iv == v) && !arm.is_fragment => {
                diags.push(Diagnostic {
                    rule: "O002",
                    file: arm.file.clone(),
                    line: *line,
                    message: format!(
                        "arm `{}` registers a fragment edge on `{}` but never inlines it",
                        arm.variant, v
                    ),
                    suggestion: "remove the dead fragment edge, or inline the fragment".to_string(),
                });
            }
            _ => {}
        }
    }
}

fn ident_at(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(toks: &[Token], i: usize, c: char) -> bool {
    matches!(toks.get(i), Some(t) if t.kind == TokKind::Punct(c))
}

/// Find every ODG `match` in the file and split it into arms.
fn collect_arms(file: &SourceFile, out: &mut Vec<Arm>) {
    let toks = &file.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        if ident_at(toks, i) == Some("match") {
            if let Some(end) = parse_match(file, toks, i, out) {
                i = end;
                continue;
            }
        }
        i += 1;
    }
}

/// Parse the `match` starting at `i` if it is an ODG site (first arm
/// pattern names `PageKey` or `FragmentKey`); returns the index just
/// past its body on success.
fn parse_match(file: &SourceFile, toks: &[Token], i: usize, out: &mut Vec<Arm>) -> Option<usize> {
    // Body `{` = first `{` at paren/bracket depth 0 after the scrutinee.
    let mut j = i + 1;
    let mut depth = 0i32;
    let open = loop {
        match toks.get(j).map(|t| &t.kind)? {
            TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
            TokKind::Punct('{') if depth == 0 => break j,
            _ => {}
        }
        j += 1;
    };
    let body_end = matching_brace(toks, open)?;

    // Split arms at depth 0 inside the body.
    let mut arms: Vec<(usize, usize, usize)> = Vec::new(); // (pat_start, body_start, end)
    let mut k = open + 1;
    while k < body_end {
        let pat_start = k;
        // Pattern runs to the `=>` at depth 0.
        let mut d = 0i32;
        let arrow = loop {
            if k >= body_end {
                return finish(file, toks, &arms, out, body_end);
            }
            match &toks[k].kind {
                TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => d += 1,
                TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => d -= 1,
                TokKind::Punct('=') if d == 0 && punct_at(toks, k + 1, '>') => break k,
                _ => {}
            }
            k += 1;
        };
        let body_start = arrow + 2;
        // Body: a block (runs to just past its matching brace) or an
        // expression (runs to the `,` at depth 0 / the match body end).
        let arm_end = if punct_at(toks, body_start, '{') {
            matching_brace(toks, body_start)? + 1
        } else {
            let mut d = 0i32;
            let mut m = body_start;
            loop {
                if m >= body_end {
                    break body_end;
                }
                match &toks[m].kind {
                    TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => d += 1,
                    TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => d -= 1,
                    TokKind::Punct(',') if d == 0 => break m,
                    _ => {}
                }
                m += 1;
            }
        };
        arms.push((pat_start, body_start, arm_end));
        k = arm_end;
        if punct_at(toks, k, ',') {
            k += 1;
        }
    }
    finish(file, toks, &arms, out, body_end)
}

/// Validate the first arm's pattern, then extract every arm.
fn finish(
    file: &SourceFile,
    toks: &[Token],
    arms: &[(usize, usize, usize)],
    out: &mut Vec<Arm>,
    body_end: usize,
) -> Option<usize> {
    let (ps, bs, _) = *arms.first()?;
    let first_pat: Vec<&str> = (ps..bs).filter_map(|i| ident_at(toks, i)).collect();
    if !first_pat.contains(&"PageKey") && !first_pat.contains(&"FragmentKey") {
        return None;
    }
    for &(ps, bs, ae) in arms {
        out.push(extract_arm(file, toks, ps, bs, ae));
    }
    Some(body_end + 1)
}

/// Index of the `}` matching the `{` at `i`.
fn matching_brace(toks: &[Token], i: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        match &toks[j].kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Pull variant, binder, reads, deps, and inlines out of one arm.
fn extract_arm(file: &SourceFile, toks: &[Token], ps: usize, bs: usize, ae: usize) -> Arm {
    // Pattern: variant = ident after the `::` following PageKey /
    // FragmentKey (innermost wins: `PageKey::Fragment(f)` → Fragment);
    // binder = first ident inside the parens after the variant.
    let mut variant = String::new();
    let mut binder: Option<String> = None;
    let mut is_fragment = false;
    let mut p = ps;
    while p + 3 < bs + 1 && p < bs {
        if let Some(head @ ("PageKey" | "FragmentKey")) = ident_at(toks, p) {
            if punct_at(toks, p + 1, ':') && punct_at(toks, p + 2, ':') {
                if let Some(v) = ident_at(toks, p + 3) {
                    variant = v.to_string();
                    is_fragment = head == "FragmentKey";
                    if punct_at(toks, p + 4, '(') {
                        binder = ident_at(toks, p + 5).map(str::to_string);
                    }
                }
            }
        }
        p += 1;
    }

    let mut arm = Arm {
        file: file.rel.clone(),
        variant,
        binder,
        is_fragment,
        reads: Vec::new(),
        deps: Vec::new(),
        inlines: Vec::new(),
    };

    let mut i = bs;
    while i < ae {
        match ident_at(toks, i) {
            // `db . <method> (`  or  `db ( ) . <method> (`
            Some("db") => {
                let m = if punct_at(toks, i + 1, '.') {
                    i + 2
                } else if punct_at(toks, i + 1, '(')
                    && punct_at(toks, i + 2, ')')
                    && punct_at(toks, i + 3, '.')
                {
                    i + 4
                } else {
                    i += 1;
                    continue;
                };
                if let Some(method) = ident_at(toks, m) {
                    if punct_at(toks, m + 1, '(') {
                        if let Some(fams) = lookup(METHOD_FAMILIES, method) {
                            arm.reads.push((method.to_string(), toks[m].line, fams));
                        }
                    }
                }
            }
            // `deps . push ( <key expr> ... )`
            Some("deps")
                if punct_at(toks, i + 1, '.')
                    && ident_at(toks, i + 2) == Some("push")
                    && punct_at(toks, i + 3, '(') =>
            {
                let close = matching_paren(toks, i + 3).unwrap_or(ae);
                let dep = classify_dep(toks, i + 4, close, &arm);
                arm.deps.push((dep, toks[i + 2].line));
                i = close;
            }
            // `inline_fragment ( FragmentKey :: V ... )`
            Some("inline_fragment") if punct_at(toks, i + 1, '(') => {
                let close = matching_paren(toks, i + 1).unwrap_or(ae);
                let mut q = i + 2;
                while q < close {
                    if ident_at(toks, q) == Some("FragmentKey")
                        && punct_at(toks, q + 1, ':')
                        && punct_at(toks, q + 2, ':')
                    {
                        if let Some(v) = ident_at(toks, q + 3) {
                            arm.inlines.push((v.to_string(), toks[q].line));
                            break;
                        }
                    }
                    q += 1;
                }
                i = close;
            }
            _ => {}
        }
        i += 1;
    }
    arm
}

/// Index of the `)` matching the `(` at `i`.
fn matching_paren(toks: &[Token], i: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        match &toks[j].kind {
            TokKind::Punct('(') => depth += 1,
            TokKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Classify the key expression of one `deps.push(…)`.
fn classify_dep(toks: &[Token], start: usize, end: usize, arm: &Arm) -> Dep {
    // Fragment edges first: `FragmentKey::V` anywhere in the argument.
    let mut i = start;
    while i < end {
        if ident_at(toks, i) == Some("FragmentKey")
            && punct_at(toks, i + 1, ':')
            && punct_at(toks, i + 2, ':')
        {
            if let Some(v) = ident_at(toks, i + 3) {
                return Dep::Fragment(v.to_string());
            }
        }
        i += 1;
    }
    // Named key helpers and typed-id constructors.
    for i in start..end {
        match ident_at(toks, i) {
            Some("today_data_key") => return Dep::Data("today"),
            Some("medals_data_key") => return Dep::Data("medals"),
            Some(word) => {
                if let Some(fam) = lookup(ID_CTORS, word) {
                    return Dep::Data(fam);
                }
            }
            None => {}
        }
    }
    // `<chain root>.data_key()`: the arm binder's family, or a
    // well-known loop local.
    for i in start..end {
        if ident_at(toks, i) == Some("data_key") && i > 0 && punct_at(toks, i - 1, '.') {
            // Walk the dotted chain back to its root ident.
            let mut j = i - 2;
            while j >= 2 && ident_at(toks, j).is_some() && punct_at(toks, j - 1, '.') {
                j -= 2;
            }
            if let Some(root) = ident_at(toks, j) {
                if arm.binder.as_deref() == Some(root) {
                    if let Some(fam) = lookup(BINDER_FAMILY, &arm.variant) {
                        return Dep::Data(fam);
                    }
                }
                if let Some(fam) = lookup(LOCAL_NAMES, root) {
                    return Dep::Data(fam);
                }
            }
            return Dep::Unknown;
        }
    }
    Dep::Unknown
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let parsed: Vec<SourceFile> = files
            .iter()
            .map(|(rel, src)| SourceFile::parse(rel, src))
            .collect();
        run(&parsed)
    }

    const COVERED: &str = "
        impl R {
            fn compose(&self, key: PageKey, deps: &mut Vec<Dependency>) {
                match key {
                    PageKey::Athlete(a) => {
                        deps.push(Dependency::new(a.data_key()));
                        let row = self.db.athlete(a);
                        let rs = self.db.results_for_athlete(a);
                    }
                }
            }
        }
    ";

    #[test]
    fn covered_reads_are_clean() {
        assert!(run_on(&[("crates/pagegen/src/r.rs", COVERED)]).is_empty());
    }

    #[test]
    fn uncovered_read_fires_o001_at_the_read_line() {
        let src = "
            fn compose(&self, key: PageKey, deps: &mut Vec<Dependency>) {
                match key {
                    PageKey::Country(c) => {
                        deps.push(Dependency::new(c.data_key()));
                        let rows = self.db.athletes_of_country(c);
                        let standings = self.db.medal_standings();
                    }
                }
            }
        ";
        let diags = run_on(&[("crates/pagegen/src/r.rs", src)]);
        let o001: Vec<_> = diags.iter().filter(|d| d.rule == "O001").collect();
        assert_eq!(o001.len(), 1, "{diags:?}");
        assert_eq!(o001[0].line, 7);
        assert!(o001[0].message.contains("medal_standings"));
        // The country edge itself is live (athletes_of_country reads it).
        assert!(diags.iter().all(|d| d.rule != "O002"), "{diags:?}");
    }

    #[test]
    fn dead_edge_fires_o002_at_the_push_line() {
        let src = "
            fn compose(&self, key: PageKey, deps: &mut Vec<Dependency>) {
                match key {
                    PageKey::Athlete(a) => {
                        deps.push(Dependency::new(a.data_key()));
                        deps.push(Dependency::weighted(
                            nagano_db::schema::medals_data_key(),
                            0.25,
                        ));
                        let row = self.db.athlete(a);
                    }
                }
            }
        ";
        let diags = run_on(&[("crates/pagegen/src/r.rs", src)]);
        let o002: Vec<_> = diags.iter().filter(|d| d.rule == "O002").collect();
        assert_eq!(o002.len(), 1, "{diags:?}");
        assert_eq!(o002[0].line, 6);
        assert!(o002[0].message.contains("data:medals"));
    }

    #[test]
    fn fragment_edges_cover_reads_across_files() {
        let page = "
            fn compose(&self, key: PageKey, deps: &mut Vec<Dependency>) {
                match key {
                    PageKey::Home(day) => {
                        deps.push(Dependency::weighted(
                            nagano_db::schema::today_data_key(day), 2.0));
                        for event in self.db.events_on_day(day) {
                            deps.push(Dependency::new(
                                PageKey::Fragment(FragmentKey::ResultTable(event.id))
                                    .object_key()));
                            self.inline_fragment(FragmentKey::ResultTable(event.id), html);
                        }
                    }
                }
            }
        ";
        let frag = "
            fn compose_fragment(&self, f: FragmentKey, deps: &mut Vec<Dependency>) {
                match f {
                    FragmentKey::ResultTable(e) => {
                        deps.push(Dependency::new(e.data_key()));
                        let rows = self.db.results_for_event(e);
                    }
                }
            }
        ";
        let diags = run_on(&[
            ("crates/pagegen/src/page.rs", page),
            ("crates/pagegen/src/frag.rs", frag),
        ]);
        // events_on_day reads today (direct edge) + event (covered via
        // the ResultTable fragment's own edge, cross-file).
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn cached_fragment_slot_form_is_recognized() {
        // The composition-plan renderer passes a slot recorder as a
        // third argument; the audit must still see the inline and the
        // loop-local `event.….data_key()` edge (LOCAL_NAMES).
        let page = "
            fn compose(&self, key: PageKey, deps: &mut Vec<Dependency>) {
                match key {
                    PageKey::Home(day) => {
                        deps.push(Dependency::weighted(
                            nagano_db::schema::today_data_key(day), 2.0));
                        for event in self.db.events_on_day(day) {
                            deps.push(Dependency::new(
                                PageKey::Fragment(FragmentKey::ResultTable(event.id))
                                    .object_key()));
                            deps.push(Dependency::weighted(event.id.data_key(), 1.0));
                            self.inline_fragment(
                                FragmentKey::ResultTable(event.id),
                                html,
                                slots.as_deref_mut(),
                            );
                        }
                    }
                }
            }
        ";
        let frag = "
            fn compose_fragment(&self, f: FragmentKey, deps: &mut Vec<Dependency>) {
                match f {
                    FragmentKey::ResultTable(e) => {
                        deps.push(Dependency::new(e.data_key()));
                        let rows = self.db.results_for_event(e);
                    }
                }
            }
        ";
        let diags = run_on(&[
            ("crates/pagegen/src/page.rs", page),
            ("crates/pagegen/src/frag.rs", frag),
        ]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn dead_event_local_edge_is_o002() {
        // `event.id.data_key()` classifies via LOCAL_NAMES, so an arm
        // registering it without any event-family read is a dead edge.
        let src = "
            fn compose(&self, key: PageKey, deps: &mut Vec<Dependency>) {
                match key {
                    PageKey::Medals => {
                        deps.push(Dependency::weighted(event.id.data_key(), 1.0));
                        for (c, m) in self.db.medal_standings().iter() {
                            let _ = writeln!(html, \"<span>{c} {}</span>\", m.gold);
                        }
                        deps.push(Dependency::new(nagano_db::schema::medals_data_key()));
                    }
                }
            }
        ";
        let diags = run_on(&[("crates/pagegen/src/r.rs", src)]);
        let o002: Vec<_> = diags.iter().filter(|d| d.rule == "O002").collect();
        assert_eq!(o002.len(), 1, "{diags:?}");
        assert!(o002[0].message.contains("data:event"), "{o002:?}");
    }

    #[test]
    fn fragment_edge_without_inline_is_dead() {
        let src = "
            fn compose(&self, key: PageKey, deps: &mut Vec<Dependency>) {
                match key {
                    PageKey::Medals => {
                        deps.push(Dependency::new(
                            PageKey::Fragment(FragmentKey::MedalTable).object_key()));
                    }
                }
            }
        ";
        let diags = run_on(&[("crates/pagegen/src/r.rs", src)]);
        assert_eq!(
            diags.iter().filter(|d| d.rule == "O002").count(),
            1,
            "{diags:?}"
        );
    }

    #[test]
    fn inline_without_fragment_edge_is_o001() {
        let src = "
            fn compose(&self, key: PageKey, deps: &mut Vec<Dependency>) {
                match key {
                    PageKey::Medals => {
                        self.inline_fragment(FragmentKey::MedalTable, html);
                    }
                }
            }
        ";
        let diags = run_on(&[("crates/pagegen/src/r.rs", src)]);
        assert_eq!(
            diags.iter().filter(|d| d.rule == "O001").count(),
            1,
            "{diags:?}"
        );
    }

    #[test]
    fn static_arms_are_exempt_from_o001() {
        let src = "
            fn compose(&self, key: PageKey, deps: &mut Vec<Dependency>) {
                match key {
                    PageKey::Venue(s) => {
                        let venue = self.db.sport(s);
                    }
                    PageKey::Welcome => {
                        let x = self.db.sport(s);
                    }
                }
            }
        ";
        assert!(run_on(&[("crates/pagegen/src/r.rs", src)]).is_empty());
    }

    #[test]
    fn non_pagegen_files_are_ignored() {
        assert!(run_on(&[("crates/cache/src/r.rs", COVERED)]).is_empty());
    }
}
