//! The rule registry and the token-pattern checks behind each rule.
//!
//! Every rule produces machine-readable [`Diagnostic`]s (rule id,
//! file:line, message, suggestion). Diagnostics can be suppressed by an
//! allowlist annotation (see DESIGN.md §10) on the same line or the
//! line directly above; the annotation must carry a reason, and a
//! marker comment that fails to parse is itself reported as `A000` so a
//! typo cannot silently disable a rule.

use crate::lexer::{lex, strip_tests, Allow, TokKind, Token};

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id (`D001`, `R001`, …).
    pub rule: &'static str,
    /// Repo-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub suggestion: String,
}

/// Registry entry describing one rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Rule id.
    pub id: &'static str,
    /// One-line summary of what the rule enforces.
    pub summary: &'static str,
}

/// The rule registry, in reporting order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "A000",
        summary: "allowlist annotations must parse and carry a reason (not suppressible)",
    },
    RuleInfo {
        id: "D001",
        summary: "no Instant::now/SystemTime::now outside simcore and bench — use the sim clock",
    },
    RuleInfo {
        id: "D002",
        summary: "no thread_rng/OS entropy — only the seeded simcore DeterministicRng",
    },
    RuleInfo {
        id: "D003",
        summary: "no std HashMap/HashSet in deterministic paths — FxHashMap + sorted iteration, or BTreeMap",
    },
    RuleInfo {
        id: "L001",
        summary: "no lock-order inversions — a cycle in the cross-file lock-acquisition \
                  graph is a potential deadlock",
    },
    RuleInfo {
        id: "L002",
        summary: "no guard held across a blocking call (channel send/recv, join, accept) \
                  in serving/propagation crates",
    },
    RuleInfo {
        id: "O001",
        summary: "every data read in a pagegen renderer arm must be covered by a \
                  registered ODG edge (directly or via a fragment edge)",
    },
    RuleInfo {
        id: "O002",
        summary: "no dead ODG edges — a registered dependency whose data the arm never \
                  reads is a wasted invalidation",
    },
    RuleInfo {
        id: "R001",
        summary: "no .unwrap()/.expect() in serving hot-path crates (httpd, cache, trigger, odg)",
    },
    RuleInfo {
        id: "R002",
        summary: "no crossbeam::channel::unbounded in serving/propagation crates — bound every queue",
    },
    RuleInfo {
        id: "R003",
        summary: "retry loops must be bounded with seeded backoff — no bare `loop` \
                  retries, no unjittered sleeps inside a `loop` body",
    },
    RuleInfo {
        id: "T001",
        summary: "metric names must match nagano_<subsystem>_<metric>",
    },
    RuleInfo {
        id: "T002",
        summary: "trace span names must match nagano_<subsystem>_<name>, and every \
                  registered metric must appear in DESIGN.md's metric table",
    },
];

/// Metric-registration methods whose first argument is a metric name.
const METRIC_FNS: &[&str] = &[
    "counter",
    "gauge",
    "histogram",
    "bind_counter",
    "bind_gauge",
    "bind_histogram",
];

/// Trace methods taking a span name: for the first three the name is
/// the first argument; `add_child` takes a parent index first.
const SPAN_FNS: &[&str] = &["span", "span_with", "add_span", "add_child"];

/// Subsystem segment allowed directly after the `nagano_` prefix.
const SUBSYSTEMS: &[&str] = &[
    "bench",
    "cache",
    "cluster",
    "core",
    "db",
    "httpd",
    "odg",
    "pagegen",
    "sim",
    "site",
    "telemetry",
    "trigger",
    "workload",
];

/// Which rules apply to a file, derived from its repo-relative path.
struct Scope {
    d001: bool,
    d002: bool,
    r001: bool,
    r002: bool,
    r003: bool,
}

impl Scope {
    fn of(rel_path: &str) -> Scope {
        let krate = rel_path
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or(if rel_path.starts_with("examples") {
                "examples"
            } else {
                ""
            });
        Scope {
            // simcore owns the clock; bench measures real machines.
            d001: !matches!(krate, "simcore" | "bench"),
            // simcore owns the RNG.
            d002: krate != "simcore",
            // The serving hot path.
            r001: matches!(krate, "httpd" | "cache" | "trigger" | "odg"),
            // Serving + update-propagation crates: an unbounded queue
            // here turns overload into memory exhaustion instead of
            // back-pressure or shedding.
            r002: matches!(
                krate,
                "httpd" | "cache" | "trigger" | "odg" | "db" | "cluster" | "core" | "telemetry"
            ),
            // The serving path plus core, where the resilience
            // primitives (CircuitBreaker, RetryBackoff) live: a retry
            // loop here must be bounded and jittered or it turns one
            // backend hiccup into a synchronized stampede.
            r003: matches!(krate, "httpd" | "cache" | "trigger" | "odg" | "core"),
        }
    }
}

/// Lint one source file. `rel_path` is the repo-relative path (used for
/// rule scoping and reporting); `source` is the file's text.
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Diagnostic> {
    let lexed = lex(source);
    let toks = strip_tests(&lexed.tokens);
    let scope = Scope::of(rel_path);
    let mut diags: Vec<Diagnostic> = Vec::new();

    for m in &lexed.malformed {
        diags.push(Diagnostic {
            rule: "A000",
            file: rel_path.to_string(),
            line: m.line,
            message: format!("malformed allowlist annotation: {}", m.detail),
            suggestion: "write `// nagano-lint: allow(<RULE>) — <reason>`".to_string(),
        });
    }
    if scope.d001 {
        rule_d001(rel_path, &toks, &mut diags);
    }
    if scope.d002 {
        rule_d002(rel_path, &toks, &mut diags);
    }
    rule_d003(rel_path, &toks, &mut diags);
    if scope.r001 {
        rule_r001(rel_path, &toks, &mut diags);
    }
    if scope.r002 {
        rule_r002(rel_path, &toks, &mut diags);
    }
    if scope.r003 {
        rule_r003(rel_path, &toks, &mut diags);
    }
    rule_t001(rel_path, &toks, &mut diags);
    rule_t002(rel_path, &toks, &mut diags);

    diags.retain(|d| d.rule == "A000" || !suppressed(d, &lexed.allows));
    diags.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    diags
}

/// An allowlist annotation suppresses a diagnostic of its rule on the
/// same line (trailing comment) or the line directly below (comment
/// above the offending statement). Shared with the semantic passes,
/// whose diagnostics are filtered in `lint_workspace`.
pub(crate) fn suppressed(d: &Diagnostic, allows: &[Allow]) -> bool {
    allows
        .iter()
        .any(|a| a.rule == d.rule && (a.line == d.line || a.line + 1 == d.line))
}

fn ident(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn strlit(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::StrLit(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct(toks: &[Token], i: usize, c: char) -> bool {
    matches!(toks.get(i), Some(t) if t.kind == TokKind::Punct(c))
}

/// D001: `Instant::now` / `SystemTime::now` outside simcore/bench.
fn rule_d001(file: &str, toks: &[Token], diags: &mut Vec<Diagnostic>) {
    for i in 0..toks.len() {
        let Some(name) = ident(toks, i) else { continue };
        if (name == "Instant" || name == "SystemTime")
            && punct(toks, i + 1, ':')
            && punct(toks, i + 2, ':')
            && ident(toks, i + 3) == Some("now")
        {
            diags.push(Diagnostic {
                rule: "D001",
                file: file.to_string(),
                line: toks[i].line,
                message: format!("wall-clock `{name}::now` in deterministic code"),
                suggestion: "use the simcore clock (SimTime/SimDuration); host time is only \
                             allowed in simcore, bench, or under an allowlist annotation"
                    .to_string(),
            });
        }
    }
}

/// D002: OS entropy / unseeded RNG construction.
fn rule_d002(file: &str, toks: &[Token], diags: &mut Vec<Diagnostic>) {
    const ENTROPY: &[&str] = &[
        "thread_rng",
        "OsRng",
        "from_entropy",
        "from_os_rng",
        "getrandom",
    ];
    for i in 0..toks.len() {
        let Some(name) = ident(toks, i) else { continue };
        let qualified_rand_rng = name == "rand"
            && punct(toks, i + 1, ':')
            && punct(toks, i + 2, ':')
            && ident(toks, i + 3) == Some("rng");
        if ENTROPY.contains(&name) || qualified_rand_rng {
            diags.push(Diagnostic {
                rule: "D002",
                file: file.to_string(),
                line: toks[i].line,
                message: format!("OS-entropy RNG source `{name}`"),
                suggestion: "use nagano_simcore::DeterministicRng seeded from the run seed \
                             (fork per component for independent streams)"
                    .to_string(),
            });
        }
    }
}

/// D003: `std::collections::{HashMap,HashSet}` anywhere in the
/// workspace — their iteration order is seeded per-process.
fn rule_d003(file: &str, toks: &[Token], diags: &mut Vec<Diagnostic>) {
    let mut i = 0usize;
    while i < toks.len() {
        let at_std_collections = ident(toks, i) == Some("std")
            && punct(toks, i + 1, ':')
            && punct(toks, i + 2, ':')
            && ident(toks, i + 3) == Some("collections");
        if !at_std_collections {
            i += 1;
            continue;
        }
        // Scan the rest of the path / use-group up to the statement end.
        let mut j = i + 4;
        while j < toks.len() && !punct(toks, j, ';') {
            if let Some(name) = ident(toks, j) {
                if name == "HashMap" || name == "HashSet" {
                    diags.push(Diagnostic {
                        rule: "D003",
                        file: file.to_string(),
                        line: toks[j].line,
                        message: format!("randomized-order `std::collections::{name}`"),
                        suggestion: "use rustc_hash::FxHashMap/FxHashSet with sorted \
                                     iteration, or a BTreeMap/BTreeSet"
                            .to_string(),
                    });
                }
            }
            j += 1;
        }
        i = j;
    }
}

/// R001: `.unwrap()` / `.expect(` in serving hot-path crates.
fn rule_r001(file: &str, toks: &[Token], diags: &mut Vec<Diagnostic>) {
    for i in 0..toks.len() {
        if !punct(toks, i, '.') {
            continue;
        }
        let Some(name) = ident(toks, i + 1) else {
            continue;
        };
        if (name == "unwrap" || name == "expect") && punct(toks, i + 2, '(') {
            diags.push(Diagnostic {
                rule: "R001",
                file: file.to_string(),
                line: toks[i + 1].line,
                message: format!("`.{name}()` in a serving hot-path crate"),
                suggestion: "return a typed error that maps to a 4xx/5xx response (or \
                             recover locally); a panic here is a node-level outage"
                    .to_string(),
            });
        }
    }
}

/// R002: `crossbeam::channel::unbounded` in serving/propagation crates.
/// Fires on the qualified call (`channel::unbounded(`) and on the
/// imported name inside a `channel::{...}` use-group; other `unbounded`
/// identifiers (e.g. `CacheConfig::unbounded`) stay clean.
fn rule_r002(file: &str, toks: &[Token], diags: &mut Vec<Diagnostic>) {
    for i in 0..toks.len() {
        if ident(toks, i) != Some("unbounded") {
            continue;
        }
        let qualified = i >= 3
            && punct(toks, i - 1, ':')
            && punct(toks, i - 2, ':')
            && ident(toks, i - 3) == Some("channel");
        if qualified || in_channel_use_group(toks, i) {
            diags.push(Diagnostic {
                rule: "R002",
                file: file.to_string(),
                line: toks[i].line,
                message: "unbounded crossbeam channel in a serving/propagation crate".to_string(),
                suggestion: "use a bounded channel sized to the component's queue budget and \
                             shed or back-pressure on Full; if the queue is provably bounded \
                             elsewhere, add an allowlist annotation with the reason"
                    .to_string(),
            });
        }
    }
}

/// Is token `i` a member of a `channel::{...}` use-group? Walks back
/// over group members (idents, commas, `::` pairs) to the opening `{`
/// and requires a `channel::` path right before it.
fn in_channel_use_group(toks: &[Token], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        match &toks[j].kind {
            TokKind::Punct('{') => {
                return j >= 3
                    && punct(toks, j - 1, ':')
                    && punct(toks, j - 2, ':')
                    && ident(toks, j - 3) == Some("channel");
            }
            TokKind::Punct(',') | TokKind::Punct(':') | TokKind::Ident(_) => {}
            _ => return false,
        }
    }
    false
}

/// Identifiers that mark a `loop` body as bounded and backoff-driven.
const BACKOFF_MARKERS: &[&str] = &["backoff", "max_attempts", "max_retries"];

/// R003: retry loops must be bounded with seeded backoff. Fires on
/// (a) a bare `loop` body that manipulates a `retry*` counter with no
/// backoff or attempt bound in sight, and (b) a `sleep(...)` inside a
/// `loop` body whose argument never references a backoff/delay/jitter
/// value — a fixed-interval retry synchronizes every failing client
/// into a stampede. `while`/`for` loops are exempt: the condition is
/// their bound.
fn rule_r003(file: &str, toks: &[Token], diags: &mut Vec<Diagnostic>) {
    // Nested loops scan overlapping bodies; dedup sleep findings by line.
    let mut sleep_lines: Vec<u32> = Vec::new();
    for i in 0..toks.len() {
        if ident(toks, i) != Some("loop") || !punct(toks, i + 1, '{') {
            continue;
        }
        // The matching close brace bounds the loop body.
        let body_start = i + 2;
        let mut depth = 1i32;
        let mut end = body_start;
        while end < toks.len() {
            match &toks[end].kind {
                TokKind::Punct('{') => depth += 1,
                TokKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            end += 1;
        }
        let body = &toks[body_start..end];
        let has_marker = body.iter().any(|t| match &t.kind {
            TokKind::Ident(s) => BACKOFF_MARKERS.iter().any(|m| s.contains(m)),
            _ => false,
        });
        let retries = body.iter().any(|t| match &t.kind {
            TokKind::Ident(s) => s.starts_with("retry"),
            _ => false,
        });
        if retries && !has_marker {
            diags.push(Diagnostic {
                rule: "R003",
                file: file.to_string(),
                line: toks[i].line,
                message: "unbounded retry loop with no backoff".to_string(),
                suggestion: "bound the attempts and space them with the seeded \
                             nagano::RetryBackoff (exponential delay + jitter drawn from \
                             the run's DeterministicRng) so failures shed instead of spin"
                    .to_string(),
            });
        }
        for k in 0..body.len() {
            if ident(body, k) != Some("sleep") || !punct(body, k + 1, '(') {
                continue;
            }
            let line = body[k].line;
            if sleep_lines.contains(&line) {
                continue;
            }
            // Scan the argument list for a backoff-derived delay.
            let mut arg_depth = 1i32;
            let mut j = k + 2;
            let mut jittered = false;
            while j < body.len() && arg_depth > 0 {
                match &body[j].kind {
                    TokKind::Punct('(') => arg_depth += 1,
                    TokKind::Punct(')') => arg_depth -= 1,
                    TokKind::Ident(s)
                        if s.contains("backoff") || s.contains("delay") || s.contains("jitter") =>
                    {
                        jittered = true
                    }
                    _ => {}
                }
                j += 1;
            }
            if !jittered {
                sleep_lines.push(line);
                diags.push(Diagnostic {
                    rule: "R003",
                    file: file.to_string(),
                    line,
                    message: "fixed-interval sleep inside a retry loop".to_string(),
                    suggestion: "sleep for a RetryBackoff::next_delay value (seeded \
                                 exponential backoff + jitter) instead of a constant; \
                                 synchronized retries arrive as a thundering herd"
                        .to_string(),
                });
            }
        }
    }
}

/// T001: metric names passed to registry methods must follow the
/// `nagano_<subsystem>_<metric>` convention.
fn rule_t001(file: &str, toks: &[Token], diags: &mut Vec<Diagnostic>) {
    for i in 0..toks.len() {
        if !punct(toks, i, '.') {
            continue;
        }
        let Some(name) = ident(toks, i + 1) else {
            continue;
        };
        if !METRIC_FNS.contains(&name) || !punct(toks, i + 2, '(') {
            continue;
        }
        let Some(metric) = strlit(toks, i + 3) else {
            continue; // Name built dynamically — out of static reach.
        };
        if !valid_metric_name(metric) {
            diags.push(Diagnostic {
                rule: "T001",
                file: file.to_string(),
                line: toks[i + 1].line,
                message: format!("non-conforming metric name \"{metric}\""),
                suggestion: format!(
                    "rename to nagano_<subsystem>_<metric> (subsystems: {})",
                    SUBSYSTEMS.join(", ")
                ),
            });
        }
    }
}

/// T002 (span half): span names passed to `Trace::{span, span_with,
/// add_span, add_child}` must follow the same
/// `nagano_<subsystem>_<name>` convention as metrics, so trace exports
/// and the metric plane share one vocabulary.
fn rule_t002(file: &str, toks: &[Token], diags: &mut Vec<Diagnostic>) {
    for i in 0..toks.len() {
        if !punct(toks, i, '.') {
            continue;
        }
        let Some(fn_name) = ident(toks, i + 1) else {
            continue;
        };
        if !SPAN_FNS.contains(&fn_name) || !punct(toks, i + 2, '(') {
            continue;
        }
        let name_at = if fn_name == "add_child" {
            // Skip the parent-index expression: first comma at depth 0.
            let Some(at) = skip_argument(toks, i + 3) else {
                continue;
            };
            at
        } else {
            i + 3
        };
        let Some(span_name) = strlit(toks, name_at) else {
            continue; // Name built dynamically — out of static reach.
        };
        if !valid_metric_name(span_name) {
            diags.push(Diagnostic {
                rule: "T002",
                file: file.to_string(),
                line: toks[name_at].line,
                message: format!("non-conforming trace span name \"{span_name}\""),
                suggestion: format!(
                    "rename to nagano_<subsystem>_<name> (subsystems: {})",
                    SUBSYSTEMS.join(", ")
                ),
            });
        }
    }
}

/// Starting at token `start` (inside a call's parens), return the index
/// of the token right after the first `,` at nesting depth 0, or `None`
/// if the argument list closes first.
fn skip_argument(toks: &[Token], start: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = start;
    while j < toks.len() {
        match &toks[j].kind {
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => {
                if depth == 0 {
                    return None;
                }
                depth -= 1;
            }
            TokKind::Punct(',') if depth == 0 => return Some(j + 1),
            _ => {}
        }
        j += 1;
    }
    None
}

/// T002 (docs half): every metric registered by name in production code
/// must appear — backtick-quoted — in DESIGN.md's metric table, so the
/// documented observability surface can never silently lag the code.
/// Only conforming names are checked; non-conforming ones are already
/// T001 findings. Workspace-level entry point: [`lint_source`] cannot
/// see DESIGN.md, so `lint_workspace` calls this with its contents.
pub fn lint_metric_docs(rel_path: &str, source: &str, design: &str) -> Vec<Diagnostic> {
    let lexed = lex(source);
    let toks = strip_tests(&lexed.tokens);
    let mut diags = Vec::new();
    for i in 0..toks.len() {
        if !punct(&toks, i, '.') {
            continue;
        }
        let Some(name) = ident(&toks, i + 1) else {
            continue;
        };
        if !METRIC_FNS.contains(&name) || !punct(&toks, i + 2, '(') {
            continue;
        }
        let Some(metric) = strlit(&toks, i + 3) else {
            continue;
        };
        if valid_metric_name(metric) && !design.contains(&format!("`{metric}`")) {
            diags.push(Diagnostic {
                rule: "T002",
                file: rel_path.to_string(),
                line: toks[i + 1].line,
                message: format!("metric \"{metric}\" is not documented in DESIGN.md"),
                suggestion: "add a row for it to DESIGN.md's metric table (§9), \
                             backtick-quoting the metric name"
                    .to_string(),
            });
        }
    }
    diags.retain(|d| !suppressed(d, &lexed.allows));
    diags
}

/// `nagano_<subsystem>_<metric>` with a known subsystem, all
/// `[a-z0-9_]`, and a non-empty metric part.
fn valid_metric_name(name: &str) -> bool {
    if !name
        .chars()
        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    {
        return false;
    }
    let Some(rest) = name.strip_prefix("nagano_") else {
        return false;
    };
    let Some(sub) = rest.split('_').next() else {
        return false;
    };
    if !SUBSYSTEMS.contains(&sub) {
        return false;
    }
    let metric = &rest[sub.len()..];
    metric.starts_with('_') && metric.len() > 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_name_validation() {
        assert!(valid_metric_name("nagano_cache_hits_total"));
        assert!(valid_metric_name("nagano_trigger_latency_seconds"));
        assert!(!valid_metric_name("cache_hits"), "missing prefix");
        assert!(!valid_metric_name("nagano_bogus_value"), "bad subsystem");
        assert!(!valid_metric_name("nagano_cache"), "no metric part");
        assert!(!valid_metric_name("nagano_cache_Hits"), "uppercase");
    }

    #[test]
    fn scope_exemptions() {
        let src = "pub fn f() { let _ = Instant::now(); }";
        assert!(lint_source("crates/simcore/src/time.rs", src).is_empty());
        assert!(lint_source("crates/bench/src/run.rs", src).is_empty());
        assert_eq!(lint_source("crates/cluster/src/sim.rs", src).len(), 1);
    }

    #[test]
    fn r001_only_in_hot_path_crates() {
        let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert_eq!(lint_source("crates/cache/src/cache.rs", src).len(), 1);
        assert!(lint_source("crates/workload/src/gen.rs", src).is_empty());
    }

    #[test]
    fn r002_scope_and_decoys() {
        let src = "pub fn f() { let (_t, _r) = crossbeam::channel::unbounded::<u8>(); }";
        assert_eq!(lint_source("crates/trigger/src/runner.rs", src).len(), 1);
        assert_eq!(lint_source("crates/db/src/replication.rs", src).len(), 1);
        assert!(
            lint_source("crates/workload/src/gen.rs", src).is_empty(),
            "workload is outside the serving/propagation scope"
        );
        let decoy = "pub fn f() { let _ = CacheConfig::unbounded(); }";
        assert!(lint_source("crates/cache/src/cache.rs", decoy).is_empty());
        let grouped = "use crossbeam::channel::{bounded, unbounded};";
        assert_eq!(lint_source("crates/httpd/src/server.rs", grouped).len(), 1);
    }

    #[test]
    fn r003_scope_and_markers() {
        let bare = "pub fn f() { let mut retry = 0; loop { retry += 1; } }";
        assert_eq!(lint_source("crates/core/src/backoff.rs", bare).len(), 1);
        assert!(
            lint_source("crates/workload/src/gen.rs", bare).is_empty(),
            "workload is outside the retry-discipline scope"
        );
        let bounded =
            "pub fn f(b: &mut RetryBackoff) { loop { let Some(d) = b.backoff_delay() else \
             { break }; use_it(d); } }";
        assert!(lint_source("crates/core/src/backoff.rs", bounded).is_empty());
        let fixed = "pub fn f() { loop { sleep(POLL_INTERVAL); } }";
        assert_eq!(lint_source("crates/cache/src/cache.rs", fixed).len(), 1);
        let jittered = "pub fn f(d: f64) { loop { sleep(jitter_delay(d)); } }";
        assert!(lint_source("crates/cache/src/cache.rs", jittered).is_empty());
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }";
        assert!(lint_source("crates/cache/src/cache.rs", src).is_empty());
    }

    #[test]
    fn diagnostics_are_ordered_and_complete() {
        let src = "use std::collections::HashMap;\npub fn f() { let _ = Instant::now(); }\n";
        let diags = lint_source("crates/cluster/src/sim.rs", src);
        assert_eq!(diags.len(), 2);
        assert_eq!(diags[0].rule, "D003");
        assert_eq!(diags[0].line, 1);
        assert_eq!(diags[1].rule, "D001");
        assert_eq!(diags[1].line, 2);
        assert!(!diags[1].suggestion.is_empty());
    }
}
