//! `nagano-lint` — workspace determinism, robustness & ODG-semantics linter.
//!
//! The reproduction's north star (DESIGN.md §8, ROADMAP) is that the
//! simulation is *deterministic*: same seed → same propagation traces,
//! same freshness percentiles, byte-identical telemetry exports. This
//! crate enforces that contract statically, plus the robustness rule
//! that the serving hot path never panics, plus — since the v2
//! cross-file engine — the semantic invariants the paper's design
//! depends on: a deadlock-free lock order and a *complete, minimal*
//! Object Dependence Graph:
//!
//! | rule | enforces |
//! |------|----------|
//! | D001 | no `Instant::now`/`SystemTime::now` outside `simcore`/`bench` |
//! | D002 | no `thread_rng`/OS entropy — only the seeded simcore RNG |
//! | D003 | no `std::collections::HashMap`/`HashSet` (randomized order) |
//! | L001 | no cycles in the cross-file lock-acquisition graph (deadlock) |
//! | L002 | no guard held across a blocking call in serving crates |
//! | O001 | every renderer data read is covered by a registered ODG edge |
//! | O002 | no dead ODG edges (registered but never read) |
//! | R001 | no `.unwrap()`/`.expect()` in `httpd`/`cache`/`trigger`/`odg` |
//! | R002 | no unbounded crossbeam channels in serving/propagation crates |
//! | R003 | retry loops bounded with seeded backoff — no bare `loop` retries or unjittered sleeps |
//! | T001 | metric names match `nagano_<subsystem>_<metric>` |
//! | T002 | trace span names match `nagano_<subsystem>_<name>`; registered metrics are documented in DESIGN.md |
//!
//! Linting runs in two passes. Pass 1 ([`model`]) lexes every
//! production file once, runs the per-file token rules, and builds a
//! cross-file workspace model (fn symbol table, lock acquisitions with
//! live-guard tracking, resolvable call edges, and the pagegen
//! read/edge inventory). Pass 2 runs the semantic rules over that
//! model: [`locks`] (L001/L002) and [`odg_audit`] (O001/O002).
//!
//! Intentional exceptions carry an inline allowlist annotation with a
//! mandatory reason (syntax in DESIGN.md §10); a malformed annotation
//! is itself an error (A000). Test code (`#[cfg(test)]` / `#[test]`)
//! is exempt. Pre-existing debt can alternatively be budgeted in a
//! [`Baseline`] file and ratcheted down over time.
//!
//! The analyzer is dependency-free by design: it lexes Rust directly
//! (comments, strings, raw strings, and test items handled in
//! [`lexer`]) instead of pulling a parser crate into the gate that is
//! supposed to keep the build honest. All output — including the
//! `--json` and SARIF exports in [`export`] — is sorted by
//! `(file, line, rule, message)` and byte-identical across runs, so
//! lint results fall under the same determinism gate as the telemetry.

mod baseline;
mod export;
mod lexer;
mod locks;
mod model;
mod odg_audit;
mod rules;

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use baseline::{Baseline, BaselineOutcome};
pub use export::{render_json, render_sarif};
pub use lexer::{lex, strip_tests, Allow, LexOutput, MalformedAllow, TokKind, Token};
pub use rules::{lint_metric_docs, lint_source, Diagnostic, RuleInfo, RULES};

/// Result of linting a whole workspace.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Number of files scanned.
    pub files_scanned: usize,
    /// All findings, ordered by (file, line, rule, message).
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// True when nothing was found.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Collect the production Rust sources of the workspace rooted at
/// `root`: every `crates/*/src/**/*.rs` plus `examples/**/*.rs`.
/// Integration-test crates and fixtures are not scanned (the rules
/// exempt test code anyway). The listing is sorted, so two runs over
/// the same tree visit files in the same order.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    for krate in sorted_dir(&crates_dir)? {
        let src = krate.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    let examples = root.join("examples");
    if examples.is_dir() {
        collect_rs(&examples, &mut files)?;
    }
    Ok(files)
}

fn sorted_dir(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    Ok(entries)
}

fn collect_rs(dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    for path in sorted_dir(dir)? {
        if path.is_dir() {
            // Never descend into build output.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(&path, files)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Lint every production source file under `root`: the per-file token
/// rules, then the cross-file semantic passes (lock graph + ODG audit)
/// over the workspace model. When the root has a `DESIGN.md`, every
/// metric registered in code must also appear in its metric table
/// (rule T002's documentation half).
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let mut report = LintReport::default();
    let design = fs::read_to_string(root.join("DESIGN.md")).ok();
    let mut sources: Vec<model::SourceFile> = Vec::new();
    for path in workspace_files(root)? {
        let source = fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        report.diagnostics.extend(lint_source(&rel, &source));
        if let Some(design) = &design {
            report
                .diagnostics
                .extend(lint_metric_docs(&rel, &source, design));
        }
        sources.push(model::SourceFile::parse(&rel, &source));
        report.files_scanned += 1;
    }

    // Pass 2: semantic rules over the cross-file model. The per-file
    // allowlists apply to these too (a semantic finding is suppressed
    // by an annotation in the file it is reported against).
    let workspace = model::WorkspaceModel::build(&sources);
    let mut semantic = locks::run(&workspace);
    semantic.extend(odg_audit::run(&sources));
    let allows_by_file: BTreeMap<&str, &[Allow]> = sources
        .iter()
        .map(|s| (s.rel.as_str(), s.allows.as_slice()))
        .collect();
    semantic.retain(|d| {
        !allows_by_file
            .get(d.file.as_str())
            .is_some_and(|allows| rules::suppressed(d, allows))
    });
    report.diagnostics.extend(semantic);

    report.diagnostics.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
    Ok(report)
}
