//! `nagano-lint` — workspace determinism & robustness linter.
//!
//! The reproduction's north star (DESIGN.md §8, ROADMAP) is that the
//! simulation is *deterministic*: same seed → same propagation traces,
//! same freshness percentiles, byte-identical telemetry exports. This
//! crate enforces that contract statically, plus the robustness rule
//! that the serving hot path never panics:
//!
//! | rule | enforces |
//! |------|----------|
//! | D001 | no `Instant::now`/`SystemTime::now` outside `simcore`/`bench` |
//! | D002 | no `thread_rng`/OS entropy — only the seeded simcore RNG |
//! | D003 | no `std::collections::HashMap`/`HashSet` (randomized order) |
//! | R001 | no `.unwrap()`/`.expect()` in `httpd`/`cache`/`trigger`/`odg` |
//! | R002 | no unbounded crossbeam channels in serving/propagation crates |
//! | T001 | metric names match `nagano_<subsystem>_<metric>` |
//! | T002 | trace span names match `nagano_<subsystem>_<name>`; registered metrics are documented in DESIGN.md |
//!
//! Intentional exceptions carry an inline allowlist annotation with a
//! mandatory reason (syntax in DESIGN.md §10); a malformed annotation
//! is itself an error (A000). Test code (`#[cfg(test)]` / `#[test]`)
//! is exempt.
//!
//! The analyzer is dependency-free by design: it lexes Rust directly
//! (comments, strings, raw strings, and test items handled in
//! [`lexer`]) instead of pulling a parser crate into the gate that is
//! supposed to keep the build honest.

mod lexer;
mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use lexer::{lex, strip_tests, Allow, LexOutput, MalformedAllow, TokKind, Token};
pub use rules::{lint_metric_docs, lint_source, Diagnostic, RuleInfo, RULES};

/// Result of linting a whole workspace.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Number of files scanned.
    pub files_scanned: usize,
    /// All findings, ordered by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// True when nothing was found.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Collect the production Rust sources of the workspace rooted at
/// `root`: every `crates/*/src/**/*.rs` plus `examples/**/*.rs`.
/// Integration-test crates and fixtures are not scanned (the rules
/// exempt test code anyway). The listing is sorted, so two runs over
/// the same tree visit files in the same order.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    for krate in sorted_dir(&crates_dir)? {
        let src = krate.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    let examples = root.join("examples");
    if examples.is_dir() {
        collect_rs(&examples, &mut files)?;
    }
    Ok(files)
}

fn sorted_dir(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    Ok(entries)
}

fn collect_rs(dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    for path in sorted_dir(dir)? {
        if path.is_dir() {
            // Never descend into build output.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(&path, files)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Lint every production source file under `root`. When the root has a
/// `DESIGN.md`, every metric registered in code must also appear in its
/// metric table (rule T002's documentation half).
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let mut report = LintReport::default();
    let design = fs::read_to_string(root.join("DESIGN.md")).ok();
    for path in workspace_files(root)? {
        let source = fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        report.diagnostics.extend(lint_source(&rel, &source));
        if let Some(design) = &design {
            report
                .diagnostics
                .extend(lint_metric_docs(&rel, &source, design));
        }
        report.files_scanned += 1;
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}
