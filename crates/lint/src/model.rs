//! Pass 1 of the semantic analysis: a cross-file model of the workspace.
//!
//! The token rules in [`crate::rules`] look at one file at a time. The
//! semantic rules (L001/L002 in [`crate::locks`], O001/O002 in
//! [`crate::odg_audit`]) need to see the workspace whole: which `fn`
//! items exist, which locks each one acquires, which guards are still
//! live at each call site, and which calls can be resolved to other
//! workspace functions. This module builds that model from the same
//! hand-rolled token stream — no `syn`, no type information — so every
//! judgement is a *name-based approximation* tuned to stay on the
//! useful side of precision:
//!
//! * a **lock acquisition** is a zero-argument `.lock()` / `.read()` /
//!   `.write()` call; the lock's identity is `(file, receiver)` where
//!   the receiver is the identifier (or method name) the guard came
//!   from, e.g. `monitor.rs::deferred` or `cache.rs::shard_for`;
//! * **guard liveness** is tracked by brace depth: a `let`-bound guard
//!   lives to the end of its enclosing block (or an explicit `drop`),
//!   while an expression-position guard lives to the end of its
//!   statement — including across `match`/`if let` bodies whose
//!   scrutinee holds it, which is exactly Rust's temporary-lifetime
//!   rule that makes those guards deadlock-prone;
//! * a **call edge** is created only when the callee's name resolves
//!   unambiguously — defined in the same file, or unique across the
//!   workspace — and is not on the stop list of ubiquitous std method
//!   names (`get`, `insert`, `len`, …) that would otherwise alias
//!   workspace functions. Unresolvable calls are dropped: the model
//!   under-approximates rather than invent edges.
//!
//! Everything downstream iterates `BTreeMap`s and sorted `Vec`s, so the
//! model (and therefore every semantic diagnostic) is deterministic.

use std::collections::BTreeMap;

use crate::lexer::{lex, strip_tests, Allow, TokKind, Token};

/// One parsed production source file (tests already stripped).
#[derive(Debug)]
pub struct SourceFile {
    /// Repo-relative path, `/`-separated.
    pub rel: String,
    /// Crate name (`trigger`, `cache`, …; `examples` for examples/).
    pub krate: String,
    /// Production token stream.
    pub tokens: Vec<Token>,
    /// Allowlist annotations found in the file.
    pub allows: Vec<Allow>,
}

impl SourceFile {
    /// Lex and test-strip one file.
    pub fn parse(rel: &str, source: &str) -> SourceFile {
        let lexed = lex(source);
        SourceFile {
            rel: rel.to_string(),
            krate: crate_of(rel),
            tokens: strip_tests(&lexed.tokens),
            allows: lexed.allows,
        }
    }
}

/// Crate name from a repo-relative path.
pub fn crate_of(rel: &str) -> String {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or(if rel.starts_with("examples") {
            "examples"
        } else {
            ""
        })
        .to_string()
}

/// A lock that is live (its guard not yet dropped) at some point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeldLock {
    /// Canonical lock id: `<file>::<receiver>`.
    pub lock: String,
    /// Line the guard was acquired on.
    pub line: u32,
}

/// One lock acquisition inside a function body.
#[derive(Debug, Clone)]
pub struct Acquisition {
    /// Canonical lock id.
    pub lock: String,
    /// Acquisition line.
    pub line: u32,
    /// Locks already held when this one is acquired.
    pub held: Vec<HeldLock>,
}

/// How a call names its target — drives resolution confidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `self.f(…)` — almost surely a method of the enclosing type.
    SelfMethod,
    /// `expr.f(…)` with any other receiver — the receiver's type is
    /// unknown, so name-based resolution would routinely alias
    /// workspace functions (`self.stats.invalidate(…)` is not
    /// `Cache::invalidate`). Never resolved.
    Method,
    /// `f(…)` / `path::f(…)` — a free or associated function.
    Free,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name as written.
    pub callee: String,
    /// How the callee is addressed.
    pub kind: CallKind,
    /// Call line.
    pub line: u32,
    /// Locks held at the call.
    pub held: Vec<HeldLock>,
}

/// A blocking operation (channel recv/send, thread join, TCP accept).
#[derive(Debug, Clone)]
pub struct BlockingCall {
    /// The blocking method name.
    pub method: String,
    /// Call line.
    pub line: u32,
    /// Locks held across the blocking point.
    pub held: Vec<HeldLock>,
}

/// Everything the model knows about one `fn` item.
#[derive(Debug, Clone)]
pub struct FnModel {
    /// Function name (methods keep just the method name).
    pub name: String,
    /// Defining file (repo-relative).
    pub file: String,
    /// Crate the function lives in.
    pub krate: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Lock acquisitions, in body order.
    pub acquisitions: Vec<Acquisition>,
    /// Calls (with the held-lock snapshot), in body order.
    pub calls: Vec<CallSite>,
    /// Blocking calls made while at least one guard is live.
    pub blocking: Vec<BlockingCall>,
}

/// The cross-file workspace model.
#[derive(Debug, Default)]
pub struct WorkspaceModel {
    /// All functions, in (file, line) order.
    pub fns: Vec<FnModel>,
    /// Name → indices into `fns` (for call resolution).
    pub by_name: BTreeMap<String, Vec<usize>>,
}

/// Ubiquitous std method names that would alias workspace functions if
/// we resolved calls to them by name alone. Calls to these never create
/// call-graph edges (their direct effects are modelled elsewhere:
/// `.lock()`/`.recv()`/… have their own detectors).
const CALL_STOPLIST: &[&str] = &[
    "all",
    "and_then",
    "any",
    "as_mut",
    "as_ref",
    "as_str",
    "chain",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "default",
    "drain",
    "drop",
    "entry",
    "eq",
    "expect",
    "extend",
    "filter",
    "filter_map",
    "find",
    "first",
    "flat_map",
    "flatten",
    "fmt",
    "fold",
    "for_each",
    "from",
    "get",
    "get_mut",
    "get_or_init",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "lock",
    "map",
    "max",
    "min",
    "new",
    "next",
    "ok",
    "or_else",
    "or_insert",
    "or_insert_with",
    "parse",
    "pop",
    "position",
    "push",
    "read",
    "recv",
    "remove",
    "reserve",
    "retain",
    "rev",
    "send",
    "sort",
    "sort_by",
    "sort_by_key",
    "split",
    "sum",
    "take",
    "to_owned",
    "to_string",
    "trim",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "with_capacity",
    "write",
    "zip",
];

/// Keywords that look like a call when followed by `(`.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "static", "struct", "super", "trait", "type", "unsafe", "use", "where", "while",
    "yield",
];

/// Blocking methods for L002. `recv`/`join`/`accept` must be zero-arg
/// (a one-arg `.join(",")` is a slice join, a `.read(&mut buf)` is I/O);
/// `send`/`recv_timeout` take arguments by nature. `try_send`/`try_recv`
/// are non-blocking and deliberately absent.
const BLOCKING_ZERO_ARG: &[&str] = &["recv", "join", "accept"];
const BLOCKING_ANY_ARG: &[&str] = &["send", "recv_timeout"];

impl WorkspaceModel {
    /// Build the model from parsed files.
    pub fn build(files: &[SourceFile]) -> WorkspaceModel {
        let mut model = WorkspaceModel::default();
        for f in files {
            extract_fns(f, &mut model.fns);
        }
        model
            .fns
            .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        for (i, f) in model.fns.iter().enumerate() {
            model.by_name.entry(f.name.clone()).or_default().push(i);
        }
        model
    }

    /// Resolve a call by name: same-file definition first, then a
    /// workspace-unique one. Stop-listed names, ambiguous names, and
    /// method calls on non-`self` receivers resolve to nothing — the
    /// model under-approximates rather than invent edges.
    pub fn resolve(&self, call: &CallSite, from_file: &str) -> Option<usize> {
        if call.kind == CallKind::Method || CALL_STOPLIST.contains(&call.callee.as_str()) {
            return None;
        }
        let candidates = self.by_name.get(&call.callee)?;
        if let Some(&i) = candidates.iter().find(|&&i| self.fns[i].file == from_file) {
            return Some(i);
        }
        if candidates.len() == 1 {
            return Some(candidates[0]);
        }
        None
    }
}

/// A live guard during the body walk.
#[derive(Debug, Clone)]
struct Guard {
    lock: String,
    line: u32,
    /// Brace depth at creation.
    depth: i32,
    /// Statement temporary (dies at its statement/expression end) vs a
    /// `let`-bound guard (dies at block end or explicit `drop`).
    temp: bool,
    /// Binder name for `drop(<name>)` recognition.
    binder: Option<String>,
}

fn ident_at(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(toks: &[Token], i: usize, c: char) -> bool {
    matches!(toks.get(i), Some(t) if t.kind == TokKind::Punct(c))
}

/// Find every `fn` item in the file and model its body. Nested fn
/// spans are excluded from the enclosing fn's walk so their locks are
/// attributed to the right owner.
fn extract_fns(file: &SourceFile, out: &mut Vec<FnModel>) {
    let toks = &file.tokens;
    // (name, fn-keyword index, body range)
    let mut spans: Vec<(String, usize, usize, usize)> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if ident_at(toks, i) == Some("fn") {
            if let Some(name) = ident_at(toks, i + 1) {
                // Scan the signature for the body `{` (or `;` for a
                // bodyless trait method).
                let mut j = i + 2;
                let mut body: Option<(usize, usize)> = None;
                while j < toks.len() {
                    match &toks[j].kind {
                        TokKind::Punct('{') => {
                            body = Some((j, skip_brace(toks, j)));
                            break;
                        }
                        TokKind::Punct(';') => break,
                        _ => j += 1,
                    }
                }
                if let Some((bs, be)) = body {
                    spans.push((name.to_string(), i, bs, be));
                }
            }
        }
        i += 1;
    }
    for (si, (name, fn_idx, bs, be)) in spans.iter().enumerate() {
        // Token ranges of fns nested inside this one.
        let nested: Vec<(usize, usize)> = spans
            .iter()
            .enumerate()
            .filter(|(oi, (_, ofi, _, obe))| *oi != si && *ofi > *bs && *obe <= *be)
            .map(|(_, (_, ofi, _, obe))| (*ofi, *obe))
            .collect();
        let mut f = FnModel {
            name: name.clone(),
            file: file.rel.clone(),
            krate: file.krate.clone(),
            line: toks[*fn_idx].line,
            acquisitions: Vec::new(),
            calls: Vec::new(),
            blocking: Vec::new(),
        };
        walk_body(file, toks, *bs, *be, &nested, &mut f);
        out.push(f);
    }
}

/// Index just past the `}` matching the `{` at `i`.
fn skip_brace(toks: &[Token], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        match &toks[j].kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    toks.len()
}

/// Walk one fn body tracking live guards; record acquisitions, calls,
/// and blocking operations. `body` is the index of the opening `{`;
/// `end` is just past the closing `}`.
fn walk_body(
    file: &SourceFile,
    toks: &[Token],
    body: usize,
    end: usize,
    nested: &[(usize, usize)],
    f: &mut FnModel,
) {
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i32;
    // `let`-pattern tracking: binder = last ident before the `=`.
    let mut collecting_let = false;
    let mut let_idents: Vec<String> = Vec::new();
    let mut pending_binder: Option<String> = None;
    // A `*` after the `=` means the let binds a deref-copied value —
    // the guard itself is a statement temporary (`let id =
    // *self.applied.lock();` holds nothing afterwards).
    let mut deref_after_eq = false;

    let mut i = body;
    while i < end {
        // Skip nested fn definitions wholesale (they are balanced, so
        // depth tracking stays consistent).
        if let Some(&(_, ne)) = nested.iter().find(|&&(ns, _)| ns == i) {
            i = ne;
            continue;
        }
        match &toks[i].kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                guards.retain(|g| {
                    if g.temp {
                        g.depth < depth
                    } else {
                        g.depth <= depth
                    }
                });
            }
            TokKind::Punct(';') => {
                guards.retain(|g| !(g.temp && depth <= g.depth));
                collecting_let = false;
                pending_binder = None;
            }
            // A `,` at the guard's brace depth ends a match-arm
            // expression (`Feed::Master => log.since(*w.lock()),`) — the
            // arm's temporaries die there. (This also ends temps at
            // argument commas, a deliberate under-approximation: such a
            // guard still dies at the same statement's `;`.)
            TokKind::Punct(',') => {
                guards.retain(|g| !(g.temp && depth <= g.depth));
            }
            // `=` (not `==`/`=>`/`<=` …) ends a let pattern.
            TokKind::Punct('=')
                if collecting_let && !punct_at(toks, i + 1, '=') && !punct_at(toks, i + 1, '>') =>
            {
                pending_binder = let_idents.last().cloned();
                collecting_let = false;
                deref_after_eq = false;
            }
            TokKind::Punct('*') if pending_binder.is_some() => {
                deref_after_eq = true;
            }
            TokKind::Ident(word) => {
                if word == "let" {
                    collecting_let = true;
                    let_idents.clear();
                } else if word == "drop" && punct_at(toks, i + 1, '(') {
                    if let Some(name) = ident_at(toks, i + 2) {
                        if punct_at(toks, i + 3, ')') {
                            guards.retain(|g| g.binder.as_deref() != Some(name));
                        }
                    }
                } else if collecting_let {
                    if word != "mut" && word != "ref" {
                        let_idents.push(word.clone());
                    }
                } else if is_acquisition(toks, i) {
                    let recv = receiver_name(toks, i - 1);
                    let lock = format!("{}::{}", f.file, recv);
                    f.acquisitions.push(Acquisition {
                        lock: lock.clone(),
                        line: toks[i].line,
                        held: guards
                            .iter()
                            .map(|g| HeldLock {
                                lock: g.lock.clone(),
                                line: g.line,
                            })
                            .collect(),
                    });
                    let temp = deref_after_eq || !guard_is_let_bound(toks, i + 3, end);
                    guards.push(Guard {
                        lock,
                        line: toks[i].line,
                        depth,
                        temp,
                        binder: if temp { None } else { pending_binder.take() },
                    });
                } else if punct_at(toks, i + 1, '(') && !KEYWORDS.contains(&word.as_str()) {
                    let zero_arg = punct_at(toks, i + 2, ')');
                    let method = i > body && punct_at(toks, i - 1, '.');
                    let kind = if !method {
                        CallKind::Free
                    } else if ident_at(toks, i.wrapping_sub(2)) == Some("self") {
                        CallKind::SelfMethod
                    } else {
                        CallKind::Method
                    };
                    let blocking = method
                        && ((BLOCKING_ZERO_ARG.contains(&word.as_str()) && zero_arg)
                            || BLOCKING_ANY_ARG.contains(&word.as_str()));
                    let held: Vec<HeldLock> = guards
                        .iter()
                        .map(|g| HeldLock {
                            lock: g.lock.clone(),
                            line: g.line,
                        })
                        .collect();
                    if blocking {
                        f.blocking.push(BlockingCall {
                            method: word.clone(),
                            line: toks[i].line,
                            held,
                        });
                    } else {
                        // Calls with nothing held still matter: they
                        // carry the transitive lock-set propagation.
                        f.calls.push(CallSite {
                            callee: word.clone(),
                            kind,
                            line: toks[i].line,
                            held,
                        });
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    let _ = file;
}

/// Is the ident at `i` a zero-argument `.lock()` / `.read()` /
/// `.write()` acquisition?
fn is_acquisition(toks: &[Token], i: usize) -> bool {
    matches!(ident_at(toks, i), Some("lock" | "read" | "write"))
        && i > 0
        && punct_at(toks, i - 1, '.')
        && punct_at(toks, i + 1, '(')
        && punct_at(toks, i + 2, ')')
}

/// Walk back from the `.` before an acquisition to name its receiver:
/// `self.deferred.lock()` → `deferred`, `self.shard_for(k).lock()` →
/// `shard_for`, `report_cache().lock()` → `report_cache`.
fn receiver_name(toks: &[Token], dot: usize) -> String {
    let mut j = dot;
    while j > 0 {
        j -= 1;
        match &toks[j].kind {
            TokKind::Ident(s) => return s.clone(),
            TokKind::Punct('.') => continue, // tuple index (`self.0.lock()`)
            TokKind::Punct(')') | TokKind::Punct(']') => {
                // Skip the balanced group, then expect the callee/array
                // name right before it.
                let open = if toks[j].kind == TokKind::Punct(')') {
                    '('
                } else {
                    '['
                };
                let close = if open == '(' { ')' } else { ']' };
                let mut depth = 0i32;
                loop {
                    match &toks[j].kind {
                        TokKind::Punct(c) if *c == close => depth += 1,
                        TokKind::Punct(c) if *c == open => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if j == 0 {
                        break;
                    }
                    j -= 1;
                }
                // Loop continues: the token before the group names it.
            }
            _ => return "<expr>".to_string(),
        }
    }
    "<expr>".to_string()
}

/// After an acquisition's `( )` at `after` (index of the token past the
/// `)`), decide whether the guard is `let`-bound: skip a chain of
/// `.expect("…")` / `.unwrap()` / `?`, then require `;`. Anything else
/// (another method, a `{` scrutinee, an argument position) makes it a
/// statement temporary.
fn guard_is_let_bound(toks: &[Token], mut j: usize, end: usize) -> bool {
    while j < end {
        if punct_at(toks, j, '?') {
            j += 1;
            continue;
        }
        if punct_at(toks, j, '.') {
            match ident_at(toks, j + 1) {
                Some("expect") | Some("unwrap") if punct_at(toks, j + 2, '(') => {
                    j = skip_paren(toks, j + 2);
                    continue;
                }
                _ => return false,
            }
        }
        return punct_at(toks, j, ';');
    }
    false
}

/// Index just past the `)` matching the `(` at `i`.
fn skip_paren(toks: &[Token], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        match &toks[j].kind {
            TokKind::Punct('(') => depth += 1,
            TokKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    toks.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_of(rel: &str, src: &str) -> WorkspaceModel {
        WorkspaceModel::build(&[SourceFile::parse(rel, src)])
    }

    #[test]
    fn let_bound_guard_is_held_at_later_calls() {
        let src = "
            impl S {
                fn f(&self) {
                    let mut q = self.queue.lock();
                    self.helper();
                    q.push(1);
                }
            }
        ";
        let m = model_of("crates/cache/src/a.rs", src);
        let f = &m.fns[0];
        let helper = f.calls.iter().find(|c| c.callee == "helper").unwrap();
        assert_eq!(helper.held.len(), 1);
        assert!(helper.held[0].lock.ends_with("::queue"));
    }

    #[test]
    fn block_scoped_guard_dies_at_the_brace() {
        let src = "
            fn f(&self) {
                { let g = self.queue.lock(); g.touch(); }
                self.helper();
            }
        ";
        let m = model_of("crates/cache/src/a.rs", src);
        let helper = m.fns[0]
            .calls
            .iter()
            .find(|c| c.callee == "helper")
            .unwrap();
        assert!(helper.held.is_empty());
    }

    #[test]
    fn explicit_drop_releases_the_guard() {
        let src = "
            fn f(&self) {
                let g = self.queue.lock();
                drop(g);
                self.helper();
            }
        ";
        let m = model_of("crates/cache/src/a.rs", src);
        let helper = m.fns[0]
            .calls
            .iter()
            .find(|c| c.callee == "helper")
            .unwrap();
        assert!(helper.held.is_empty());
    }

    #[test]
    fn statement_temp_dies_at_its_semicolon() {
        let src = "
            fn f(&self) {
                let n = self.queue.lock().len();
                self.helper();
            }
        ";
        let m = model_of("crates/cache/src/a.rs", src);
        let helper = m.fns[0]
            .calls
            .iter()
            .find(|c| c.callee == "helper")
            .unwrap();
        assert!(
            helper.held.is_empty(),
            "temp guard must not outlive its statement"
        );
    }

    #[test]
    fn scrutinee_temp_is_held_through_the_match_body() {
        // Rust's temporary-lifetime rule: the guard in a match scrutinee
        // lives to the end of the match — the classic deadlock shape.
        let src = "
            fn f(&self) {
                match self.queue.lock() {
                    q => { self.inside(); }
                }
                self.after();
            }
        ";
        let m = model_of("crates/cache/src/a.rs", src);
        let f = &m.fns[0];
        let inside = f.calls.iter().find(|c| c.callee == "inside").unwrap();
        assert_eq!(inside.held.len(), 1);
        let after = f.calls.iter().find(|c| c.callee == "after").unwrap();
        assert!(after.held.is_empty());
    }

    #[test]
    fn receiver_names_are_canonical() {
        let src = "
            fn f(&self) {
                let a = self.deferred.lock();
                let b = self.shard_for(key).lock();
                let c = report_cache().lock();
                let d = self.0.lock();
                a.use_all(b, c, d);
            }
        ";
        let m = model_of("crates/trigger/src/m.rs", src);
        let locks: Vec<&str> = m.fns[0]
            .acquisitions
            .iter()
            .map(|a| a.lock.as_str())
            .collect();
        assert_eq!(
            locks,
            vec![
                "crates/trigger/src/m.rs::deferred",
                "crates/trigger/src/m.rs::shard_for",
                "crates/trigger/src/m.rs::report_cache",
                "crates/trigger/src/m.rs::self",
            ]
        );
    }

    #[test]
    fn blocking_calls_record_held_guards() {
        let src = "
            fn f(&self) {
                let g = self.inbox.lock();
                let v = self.rx.recv();
                let s = parts.join(\",\");
                g.push(v);
            }
        ";
        let m = model_of("crates/trigger/src/m.rs", src);
        let blocking = &m.fns[0].blocking;
        assert_eq!(blocking.len(), 1, "slice join must not count: {blocking:?}");
        assert_eq!(blocking[0].method, "recv");
        assert_eq!(blocking[0].held.len(), 1);
    }

    #[test]
    fn rwlock_read_write_are_acquisitions_but_io_read_is_not() {
        let src = "
            fn f(&self) {
                let t = self.tables.write();
                let n = stream.read(&mut buf);
                t.mark(n);
            }
        ";
        let m = model_of("crates/db/src/d.rs", src);
        assert_eq!(m.fns[0].acquisitions.len(), 1);
        assert!(m.fns[0].acquisitions[0].lock.ends_with("::tables"));
    }

    #[test]
    fn call_resolution_prefers_same_file_then_unique() {
        let a = SourceFile::parse(
            "crates/x/src/a.rs",
            "fn caller(&self) { helper(); unique_elsewhere(); get(); self.stats.helper(1); }
             fn helper() {}",
        );
        let b = SourceFile::parse(
            "crates/y/src/b.rs",
            "fn helper() {} fn unique_elsewhere() {}",
        );
        let m = WorkspaceModel::build(&[a, b]);
        let caller = m.fns.iter().find(|f| f.name == "caller").unwrap();
        let call = |name: &str, kind: CallKind| {
            caller
                .calls
                .iter()
                .find(|c| c.callee == name && c.kind == kind)
                .unwrap()
        };
        let same = m
            .resolve(call("helper", CallKind::Free), "crates/x/src/a.rs")
            .unwrap();
        assert_eq!(m.fns[same].file, "crates/x/src/a.rs");
        let uniq = m
            .resolve(
                call("unique_elsewhere", CallKind::Free),
                "crates/x/src/a.rs",
            )
            .unwrap();
        assert_eq!(m.fns[uniq].file, "crates/y/src/b.rs");
        assert!(
            m.resolve(call("get", CallKind::Free), "crates/x/src/a.rs")
                .is_none(),
            "stop-listed"
        );
        assert!(
            m.resolve(call("helper", CallKind::Method), "crates/x/src/a.rs")
                .is_none(),
            "a non-self receiver's type is unknown — never resolved"
        );
    }

    #[test]
    fn match_arm_temp_guard_dies_at_the_arm_comma() {
        // Two expression match arms each taking the same lock for a
        // copied read — the first arm's temporary dies at its `,`, so
        // the second acquisition must not see it as held (this is the
        // `Replica::catch_up` shape; modeling it wrong invents an
        // applied→applied deadlock cycle).
        let src = "
            fn catch_up(&self) {
                let feed = self.current.lock();
                match &*feed {
                    Feed::Master => self.log.since(*self.applied.lock()),
                    Feed::Peer(log) => log.since(*self.applied.lock()),
                }
            }
        ";
        let m = model_of("crates/db/src/r.rs", src);
        let applied: Vec<&Acquisition> = m.fns[0]
            .acquisitions
            .iter()
            .filter(|a| a.lock.ends_with("::applied"))
            .collect();
        assert_eq!(applied.len(), 2);
        for a in applied {
            assert!(
                a.held.iter().all(|h| !h.lock.ends_with("::applied")),
                "arm temp from the previous arm must be dead at line {}",
                a.line
            );
            assert!(a.held.iter().any(|h| h.lock.ends_with("::current")));
        }
    }

    #[test]
    fn deref_copy_let_does_not_hold_the_guard() {
        // `let id = *self.applied.lock();` binds the copied value, not
        // the guard — the guard dies with the statement.
        let src = "
            fn deliver(&self) {
                let applied = *self.applied.lock();
                self.apply(applied);
            }
        ";
        let m = model_of("crates/db/src/r.rs", src);
        let apply = m.fns[0].calls.iter().find(|c| c.callee == "apply").unwrap();
        assert!(apply.held.is_empty());
        assert_eq!(apply.kind, CallKind::SelfMethod);
    }
}
