//! A minimal Rust lexer for the lint pass.
//!
//! Produces identifier / string-literal / punctuation tokens with line
//! numbers, discarding comments, char literals, lifetimes, and numeric
//! literals. This is deliberately not a full Rust grammar — it is just
//! enough to make the token patterns in [`crate::rules`] reliable:
//!
//! * text inside comments and string literals can never produce an
//!   identifier token (so `"Instant::now"` in a message is not a hit);
//! * raw strings (`r#"…"#`), byte strings, and raw identifiers
//!   (`r#fn`) are disambiguated;
//! * tuple-index chains keep their dots (`x.0.unwrap()` still yields
//!   `.` `unwrap` `(`);
//! * lifetimes (`'a`) are not confused with char literals (`'a'`).
//!
//! Line comments are additionally scanned for allowlist annotations of
//! the form `allow(<RULE>) — <reason>` behind the marker described in
//! DESIGN.md §10; well-formed ones are collected as [`Allow`] records,
//! and comments that carry the marker but do not parse are reported as
//! [`MalformedAllow`] so a typo cannot silently disable a rule.

/// What a token is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`Instant`, `unwrap`, `fn`, …).
    Ident(String),
    /// A string literal's *content* (quotes and raw-string hashes
    /// stripped, escape sequences left as written).
    StrLit(String),
    /// Any single punctuation character (`.`, `:`, `(`, `#`, …).
    Punct(char),
}

/// One token plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokKind,
    /// 1-based line number.
    pub line: u32,
}

/// A well-formed allowlist annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// Rule id being allowed, e.g. `D001`.
    pub rule: String,
    /// The mandatory human reason.
    pub reason: String,
    /// Line the annotation comment is on.
    pub line: u32,
}

/// A comment that carries the annotation marker but does not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MalformedAllow {
    /// Line the comment is on.
    pub line: u32,
    /// What is wrong with it.
    pub detail: String,
}

/// Everything the lexer extracts from one source file.
#[derive(Debug, Default)]
pub struct LexOutput {
    /// Code tokens, in order.
    pub tokens: Vec<Token>,
    /// Well-formed allowlist annotations.
    pub allows: Vec<Allow>,
    /// Annotation-marker comments that failed to parse.
    pub malformed: Vec<MalformedAllow>,
}

const ALLOW_MARKER: &str = concat!("nagano-lint", ":");

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `source` into tokens and allowlist annotations.
pub fn lex(source: &str) -> LexOutput {
    let cs: Vec<char> = source.chars().collect();
    let mut out = LexOutput::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < cs.len() {
        let c = cs[i];
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '/' && cs.get(i + 1) == Some(&'/') {
            let start = i + 2;
            let mut j = start;
            while j < cs.len() && cs[j] != '\n' {
                j += 1;
            }
            let text: String = cs[start..j].iter().collect();
            scan_comment(&text, line, &mut out);
            i = j;
        } else if c == '/' && cs.get(i + 1) == Some(&'*') {
            let mut depth = 1u32;
            let mut j = i + 2;
            while j < cs.len() && depth > 0 {
                if cs[j] == '\n' {
                    line += 1;
                    j += 1;
                } else if cs[j] == '/' && cs.get(j + 1) == Some(&'*') {
                    depth += 1;
                    j += 2;
                } else if cs[j] == '*' && cs.get(j + 1) == Some(&'/') {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            i = j;
        } else if c == '"' {
            let start_line = line;
            let (j, text) = lex_plain_string(&cs, i + 1, &mut line);
            out.tokens.push(Token {
                kind: TokKind::StrLit(text),
                line: start_line,
            });
            i = j;
        } else if c == '\'' {
            i = lex_char_or_lifetime(&cs, i);
        } else if c.is_ascii_digit() {
            i = lex_number(&cs, i);
        } else if is_ident_start(c) {
            let mut j = i;
            while j < cs.len() && is_ident_continue(cs[j]) {
                j += 1;
            }
            let word: String = cs[i..j].iter().collect();
            i = ident_or_literal(&cs, j, word, &mut line, &mut out);
        } else {
            out.tokens.push(Token {
                kind: TokKind::Punct(c),
                line,
            });
            i += 1;
        }
    }
    out
}

/// After reading an identifier, decide whether it is really the prefix
/// of a byte/C string (`b"…"`, `c"…"`), raw string (`r"…"`, `r#"…"#`,
/// `br#"…"#`, `cr#"…"#`), or raw identifier (`r#fn`). Returns the index
/// to resume lexing at.
fn ident_or_literal(
    cs: &[char],
    end: usize,
    word: String,
    line: &mut u32,
    out: &mut LexOutput,
) -> usize {
    let next = cs.get(end).copied();
    if (word == "b" || word == "c") && next == Some('"') {
        let start_line = *line;
        let (j, text) = lex_plain_string(cs, end + 1, line);
        out.tokens.push(Token {
            kind: TokKind::StrLit(text),
            line: start_line,
        });
        return j;
    }
    if word == "b" && next == Some('\'') {
        return lex_char_or_lifetime(cs, end);
    }
    if (word == "r" || word == "br" || word == "cr") && (next == Some('"') || next == Some('#')) {
        let mut hashes = 0usize;
        let mut j = end;
        while cs.get(j) == Some(&'#') {
            hashes += 1;
            j += 1;
        }
        if cs.get(j) == Some(&'"') {
            let start_line = *line;
            let (j, text) = lex_raw_string(cs, j + 1, hashes, line);
            out.tokens.push(Token {
                kind: TokKind::StrLit(text),
                line: start_line,
            });
            return j;
        }
        if word == "r" && hashes == 1 && cs.get(j).copied().is_some_and(is_ident_start) {
            let mut k = j;
            while k < cs.len() && is_ident_continue(cs[k]) {
                k += 1;
            }
            out.tokens.push(Token {
                kind: TokKind::Ident(cs[j..k].iter().collect()),
                line: *line,
            });
            return k;
        }
    }
    out.tokens.push(Token {
        kind: TokKind::Ident(word),
        line: *line,
    });
    end
}

/// Lex a non-raw string body starting just after the opening quote.
/// Returns (index after closing quote, content).
fn lex_plain_string(cs: &[char], mut j: usize, line: &mut u32) -> (usize, String) {
    let mut text = String::new();
    while j < cs.len() {
        match cs[j] {
            '\\' => {
                text.push('\\');
                if let Some(&esc) = cs.get(j + 1) {
                    if esc == '\n' {
                        *line += 1;
                    }
                    text.push(esc);
                }
                j += 2;
            }
            '"' => return (j + 1, text),
            c => {
                if c == '\n' {
                    *line += 1;
                }
                text.push(c);
                j += 1;
            }
        }
    }
    (j, text)
}

/// Lex a raw string body (no escapes) terminated by `"` plus `hashes`
/// `#` characters.
fn lex_raw_string(cs: &[char], mut j: usize, hashes: usize, line: &mut u32) -> (usize, String) {
    let mut text = String::new();
    while j < cs.len() {
        if cs[j] == '"' {
            let mut k = 0usize;
            while k < hashes && cs.get(j + 1 + k) == Some(&'#') {
                k += 1;
            }
            if k == hashes {
                return (j + 1 + hashes, text);
            }
        }
        if cs[j] == '\n' {
            *line += 1;
        }
        text.push(cs[j]);
        j += 1;
    }
    (j, text)
}

/// Skip a char literal (`'x'`, `'\\n'`, `b'\x00'`) or a lifetime
/// (`'a`). Starts at the opening quote; returns the resume index.
fn lex_char_or_lifetime(cs: &[char], i: usize) -> usize {
    match cs.get(i + 1) {
        Some('\\') => {
            // Escaped char literal: skip backslash + escaped char, then
            // scan to the closing quote ('\u{…}' spans several chars).
            let mut j = i + 3;
            while j < cs.len() && cs[j] != '\'' {
                j += 1;
            }
            j + 1
        }
        Some(&c) if cs.get(i + 2) == Some(&'\'') && c != '\'' => i + 3,
        Some(&c) if is_ident_start(c) => {
            // Lifetime: consume the label, no closing quote.
            let mut j = i + 1;
            while j < cs.len() && is_ident_continue(cs[j]) {
                j += 1;
            }
            j
        }
        _ => i + 1,
    }
}

/// Skip a numeric literal. Consumes digits, `_`, suffix letters, a `.`
/// only when followed by a digit (so `x.0.unwrap()` keeps its method
/// dot), and an exponent sign directly after `e`/`E`.
fn lex_number(cs: &[char], i: usize) -> usize {
    let mut j = i + 1;
    while j < cs.len() {
        let c = cs[j];
        if c.is_alphanumeric() || c == '_' {
            j += 1;
        } else if c == '.' && cs.get(j + 1).is_some_and(|d| d.is_ascii_digit()) {
            j += 2;
        } else if (c == '+' || c == '-') && matches!(cs[j - 1], 'e' | 'E') {
            j += 1;
        } else {
            break;
        }
    }
    j
}

/// Inspect one line comment for an allowlist annotation.
fn scan_comment(text: &str, line: u32, out: &mut LexOutput) {
    let Some(pos) = text.find(ALLOW_MARKER) else {
        return;
    };
    let rest = text[pos + ALLOW_MARKER.len()..].trim_start();
    match parse_allow(rest) {
        Ok((rule, reason)) => out.allows.push(Allow { rule, reason, line }),
        Err(detail) => out.malformed.push(MalformedAllow {
            line,
            detail: detail.to_string(),
        }),
    }
}

/// Parse `allow(<RULE>) — <reason>` (an ASCII `-`/`--` separator is
/// accepted too). The reason is mandatory.
fn parse_allow(rest: &str) -> Result<(String, String), &'static str> {
    let Some(rest) = rest.strip_prefix("allow(") else {
        return Err("expected `allow(<RULE>)` after the marker");
    };
    let Some(close) = rest.find(')') else {
        return Err("unclosed `allow(`");
    };
    let rule = rest[..close].trim();
    if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_alphanumeric()) {
        return Err("rule id must be alphanumeric, e.g. `allow(D001)`");
    }
    let mut tail = rest[close + 1..].trim_start();
    for sep in ["—", "--", "-"] {
        if let Some(t) = tail.strip_prefix(sep) {
            tail = t;
            break;
        }
    }
    let reason = tail.trim();
    if reason.is_empty() {
        return Err("a reason is required after the rule id");
    }
    Ok((rule.to_string(), reason.to_string()))
}

/// Remove `#[cfg(test)]` / `#[test]` items from a token stream, so the
/// rules only see code that ships in the production build. All other
/// attributes are dropped from the stream but their items are kept. A
/// top-level `#![cfg(test)]` inner attribute marks the *whole file* as
/// test-only, so it strips to nothing.
pub fn strip_tests(toks: &[Token]) -> Vec<Token> {
    let mut out: Vec<Token> = Vec::with_capacity(toks.len());
    let mut depth = 0i32;
    let mut i = 0usize;
    while i < toks.len() {
        if is_punct(toks, i, '#') {
            if is_punct(toks, i + 1, '!') {
                // Inner attribute `#![…]`: no item follows. At file scope
                // a test-marking one exempts the entire file; otherwise
                // the attribute itself is dropped from the stream.
                let end = skip_balanced(toks, i + 2, '[', ']');
                let body = toks.get(i + 3..end.saturating_sub(1)).unwrap_or(&[]);
                if depth == 0 && is_test_attr(body) {
                    return Vec::new();
                }
                i = end;
                continue;
            }
            if is_punct(toks, i + 1, '[') {
                // A run of outer attributes, then the item they decorate.
                let mut j = i;
                let mut testish = false;
                while is_punct(toks, j, '#') && is_punct(toks, j + 1, '[') {
                    let end = skip_balanced(toks, j + 1, '[', ']');
                    let body = toks.get(j + 2..end.saturating_sub(1)).unwrap_or(&[]);
                    if is_test_attr(body) {
                        testish = true;
                    }
                    j = end;
                }
                i = if testish { skip_item(toks, j) } else { j };
                continue;
            }
        }
        match toks[i].kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => depth -= 1,
            _ => {}
        }
        out.push(toks[i].clone());
        i += 1;
    }
    out
}

fn is_punct(toks: &[Token], i: usize, c: char) -> bool {
    matches!(toks.get(i), Some(t) if t.kind == TokKind::Punct(c))
}

/// Does this attribute body mark test-only code? True for `test`,
/// `cfg(test)`, and cfg trees that mention `test` without `not`.
fn is_test_attr(body: &[Token]) -> bool {
    let idents: Vec<&str> = body
        .iter()
        .filter_map(|t| match &t.kind {
            TokKind::Ident(s) => Some(s.as_str()),
            _ => None,
        })
        .collect();
    match idents.first() {
        Some(&"test") => true,
        Some(&"cfg") => idents.contains(&"test") && !idents.contains(&"not"),
        _ => false,
    }
}

/// Skip a balanced `open…close` group; `i` points at `open`. Returns
/// the index just past the matching `close`.
fn skip_balanced(toks: &[Token], i: usize, open: char, close: char) -> usize {
    if !is_punct(toks, i, open) {
        return i + 1;
    }
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        if is_punct(toks, j, open) {
            depth += 1;
        } else if is_punct(toks, j, close) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    toks.len()
}

/// Skip one item starting at `i`: everything up to a top-level `;` or
/// through the item's balanced `{…}` body.
fn skip_item(toks: &[Token], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        match &toks[j].kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            TokKind::Punct(';') if depth == 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    toks.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            // Instant::now in a comment
            /* SystemTime::now in /* a nested */ block */
            let s = "Instant::now";
            let r = r#"SystemTime::now"#;
            let b = b"thread_rng";
            let real = elapsed;
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|s| s == "Instant" || s == "SystemTime"));
        assert!(!ids.iter().any(|s| s == "thread_rng"));
        assert!(ids.iter().any(|s| s == "elapsed"));
    }

    #[test]
    fn tuple_index_keeps_the_method_dot() {
        let out = lex("x.0.unwrap()");
        let kinds: Vec<&TokKind> = out.tokens.iter().map(|t| &t.kind).collect();
        assert!(kinds
            .windows(2)
            .any(|w| w[0] == &TokKind::Punct('.') && w[1] == &TokKind::Ident("unwrap".into())));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let ids = idents("fn f<'a>(x: &'a str) -> &'a str { let c = 'x'; x }");
        assert!(ids.iter().any(|s| s == "str"));
        // 'x' char literal does not swallow the rest of the file.
        assert!(ids.iter().any(|s| s == "x"));
    }

    #[test]
    fn raw_identifiers_lex_as_identifiers() {
        let ids = idents("let r#fn = 1; let y = r#fn;");
        assert!(ids.iter().any(|s| s == "fn"));
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "let a = \"x\ny\";\n/* b\nc */\nlet z = 9;";
        let out = lex(src);
        let z = out
            .tokens
            .iter()
            .find(|t| t.kind == TokKind::Ident("z".into()))
            .map(|t| t.line);
        assert_eq!(z, Some(5));
    }

    #[test]
    fn allow_annotations_parse_with_reasons() {
        let src = format!(
            "// {m} allow(D001) — host profiling\nlet x = 1; // {m} allow(R001) - startup\n// {m} allow(T001)\n",
            m = ALLOW_MARKER
        );
        let out = lex(&src);
        assert_eq!(out.allows.len(), 2);
        assert_eq!(out.allows[0].rule, "D001");
        assert_eq!(out.allows[0].reason, "host profiling");
        assert_eq!(out.allows[0].line, 1);
        assert_eq!(out.allows[1].rule, "R001");
        assert_eq!(out.allows[1].line, 2);
        assert_eq!(out.malformed.len(), 1, "missing reason is malformed");
        assert_eq!(out.malformed[0].line, 3);
    }

    #[test]
    fn raw_strings_with_hashes_do_not_swallow_code() {
        // The `"#` inside the body must not close the r##-string early,
        // and the code after the literal must keep lexing.
        let src = "let s = r##\"quote \"# inside\"##;\nlet after = Instant;\n";
        let out = lex(src);
        let after = out
            .tokens
            .iter()
            .find(|t| t.kind == TokKind::Ident("after".into()));
        assert!(after.is_some(), "lexer desynced after raw string");
        assert_eq!(after.map(|t| t.line), Some(2));
        assert!(matches!(
            &out.tokens.iter().find(|t| matches!(t.kind, TokKind::StrLit(_))).map(|t| &t.kind),
            Some(TokKind::StrLit(s)) if s.contains("\"#")
        ));
    }

    #[test]
    fn multiline_raw_strings_keep_line_numbers() {
        let src = "let s = r#\"line one\nline two\nline three\"#;\nlet z = 1;";
        let out = lex(src);
        let z = out
            .tokens
            .iter()
            .find(|t| t.kind == TokKind::Ident("z".into()))
            .map(|t| t.line);
        assert_eq!(z, Some(4));
    }

    #[test]
    fn c_string_literals_lex_as_strings() {
        // `c"…"` and `cr#"…"#` prefixes must be treated as literals, not
        // as an identifier followed by a desynced quote.
        let src = "let a = c\"thread_rng\";\nlet b = cr#\"OsRng\"#;\nlet real = elapsed;";
        let ids = idents(src);
        assert!(!ids.iter().any(|s| s == "thread_rng" || s == "OsRng"));
        assert!(ids.iter().any(|s| s == "elapsed"));
        let strs = lex(src)
            .tokens
            .into_iter()
            .filter(|t| matches!(t.kind, TokKind::StrLit(_)))
            .count();
        assert_eq!(strs, 2);
    }

    #[test]
    fn nested_block_comments_close_at_the_right_depth() {
        let src =
            "/* outer /* inner */ still a comment */ let real = 1; /* /*a*/ /*b*/ */ let more = 2;";
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "real", "let", "more"]);
        // Line counting survives newlines inside nested comments.
        let src2 = "/* a\n/* b\n*/\nc */\nlet z = 1;";
        let z = lex(src2)
            .tokens
            .iter()
            .find(|t| t.kind == TokKind::Ident("z".into()))
            .map(|t| t.line);
        assert_eq!(z, Some(5));
    }

    #[test]
    fn multiline_cfg_test_attribute_is_stripped() {
        // The attribute spans three lines; the decorated item must still
        // be recognised as test-only and removed.
        let src = "
            fn keep() {}
            #[cfg(
                test
            )]
            mod tests { fn gone() { let _ = Instant::now(); } }
        ";
        let out = strip_tests(&lex(src).tokens);
        let ids: Vec<String> = out
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Ident(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert!(ids.contains(&"keep".to_string()));
        assert!(!ids.contains(&"gone".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
    }

    #[test]
    fn file_level_cfg_test_exempts_the_whole_file() {
        let src = "#![cfg(test)]\nfn helper() { let _ = Instant::now(); }";
        assert!(strip_tests(&lex(src).tokens).is_empty());
        // A non-test inner attribute keeps the file.
        let src2 = "#![allow(dead_code)]\nfn helper() {}";
        assert!(!strip_tests(&lex(src2).tokens).is_empty());
        // A *module-level* inner cfg(test) does not exempt the file.
        let src3 = "mod m { #![cfg(test)] }\nfn keep() {}";
        let ids: Vec<String> = strip_tests(&lex(src3).tokens)
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Ident(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert!(ids.contains(&"keep".to_string()));
    }

    #[test]
    fn strip_tests_removes_test_items_only() {
        let src = "
            fn keep() {}
            #[test]
            fn gone() { panic!() }
            #[cfg(test)]
            mod tests { fn also_gone() {} }
            #[cfg(not(test))]
            fn kept_too() {}
            #[derive(Debug)]
            struct Kept;
        ";
        let out = strip_tests(&lex(src).tokens);
        let ids: Vec<String> = out
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Ident(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert!(ids.contains(&"keep".to_string()));
        assert!(ids.contains(&"kept_too".to_string()));
        assert!(ids.contains(&"Kept".to_string()));
        assert!(!ids.contains(&"gone".to_string()));
        assert!(!ids.contains(&"also_gone".to_string()));
    }
}
