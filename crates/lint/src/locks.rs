//! Pass 2, lock rules: L001 (lock-order inversion) and L002 (guard
//! held across a blocking call).
//!
//! L001 builds a *lock-acquisition graph*: an edge `A → B` means some
//! execution acquires lock `B` while already holding lock `A` — either
//! directly inside one function, or transitively (a function called
//! with `A` held eventually acquires `B`). Any cycle in that graph is a
//! potential deadlock: two threads entering the cycle from different
//! points can each hold the lock the other wants. Cycles are found as
//! strongly connected components (a self-loop — re-acquiring the same
//! lock — is also reported: `parking_lot` mutexes are not reentrant).
//! Each SCC produces exactly one diagnostic listing every acquisition
//! chain, with the `file:line` witness of each hold site and the call
//! path the transitive edges travel through.
//!
//! L002 flags a guard that is live across a blocking operation
//! (channel `send`/`recv`/`recv_timeout`, `JoinHandle::join`, TCP
//! `accept`) in the serving/propagation crates — the shape that turns
//! one slow peer into a pile-up behind the lock.

use std::collections::{BTreeMap, BTreeSet};

use crate::model::WorkspaceModel;
use crate::rules::Diagnostic;

/// Crates where holding a lock across a blocking call is a finding.
const L002_SCOPE: &[&str] = &[
    "cache",
    "cluster",
    "core",
    "db",
    "httpd",
    "odg",
    "telemetry",
    "trigger",
];

/// How a lock edge was witnessed: where the held lock was taken, where
/// the inner lock was taken, and (for transitive edges) the call chain
/// between them.
#[derive(Debug, Clone)]
struct Witness {
    /// File of the *hold* site (where the outer guard was acquired).
    file: String,
    /// Line of the outer acquisition.
    hold_line: u32,
    /// Line the edge's inner acquisition happens on (in `inner_file`).
    inner_file: String,
    inner_line: u32,
    /// Function names the edge travels through (empty = direct nesting).
    via: Vec<String>,
}

/// A lock reachable from a function, with the shortest-discovered call
/// path to its acquisition site.
#[derive(Debug, Clone)]
struct Reach {
    file: String,
    line: u32,
    via: Vec<String>,
}

/// Run both lock rules over the model.
pub fn run(model: &WorkspaceModel) -> Vec<Diagnostic> {
    let mut diags = l001(model);
    diags.extend(l002(model));
    diags
}

/// Fixpoint: for every function, the set of locks its execution can
/// acquire (directly or through resolvable calls), each with a witness
/// path. First-inserted witness wins, and iteration order is
/// deterministic, so witnesses are stable across runs.
fn lock_reach(model: &WorkspaceModel) -> Vec<BTreeMap<String, Reach>> {
    let n = model.fns.len();
    let mut reach: Vec<BTreeMap<String, Reach>> = vec![BTreeMap::new(); n];
    for (i, f) in model.fns.iter().enumerate() {
        for acq in &f.acquisitions {
            reach[i].entry(acq.lock.clone()).or_insert(Reach {
                file: f.file.clone(),
                line: acq.line,
                via: Vec::new(),
            });
        }
    }
    // Resolve call targets once.
    let edges: Vec<Vec<usize>> = model
        .fns
        .iter()
        .map(|f| {
            let mut tgts: Vec<usize> = f
                .calls
                .iter()
                .filter_map(|c| model.resolve(c, &f.file))
                .collect();
            tgts.sort_unstable();
            tgts.dedup();
            tgts
        })
        .collect();
    // Bounded fixpoint (call-graph depth is small; the bound is a
    // safety net against pathological inputs).
    for _ in 0..64 {
        let mut changed = false;
        for i in 0..n {
            let mut additions: Vec<(String, Reach)> = Vec::new();
            for &t in &edges[i] {
                if t == i {
                    continue;
                }
                for (lock, r) in &reach[t] {
                    if !reach[i].contains_key(lock) {
                        let mut via = vec![model.fns[t].name.clone()];
                        via.extend(r.via.iter().cloned());
                        additions.push((
                            lock.clone(),
                            Reach {
                                file: r.file.clone(),
                                line: r.line,
                                via,
                            },
                        ));
                    }
                }
            }
            for (lock, r) in additions {
                reach[i].entry(lock).or_insert(r);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    reach
}

/// L001: build the acquisition-order graph and report every SCC with
/// more than one node (or a self-loop) as a potential deadlock cycle.
fn l001(model: &WorkspaceModel) -> Vec<Diagnostic> {
    let reach = lock_reach(model);
    // edge (outer → inner) → first witness.
    let mut graph: BTreeMap<(String, String), Witness> = BTreeMap::new();
    let add = |graph: &mut BTreeMap<(String, String), Witness>,
               outer: &crate::model::HeldLock,
               f: &crate::model::FnModel,
               inner: &str,
               inner_file: &str,
               inner_line: u32,
               via: Vec<String>| {
        graph
            .entry((outer.lock.clone(), inner.to_string()))
            .or_insert(Witness {
                file: f.file.clone(),
                hold_line: outer.line,
                inner_file: inner_file.to_string(),
                inner_line,
                via,
            });
    };
    for f in &model.fns {
        // Direct nesting: an acquisition with guards already held.
        for acq in &f.acquisitions {
            for held in &acq.held {
                add(
                    &mut graph,
                    held,
                    f,
                    &acq.lock,
                    &f.file,
                    acq.line,
                    Vec::new(),
                );
            }
        }
        // Transitive: a call made with guards held reaches locks.
        for call in &f.calls {
            if call.held.is_empty() {
                continue;
            }
            let Some(t) = model.resolve(call, &f.file) else {
                continue;
            };
            for (lock, r) in &reach[t] {
                for held in &call.held {
                    let mut via = vec![format!(
                        "{} (call at line {})",
                        model.fns[t].name, call.line
                    )];
                    via.extend(r.via.iter().cloned());
                    add(&mut graph, held, f, lock, &r.file, r.line, via);
                }
            }
        }
    }
    // Node set + adjacency for SCC computation.
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    for (a, b) in graph.keys() {
        nodes.insert(a);
        nodes.insert(b);
    }
    let idx: BTreeMap<&str, usize> = nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let names: Vec<&str> = nodes.iter().copied().collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); names.len()];
    let mut self_loop: Vec<bool> = vec![false; names.len()];
    for (a, b) in graph.keys() {
        let (ia, ib) = (idx[a.as_str()], idx[b.as_str()]);
        if ia == ib {
            self_loop[ia] = true;
        } else {
            adj[ia].push(ib);
        }
    }
    let sccs = tarjan(&adj);
    let mut diags = Vec::new();
    for scc in sccs {
        let cyclic = scc.len() > 1 || (scc.len() == 1 && self_loop[scc[0]]);
        if !cyclic {
            continue;
        }
        // Collect every edge inside the SCC, sorted, and report one
        // diagnostic anchored at the first edge's hold site.
        let in_scc: BTreeSet<usize> = scc.iter().copied().collect();
        let cycle_edges: Vec<(&(String, String), &Witness)> = graph
            .iter()
            .filter(|((a, b), _)| {
                in_scc.contains(&idx[a.as_str()]) && in_scc.contains(&idx[b.as_str()])
            })
            .collect();
        let Some((_, anchor)) = cycle_edges.first() else {
            continue;
        };
        let chains: Vec<String> = cycle_edges
            .iter()
            .map(|((outer, inner), w)| {
                let route = if w.via.is_empty() {
                    String::new()
                } else {
                    format!(" via {}", w.via.join(" -> "))
                };
                format!(
                    "holds {} ({}:{}) then takes {} ({}:{}){}",
                    short(outer),
                    w.file,
                    w.hold_line,
                    short(inner),
                    w.inner_file,
                    w.inner_line,
                    route
                )
            })
            .collect();
        let locks: Vec<String> = scc.iter().map(|&i| short(names[i]).to_string()).collect();
        diags.push(Diagnostic {
            rule: "L001",
            file: anchor.file.clone(),
            line: anchor.hold_line,
            message: format!(
                "lock-order inversion: cycle between {{{}}} — {}",
                locks.join(", "),
                chains.join("; ")
            ),
            suggestion: "impose a single acquisition order (or drop the outer guard before \
                         taking the inner lock)"
                .to_string(),
        });
    }
    diags
}

/// L002: a guard live across a blocking call in a serving crate.
fn l002(model: &WorkspaceModel) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for f in &model.fns {
        if !L002_SCOPE.contains(&f.krate.as_str()) {
            continue;
        }
        for b in &f.blocking {
            if b.held.is_empty() {
                continue;
            }
            let held: Vec<String> = b
                .held
                .iter()
                .map(|h| format!("{} (line {})", short(&h.lock), h.line))
                .collect();
            diags.push(Diagnostic {
                rule: "L002",
                file: f.file.clone(),
                line: b.line,
                message: format!(
                    "guard held across blocking `.{}()` in fn `{}`: {}",
                    b.method,
                    f.name,
                    held.join(", ")
                ),
                suggestion: "release the guard before blocking (scope it, or clone the data \
                             out and drop it)"
                    .to_string(),
            });
        }
    }
    diags
}

/// `crates/trigger/src/monitor.rs::deferred` → `monitor.rs::deferred`.
fn short(lock: &str) -> &str {
    match lock.rfind('/') {
        Some(i) => &lock[i + 1..],
        None => lock,
    }
}

/// Iterative Tarjan SCC (deterministic: nodes visited in index order,
/// neighbours in insertion order).
fn tarjan(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    // Explicit DFS stack: (node, neighbour cursor).
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut work: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut cursor)) = work.last_mut() {
            if *cursor == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *cursor < adj[v].len() {
                let w = adj[v][*cursor];
                *cursor += 1;
                if index[w] == usize::MAX {
                    work.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    scc.sort_unstable();
                    sccs.push(scc);
                }
            }
        }
    }
    sccs.sort_by(|a, b| a.first().cmp(&b.first()));
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SourceFile;

    fn run_on(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let parsed: Vec<SourceFile> = files
            .iter()
            .map(|(rel, src)| SourceFile::parse(rel, src))
            .collect();
        run(&WorkspaceModel::build(&parsed))
    }

    #[test]
    fn direct_two_lock_inversion_is_a_cycle() {
        let src = "
            impl S {
                fn ab(&self) {
                    let a = self.alpha.lock();
                    let b = self.beta.lock();
                    a.merge(b);
                }
                fn ba(&self) {
                    let b = self.beta.lock();
                    let a = self.alpha.lock();
                    b.merge(a);
                }
            }
        ";
        let diags = run_on(&[("crates/trigger/src/x.rs", src)]);
        let l001: Vec<_> = diags.iter().filter(|d| d.rule == "L001").collect();
        assert_eq!(l001.len(), 1, "{diags:?}");
        assert!(l001[0].message.contains("x.rs::alpha"));
        assert!(l001[0].message.contains("x.rs::beta"));
    }

    #[test]
    fn cross_file_transitive_inversion_is_found_with_the_call_path() {
        let a = "
            impl S {
                fn enqueue(&self) {
                    let g = self.inbox.lock();
                    self.stamp_ledger(g.depth());
                }
                fn peek_inbox(&self, t: u64) {
                    let g = self.inbox.lock();
                    g.check(t);
                }
            }
        ";
        let b = "
            impl S {
                fn stamp_ledger(&self, n: usize) {
                    let l = self.ledger.lock();
                    l.note(n);
                }
                fn settle(&self) {
                    let l = self.ledger.lock();
                    self.peek_inbox(l.total());
                }
            }
        ";
        // a.rs::inbox → b.rs::ledger (via stamp_ledger) and
        // b.rs::ledger → a.rs::inbox (via peek_inbox): a cycle.
        let diags = run_on(&[
            ("crates/trigger/src/a.rs", a),
            ("crates/trigger/src/b.rs", b),
        ]);
        let l001: Vec<_> = diags.iter().filter(|d| d.rule == "L001").collect();
        assert_eq!(l001.len(), 1, "{diags:?}");
        assert!(l001[0].message.contains("via"), "{}", l001[0].message);
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "
            impl S {
                fn one(&self) {
                    let a = self.alpha.lock();
                    let b = self.beta.lock();
                    a.merge(b);
                }
                fn two(&self) {
                    let a = self.alpha.lock();
                    let b = self.beta.lock();
                    b.merge(a);
                }
            }
        ";
        let diags = run_on(&[("crates/trigger/src/x.rs", src)]);
        assert!(diags.iter().all(|d| d.rule != "L001"), "{diags:?}");
    }

    #[test]
    fn self_reacquisition_is_a_cycle() {
        let src = "
            impl S {
                fn f(&self) {
                    let a = self.alpha.lock();
                    self.g(a.len());
                }
                fn g(&self, n: usize) {
                    let a = self.alpha.lock();
                    a.push(n);
                }
            }
        ";
        let diags = run_on(&[("crates/cache/src/x.rs", src)]);
        assert!(diags.iter().any(|d| d.rule == "L001"), "{diags:?}");
    }

    #[test]
    fn chained_call_on_the_guard_is_not_a_cycle() {
        // `.record(x)` here is a method of the locked histogram, not a
        // recursive call to the enclosing fn of the same name.
        let src = "
            impl H {
                fn record(&self, x: f64) {
                    self.0.lock().expect(\"histogram poisoned\").record(x);
                }
            }
        ";
        let diags = run_on(&[("crates/telemetry/src/x.rs", src)]);
        assert!(diags.iter().all(|d| d.rule != "L001"), "{diags:?}");
    }

    #[test]
    fn guard_across_recv_fires_l002_in_scope_only() {
        let src = "
            fn pump(&self) {
                let g = self.inbox.lock();
                let msg = self.rx.recv();
                g.push(msg);
            }
        ";
        let hot = run_on(&[("crates/trigger/src/x.rs", src)]);
        assert_eq!(hot.iter().filter(|d| d.rule == "L002").count(), 1);
        let cold = run_on(&[("crates/bench/src/x.rs", src)]);
        assert!(cold.iter().all(|d| d.rule != "L002"));
    }

    #[test]
    fn scoped_guard_released_before_recv_is_clean() {
        let src = "
            fn pump(&self) {
                { let g = self.inbox.lock(); g.touch(); }
                let msg = self.rx.recv();
                self.apply(msg);
            }
        ";
        let diags = run_on(&[("crates/trigger/src/x.rs", src)]);
        assert!(diags.iter().all(|d| d.rule != "L002"), "{diags:?}");
    }
}
