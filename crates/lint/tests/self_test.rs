//! Registry self-test: every rule id in [`RULES`] must come with a
//! firing fixture and a clean fixture, and each must behave as named.
//! Registering a new rule without fixtures fails here by construction
//! — the match below has no default success arm.

use std::collections::BTreeSet;
use std::path::PathBuf;

use nagano_lint::{lint_source, lint_workspace, RULES};

fn fixtures() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Lint a token-rule fixture as if it lived in a serving hot-path
/// crate, so every per-file rule is in scope.
fn fired_by(fixture: &str) -> BTreeSet<String> {
    let path = fixtures().join(fixture);
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
    lint_source("crates/httpd/src/fixture.rs", &source)
        .iter()
        .map(|d| d.rule.to_string())
        .collect()
}

/// Rule ids a semantic fixture workspace produces through the full
/// cross-file pipeline.
fn fired_by_workspace(root: &str) -> BTreeSet<String> {
    lint_workspace(&fixtures().join(root))
        .unwrap_or_else(|e| panic!("missing fixture workspace {root}: {e}"))
        .diagnostics
        .iter()
        .map(|d| d.rule.to_string())
        .collect()
}

#[test]
fn every_registered_rule_has_a_firing_and_a_clean_fixture() {
    let semantic_fired = fired_by_workspace("semantic");
    let semantic_clean = fired_by_workspace("semantic_clean");
    for rule in RULES {
        let id = rule.id;
        let lower = id.to_ascii_lowercase();
        match id {
            "A000" | "D001" | "D002" | "D003" | "R001" | "R002" | "R003" | "T001" | "T002" => {
                let fixture = match id {
                    // A000's historical firing fixture doubles as the
                    // does-not-suppress test; a000.rs isolates the rule.
                    "A000" => "a000.rs".to_string(),
                    _ => format!("{lower}.rs"),
                };
                let fired = fired_by(&fixture);
                assert!(
                    fired.contains(id),
                    "{fixture} must fire {id}, got {fired:?}"
                );
                let clean = fired_by(&format!("{lower}_clean.rs"));
                assert!(
                    clean.is_empty(),
                    "{lower}_clean.rs must be clean, got {clean:?}"
                );
            }
            "L001" | "L002" | "O001" | "O002" => {
                assert!(
                    semantic_fired.contains(id),
                    "fixtures/semantic must fire {id}, got {semantic_fired:?}"
                );
                assert!(
                    semantic_clean.is_empty(),
                    "fixtures/semantic_clean must be clean, got {semantic_clean:?}"
                );
            }
            other => panic!(
                "rule {other} has no fixtures — add {lower}.rs + {lower}_clean.rs \
                 (or a semantic workspace pair) and teach this test about it"
            ),
        }
    }
}

#[test]
fn the_semantic_workspace_fires_exactly_the_semantic_rules() {
    // The same contract CI's lint-fixtures step enforces with
    // `--expect L001,L002,O001,O002`.
    let fired = fired_by_workspace("semantic");
    let expected: BTreeSet<String> = ["L001", "L002", "O001", "O002"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    assert_eq!(fired, expected);
}
