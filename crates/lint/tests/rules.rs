//! Fixture-driven tests: each rule must fire on its fixture, a
//! well-formed allowlist annotation must suppress it, and test-only
//! code must be exempt. Fixtures live under `tests/fixtures/` — they
//! are lexed by the linter, never compiled by cargo.

use nagano_lint::{lint_source, Diagnostic};

/// Lint a fixture as if it lived in a serving hot-path crate (all
/// rules in scope).
fn lint_hot(source: &str) -> Vec<Diagnostic> {
    lint_source("crates/httpd/src/fixture.rs", source)
}

fn rules_of(diags: &[Diagnostic]) -> Vec<&str> {
    diags.iter().map(|d| d.rule).collect()
}

#[test]
fn d001_fires_on_wall_clock() {
    let diags = lint_hot(include_str!("fixtures/d001.rs"));
    assert_eq!(rules_of(&diags), vec!["D001", "D001"]);
    assert_eq!(diags[0].line, 5, "Instant::now call site");
    assert_eq!(diags[1].line, 6, "SystemTime::now call site");
    assert!(diags[0].message.contains("Instant::now"));
    assert!(diags[0].suggestion.contains("simcore clock"));
}

#[test]
fn d002_fires_on_entropy() {
    let diags = lint_hot(include_str!("fixtures/d002.rs"));
    assert_eq!(rules_of(&diags), vec!["D002", "D002"]);
    assert!(diags[0].message.contains("thread_rng"));
    assert!(diags[1].message.contains("rand"));
}

#[test]
fn d003_fires_on_std_hash_collections() {
    let diags = lint_hot(include_str!("fixtures/d003.rs"));
    assert_eq!(rules_of(&diags), vec!["D003", "D003"]);
    assert!(diags[0].message.contains("HashMap"));
    assert!(diags[1].message.contains("HashSet"));
    // Only the `use` line is flagged, not every local mention.
    assert_eq!(diags[0].line, 2);
    assert_eq!(diags[1].line, 2);
}

#[test]
fn r001_fires_on_unwrap_and_expect_only() {
    let diags = lint_hot(include_str!("fixtures/r001.rs"));
    assert_eq!(rules_of(&diags), vec!["R001", "R001"]);
    assert!(diags[0].message.contains("unwrap"));
    assert!(diags[1].message.contains("expect"));
    // `unwrap_or` and tuple-index chains in the same fixture stay clean.
}

#[test]
fn r002_fires_on_unbounded_channels_only() {
    let diags = lint_hot(include_str!("fixtures/r002.rs"));
    assert_eq!(rules_of(&diags), vec!["R002", "R002"]);
    assert_eq!(diags[0].line, 2, "use-group import");
    assert_eq!(diags[1].line, 5, "qualified call");
    assert!(diags[0].message.contains("unbounded"));
    assert!(diags[0].suggestion.contains("bounded channel"));
    // `bounded(64)`, `CacheConfig::unbounded()` and the bare
    // `unbounded_growth_estimate()` in the same fixture stay clean.
}

#[test]
fn r003_fires_on_bare_retry_loops_and_unjittered_sleeps() {
    let diags = lint_hot(include_str!("fixtures/r003.rs"));
    assert_eq!(rules_of(&diags), vec!["R003", "R003"]);
    assert_eq!(diags[0].line, 7, "bare retry loop");
    assert_eq!(diags[1].line, 12, "fixed-interval sleep");
    assert!(diags[0].message.contains("retry loop"));
    assert!(diags[1].message.contains("sleep"));
    assert!(diags[0].suggestion.contains("RetryBackoff"));
    // The bounded, backoff-driven loop in the same fixture stays clean.
}

#[test]
fn t001_fires_on_nonconforming_metric_names() {
    let diags = lint_hot(include_str!("fixtures/t001.rs"));
    assert_eq!(rules_of(&diags), vec!["T001", "T001"]);
    assert!(diags[0].message.contains("cache_hits_total"));
    assert!(diags[1].message.contains("nagano_bogus_value"));
    assert!(diags[0].suggestion.contains("nagano_<subsystem>_<metric>"));
}

#[test]
fn t002_fires_on_nonconforming_span_names() {
    let diags = lint_hot(include_str!("fixtures/t002.rs"));
    assert_eq!(rules_of(&diags), vec!["T002", "T002", "T002"]);
    assert!(diags[0].message.contains("txn_receipt"), "missing prefix");
    assert!(
        diags[1].message.contains("nagano_bogus_hop"),
        "unknown subsystem, found through add_child's parent argument"
    );
    assert!(diags[2].message.contains("Nagano_Cache_Apply"), "uppercase");
    assert!(diags[0].suggestion.contains("nagano_<subsystem>_<name>"));
    // Conforming names and dynamically-built names stay clean.
}

#[test]
fn t002_metric_docs_check_against_design_table() {
    use nagano_lint::lint_metric_docs;
    let src = r#"
pub fn bind(reg: &Registry) {
    reg.counter("nagano_cache_hits_total", &[]);
    reg.gauge("nagano_trigger_regen_deferred_depth", &[]);
    reg.histogram("bogus_name", &[], 1e-3, 10.0); // T001's problem, not ours
}
"#;
    let design = "| `nagano_cache_hits_total` | counter | cache hits |";
    let diags = lint_metric_docs("crates/cache/src/f.rs", src, design);
    assert_eq!(rules_of(&diags), vec!["T002"]);
    assert!(diags[0]
        .message
        .contains("nagano_trigger_regen_deferred_depth"));
    assert!(diags[0].suggestion.contains("DESIGN.md"));
    // Backtick quoting is required: a bare substring match would let
    // `nagano_cache_hits` ride on `nagano_cache_hits_total`'s row.
    let partial = "| `nagano_cache_hits_totals` | counter | not the same metric |";
    assert_eq!(
        lint_metric_docs("crates/cache/src/f.rs", src, partial).len(),
        2
    );
    // An allowlist annotation suppresses the finding.
    let annotated = "// nagano-lint: allow(T002) — experimental metric\n\
                     pub fn f(reg: &Registry) { reg.counter(\"nagano_cache_tmp_total\", &[]); }";
    assert!(lint_metric_docs("crates/cache/src/f.rs", annotated, "").is_empty());
}

#[test]
fn allow_annotation_suppresses_the_rule() {
    let diags = lint_hot(include_str!("fixtures/allow.rs"));
    assert!(
        diags.is_empty(),
        "annotated fixture should be clean, got {diags:?}"
    );
}

#[test]
fn malformed_allow_is_reported_and_does_not_suppress() {
    let diags = lint_hot(include_str!("fixtures/allow_malformed.rs"));
    assert_eq!(rules_of(&diags), vec!["A000", "D001"]);
    assert!(diags[0].message.contains("reason"));
}

#[test]
fn test_code_is_exempt() {
    let diags = lint_hot(include_str!("fixtures/cfg_test.rs"));
    assert!(diags.is_empty(), "cfg(test) code is exempt, got {diags:?}");
}

#[test]
fn the_workspace_itself_is_clean() {
    // The gate the CI job enforces, exercised from the test suite too:
    // the repo this crate lives in must lint clean.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = nagano_lint::lint_workspace(&root).expect("scan workspace");
    assert!(
        report.files_scanned > 50,
        "scanned {}",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "workspace has lint violations:\n{:#?}",
        report.diagnostics
    );
}
