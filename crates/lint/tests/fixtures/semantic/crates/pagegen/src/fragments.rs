// Fixture: fragment arms. `ScheduleRow` cleanly registers the event
// edge its result read needs — and thereby covers the `event` reads of
// every page arm that depends on the fragment (render.rs).

impl Renderer {
    fn compose_fragment(&self, f: FragmentKey, html: &mut String, deps: &mut Vec<Dependency>) {
        match f {
            FragmentKey::ScheduleRow(e) => {
                deps.push(Dependency::new(nagano_db::EventId(e.0).data_key()));
                for r in self.db.results_for_event(e) {
                    let _ = writeln!(html, "<tr><td>{}</td></tr>", r.rank);
                }
            }
        }
    }
}
