// Fixture: pagegen renderer with ODG defects — `Standings` registers a
// medals edge it never reads (O002), `Roster` reads country data with
// no covering edge (O001). `ScheduleRow` coverage comes from
// fragments.rs in this fixture workspace.

impl Renderer {
    fn render_page(&self, key: PageKey, html: &mut String, deps: &mut Vec<Dependency>) -> String {
        match key {
            PageKey::Standings(day) => {
                deps.push(Dependency::new(nagano_db::schema::today_data_key(day)));
                // Dead edge: nothing below reads the medal standings.
                deps.push(Dependency::weighted(
                    nagano_db::schema::medals_data_key(),
                    0.25,
                ));
                for event in self.db.events_on_day(day) {
                    deps.push(Dependency::new(
                        PageKey::Fragment(FragmentKey::ScheduleRow(event.id)).object_key(),
                    ));
                    deps.push(Dependency::weighted(event.id.data_key(), 1.0));
                    self.inline_fragment(
                        FragmentKey::ScheduleRow(event.id),
                        html,
                        slots.as_deref_mut(),
                    );
                }
                format!("Standings day {day}")
            }
            PageKey::Roster(c) => {
                // Uncovered read: a roster change never invalidates this page.
                for a in self.db.athletes_of_country(c) {
                    let _ = writeln!(html, "<div>{}</div>", a.name);
                }
                "Roster".to_string()
            }
        }
    }
}
