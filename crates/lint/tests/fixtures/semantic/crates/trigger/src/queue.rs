// Fixture: trigger-side update queue. Seeds half of a lock-order
// inversion (L001, completed by crates/trigger/src/ledger.rs) and one
// guard-held-across-recv (L002). Lexed by the linter, never compiled.

pub struct UpdateQueue {
    inbox: Mutex<Vec<Update>>,
    rx: Receiver<Update>,
}

impl UpdateQueue {
    /// Takes `inbox`, then (inside `stamp_ledger`) `ledger` — the
    /// opposite order from `Ledger::settle`.
    pub fn enqueue(&self, u: Update) {
        let mut q = self.inbox.lock();
        q.push(u);
        self.stamp_ledger(q.len());
    }

    /// Locks `inbox`; called by `Ledger::settle` while `ledger` is held.
    pub fn note_inbox_depth(&self) -> usize {
        self.inbox.lock().len()
    }

    /// Holds the `inbox` guard across a blocking channel receive: a
    /// slow producer stalls every other path that needs the inbox.
    pub fn drain_one(&self) {
        let mut q = self.inbox.lock();
        if let Ok(u) = self.rx.recv() {
            q.push(u);
        }
    }
}
