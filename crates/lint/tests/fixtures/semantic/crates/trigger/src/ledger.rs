// Fixture: settlement ledger. `settle` takes `ledger`, then (inside
// `note_inbox_depth`) `inbox` — closing the L001 cycle opened by
// `UpdateQueue::enqueue` in crates/trigger/src/queue.rs.

pub struct Ledger {
    ledger: Mutex<Vec<Entry>>,
}

impl Ledger {
    /// Locks `ledger`; called by `UpdateQueue::enqueue` while `inbox`
    /// is held.
    pub fn stamp_ledger(&self, depth: usize) {
        let mut entries = self.ledger.lock();
        entries.push(Entry::depth_marker(depth));
    }

    /// Takes `ledger` then `inbox` — the inversion.
    pub fn settle(&self) -> usize {
        let entries = self.ledger.lock();
        let pending = self.note_inbox_depth();
        entries.len() + pending
    }
}
