// Fixture: T001 — metric names off the nagano_<subsystem>_<metric> convention.
pub fn bind(reg: &Registry, g: &Gauge) {
    reg.counter("cache_hits_total", &[]).incr(); // missing prefix
    reg.bind_gauge("nagano_bogus_value", &[], g); // unknown subsystem
    reg.histogram("nagano_cache_fill_seconds", &[], 1e-3, 10.0); // conforming
}
