// Fixture: D003-clean — ordered collections keep iteration
// deterministic.
use std::collections::{BTreeMap, BTreeSet};

pub fn index(keys: &[String]) -> (BTreeMap<String, usize>, BTreeSet<String>) {
    let map: BTreeMap<String, usize> = keys.iter().cloned().zip(0..).collect();
    let set: BTreeSet<String> = keys.iter().cloned().collect();
    (map, set)
}
