// Fixture: A000 — an annotation without a reason is malformed (and
// would not suppress anything). Nothing else in this file fires.

pub fn quiet(xs: &[u64]) -> usize {
    // nagano-lint: allow(R001)
    xs.len()
}
