// Fixture: R003-clean — bounded attempts with seeded, jittered backoff.
use std::thread::sleep;
use std::time::Duration;

pub fn fetch(rng: &mut DeterministicRng) {
    let mut backoff = RetryBackoff::new(0.05, 0.4, 3);
    loop {
        if try_once() {
            break;
        }
        let Some(delay) = backoff.next_delay(rng) else {
            break;
        };
        sleep(Duration::from_secs_f64(delay));
    }
}

// A sleep outside any `loop` body is not the rule's business.
pub fn settle() {
    sleep(Duration::from_millis(5));
}

// `while` loops carry their bound in the condition.
pub fn drain(mut budget: u32) {
    while budget > 0 {
        budget -= 1;
    }
}
