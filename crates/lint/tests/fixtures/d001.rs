// Fixture: D001 — wall-clock reads in deterministic code.
use std::time::{Instant, SystemTime};

pub fn measure() -> u64 {
    let start = Instant::now();
    let _ = SystemTime::now();
    start.elapsed().as_micros() as u64
}
