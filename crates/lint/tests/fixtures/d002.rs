// Fixture: D002 — OS entropy instead of the seeded simcore RNG.
pub fn roll() -> u32 {
    let mut rng = rand::thread_rng();
    rng.gen_range(0..6)
}

pub fn roll_again() -> u32 {
    let mut rng = rand::rng();
    rng.random_range(0..6)
}
