// Fixture: D001-clean — time comes from the simulation clock, never
// the host.

pub fn measure(clock: &SimClock) -> u64 {
    let start = clock.elapsed_micros();
    clock.elapsed_micros() - start
}
