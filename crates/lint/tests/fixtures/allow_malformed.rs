// Fixture: a reason-less annotation is malformed (A000) and does NOT
// suppress the rule it names.
use std::time::Instant;

pub fn profile() -> u64 {
    // nagano-lint: allow(D001)
    let start = Instant::now();
    start.elapsed().as_micros() as u64
}
