// Fixture: R003 — bare retry loops and unjittered sleeps.
use std::thread::sleep;
use std::time::Duration;

pub fn fetch_forever() {
    let mut retry_count = 0u32;
    loop {
        if try_once() {
            break;
        }
        retry_count += 1;
        sleep(Duration::from_millis(50));
    }
}

// Not violations: the attempt bound and the seeded backoff delay make
// the loop finite and jittered.
pub fn fetch_bounded(rng: &mut DeterministicRng) {
    let mut backoff = RetryBackoff::new(0.05, 0.4, 3);
    loop {
        if !try_once() {
            break;
        }
        let Some(delay) = backoff.next_delay(rng) else {
            break;
        };
        sleep(Duration::from_secs_f64(delay));
    }
}
