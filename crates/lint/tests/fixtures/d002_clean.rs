// Fixture: D002-clean — randomness comes from the seeded simcore RNG.

pub fn jitter(rng: &mut SimRng, spread: u64) -> u64 {
    rng.next_u64() % spread
}
