// Fixture: R001-clean — the hot path degrades instead of panicking.

pub fn serve(page: Option<&'static str>) -> &'static str {
    page.unwrap_or("<h1>503 — regenerating</h1>")
}

pub fn serve_with(page: Option<String>) -> String {
    page.unwrap_or_else(|| "fallback".to_string())
}
