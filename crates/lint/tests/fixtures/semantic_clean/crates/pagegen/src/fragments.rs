// Fixture: identical to fixtures/semantic — the fragment arm was
// already clean; it exists so the mirror workspace still exercises the
// fragment-coverage path of the audit.

impl Renderer {
    fn compose_fragment(&self, f: FragmentKey, html: &mut String, deps: &mut Vec<Dependency>) {
        match f {
            FragmentKey::ScheduleRow(e) => {
                deps.push(Dependency::new(nagano_db::EventId(e.0).data_key()));
                for r in self.db.results_for_event(e) {
                    let _ = writeln!(html, "<tr><td>{}</td></tr>", r.rank);
                }
            }
        }
    }
}
