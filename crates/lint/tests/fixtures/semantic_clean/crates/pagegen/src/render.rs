// Fixture: the renderer from fixtures/semantic with both ODG defects
// fixed — `Standings` actually renders the medal box its edge tracks,
// and `Roster` registers the country edge its read needs.

impl Renderer {
    fn render_page(&self, key: PageKey, html: &mut String, deps: &mut Vec<Dependency>) -> String {
        match key {
            PageKey::Standings(day) => {
                deps.push(Dependency::new(nagano_db::schema::today_data_key(day)));
                deps.push(Dependency::weighted(
                    nagano_db::schema::medals_data_key(),
                    0.25,
                ));
                for (c, m) in self.db.medal_standings().iter().take(3) {
                    let _ = writeln!(html, "<span>{} {}</span>", c, m.gold);
                }
                for event in self.db.events_on_day(day) {
                    deps.push(Dependency::new(
                        PageKey::Fragment(FragmentKey::ScheduleRow(event.id)).object_key(),
                    ));
                    deps.push(Dependency::weighted(event.id.data_key(), 1.0));
                    self.inline_fragment(
                        FragmentKey::ScheduleRow(event.id),
                        html,
                        slots.as_deref_mut(),
                    );
                }
                format!("Standings day {day}")
            }
            PageKey::Roster(c) => {
                deps.push(Dependency::new(nagano_db::CountryId(c.0).data_key()));
                for a in self.db.athletes_of_country(c) {
                    let _ = writeln!(html, "<div>{}</div>", a.name);
                }
                "Roster".to_string()
            }
        }
    }
}
