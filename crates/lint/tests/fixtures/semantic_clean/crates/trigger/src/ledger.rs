// Fixture: the ledger from fixtures/semantic with the inversion fixed —
// `settle` reads the inbox depth *before* taking `ledger`, so every
// path agrees on the inbox-then-ledger order.

pub struct Ledger {
    ledger: Mutex<Vec<Entry>>,
}

impl Ledger {
    /// Locks `ledger`; callers hold nothing (see `UpdateQueue::enqueue`).
    pub fn stamp_ledger(&self, depth: usize) {
        let mut entries = self.ledger.lock();
        entries.push(Entry::depth_marker(depth));
    }

    /// Inbox depth first, ledger second — no inversion.
    pub fn settle(&self) -> usize {
        let pending = self.note_inbox_depth();
        let entries = self.ledger.lock();
        entries.len() + pending
    }
}
