// Fixture: the queue from fixtures/semantic with both defects fixed —
// the inbox guard is dropped before crossing into the ledger (L001)
// and before the blocking receive (L002).

pub struct UpdateQueue {
    inbox: Mutex<Vec<Update>>,
    rx: Receiver<Update>,
}

impl UpdateQueue {
    /// The inbox guard dies with the block; `ledger` is taken with
    /// nothing held.
    pub fn enqueue(&self, u: Update) {
        let depth = {
            let mut q = self.inbox.lock();
            q.push(u);
            q.len()
        };
        self.stamp_ledger(depth);
    }

    /// Locks `inbox`; safe to call from `Ledger::settle` now that
    /// `settle` reads the depth before taking `ledger`.
    pub fn note_inbox_depth(&self) -> usize {
        self.inbox.lock().len()
    }

    /// Receive first, lock after: the blocking wait holds nothing.
    pub fn drain_one(&self) {
        if let Ok(u) = self.rx.recv() {
            self.inbox.lock().push(u);
        }
    }
}
