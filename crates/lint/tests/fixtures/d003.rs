// Fixture: D003 — randomized-iteration-order std collections.
use std::collections::{HashMap, HashSet};

pub fn build() -> (HashMap<String, u64>, HashSet<u64>) {
    (HashMap::new(), HashSet::new())
}
