// Fixture: a well-formed annotation — rule id plus a reason after the
// em-dash — is not A000.

pub fn profile() -> u64 {
    // nagano-lint: allow(D001) — host-time profiling is the point of this fixture
    let start = Instant::now();
    start.elapsed().as_micros() as u64
}
