// Fixture: R002-clean — bounded channels give backpressure a floor.
use crossbeam::channel::bounded;

pub fn fan_in() {
    let (_tx, _rx) = bounded::<u64>(64);
    let (_tx2, _rx2) = crossbeam::channel::bounded::<u64>(128);
}
