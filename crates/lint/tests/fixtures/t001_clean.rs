// Fixture: T001-clean — every metric name follows
// nagano_<subsystem>_<metric>.

pub fn bind(reg: &Registry, g: &Gauge) {
    reg.counter("nagano_cache_hits_total", &[]).incr();
    reg.bind_gauge("nagano_trigger_queue_depth", &[], g);
    reg.histogram("nagano_httpd_serve_seconds", &[], 1e-3, 10.0);
}
