// Fixture: a well-formed allowlist annotation suppresses the rule.
use std::time::Instant;

pub fn profile() -> u64 {
    // nagano-lint: allow(D001) — host-time profiling is the point of this fixture
    let start = Instant::now();
    let same_line = Instant::now(); // nagano-lint: allow(D001) — trailing form
    let _ = same_line;
    start.elapsed().as_micros() as u64
}
