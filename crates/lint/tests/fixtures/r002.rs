// Fixture: R002 — unbounded queues in serving/propagation code.
use crossbeam::channel::{bounded, unbounded};

pub fn fan_in() {
    let (_tx, _rx) = crossbeam::channel::unbounded::<u64>();
}

// Not violations: bounded channels and unrelated `unbounded` names.
pub fn fine() {
    let (_tx, _rx) = bounded::<u64>(64);
    let _cfg = CacheConfig::unbounded();
    let _n = unbounded_growth_estimate();
}
