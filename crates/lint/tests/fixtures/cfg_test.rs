// Fixture: test-only code is exempt from every rule.
pub fn shipped() -> u8 {
    7
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::time::Instant;

    #[test]
    fn wall_clock_and_unwrap_are_fine_here() {
        let t = Instant::now();
        let mut m = HashMap::new();
        m.insert("k", super::shipped());
        assert_eq!(m.get("k").copied().unwrap(), 7);
        assert!(t.elapsed().as_secs() < 60);
    }
}
