// Fixture: R001 — panics in the serving hot path.
pub fn serve(page: Option<&str>) -> &str {
    let body = page.unwrap();
    body
}

pub fn serve_with_message(page: Option<&str>) -> &str {
    page.expect("page must be cached")
}

// Not violations: fallible combinators and tuple-index chains.
pub fn graceful(page: Option<&'static str>, pair: (Option<u8>, u8)) -> (&'static str, u8) {
    (page.unwrap_or("fallback"), pair.0.unwrap_or(pair.1))
}
