// Fixture: T002 — trace span names off the nagano_<subsystem>_<name> convention.
pub fn trace_update(trace: &mut Trace, at: SimTime) {
    let root = trace.add_span("txn_receipt", "t1", at, at); // missing prefix
    trace.add_child(root, "nagano_bogus_hop", "", at, at); // unknown subsystem
    trace.add_child(idx(root + 1), "nagano_cluster_distribute", "edge", at, at); // conforming
    trace.span("nagano_cache_apply", at, at); // conforming
    trace.span_with("Nagano_Cache_Apply", "detail", at, at); // uppercase
    let dynamic = format!("nagano_cache_{suffix}");
    trace.add_span(&dynamic, "", at, at); // dynamic — out of static reach
}
