// Fixture: T002-clean — every span name follows
// nagano_<subsystem>_<name>.

pub fn trace_update(trace: &mut Trace, at: SimTime) {
    let root = trace.add_span("nagano_trigger_receipt", "t1", at, at);
    trace.add_child(root, "nagano_cluster_distribute", "edge", at, at);
    trace.span("nagano_cache_apply", at, at);
}
