//! Cross-file semantic rules, driven end-to-end through
//! [`lint_workspace`] over the two committed fixture workspaces:
//! `fixtures/semantic/` seeds one defect per semantic rule, and
//! `fixtures/semantic_clean/` is the same code with the defects fixed.
//! The fixtures are lexed by the linter, never compiled by cargo.

use std::path::PathBuf;

use nagano_lint::{lint_workspace, render_sarif, Baseline};

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn seeded_defects_fire_at_their_exact_sites() {
    let report = lint_workspace(&fixture_root("semantic")).expect("scan fixture workspace");
    let got: Vec<(&str, &str, u32)> = report
        .diagnostics
        .iter()
        .map(|d| (d.rule, d.file.as_str(), d.line))
        .collect();
    assert_eq!(
        got,
        vec![
            ("O002", "crates/pagegen/src/render.rs", 12),
            ("O001", "crates/pagegen/src/render.rs", 31),
            ("L001", "crates/trigger/src/ledger.rs", 19),
            ("L002", "crates/trigger/src/queue.rs", 28),
        ],
        "full report: {:#?}",
        report.diagnostics
    );
}

#[test]
fn l001_reports_both_acquisition_chains() {
    let report = lint_workspace(&fixture_root("semantic")).expect("scan fixture workspace");
    let l001 = report
        .diagnostics
        .iter()
        .find(|d| d.rule == "L001")
        .expect("L001 fires");
    // The message must name both locks and both hold-then-take chains,
    // including the call edge the cycle crosses.
    assert!(l001.message.contains("ledger.rs::ledger"), "{l001:?}");
    assert!(l001.message.contains("queue.rs::inbox"), "{l001:?}");
    assert!(
        l001.message.contains("note_inbox_depth (call at line 20)"),
        "{l001:?}"
    );
    assert!(
        l001.message.contains("stamp_ledger (call at line 16)"),
        "{l001:?}"
    );
}

#[test]
fn l002_names_the_blocking_call_and_the_held_guard() {
    let report = lint_workspace(&fixture_root("semantic")).expect("scan fixture workspace");
    let l002 = report
        .diagnostics
        .iter()
        .find(|d| d.rule == "L002")
        .expect("L002 fires");
    assert!(l002.message.contains("`.recv()`"), "{l002:?}");
    assert!(l002.message.contains("drain_one"), "{l002:?}");
    assert!(l002.message.contains("queue.rs::inbox"), "{l002:?}");
}

#[test]
fn the_fixed_mirror_workspace_is_clean() {
    let report = lint_workspace(&fixture_root("semantic_clean")).expect("scan mirror workspace");
    assert!(
        report.is_clean(),
        "semantic_clean should be defect-free:\n{:#?}",
        report.diagnostics
    );
    assert_eq!(report.files_scanned, 4);
}

#[test]
fn a_baseline_written_from_the_report_suppresses_exactly_it() {
    let report = lint_workspace(&fixture_root("semantic")).expect("scan fixture workspace");
    let baseline = Baseline::from_report(&report.diagnostics);

    // Round-trips through the text format.
    let reparsed = Baseline::parse(&baseline.render()).expect("canonical render parses");
    let outcome = reparsed.apply(report.diagnostics.clone());
    assert!(outcome.remaining.is_empty(), "{:#?}", outcome.remaining);
    assert_eq!(outcome.suppressed, report.diagnostics.len());
    assert!(outcome.slack.is_empty());

    // The ratchet only goes one way: an empty baseline suppresses
    // nothing.
    let empty = Baseline::parse("# nothing budgeted\n").expect("empty baseline parses");
    assert_eq!(
        empty.apply(report.diagnostics.clone()).remaining.len(),
        report.diagnostics.len()
    );
}

#[test]
fn sarif_export_carries_the_semantic_findings() {
    let report = lint_workspace(&fixture_root("semantic")).expect("scan fixture workspace");
    let sarif = render_sarif(&report.diagnostics, report.files_scanned);
    for rule in ["L001", "L002", "O001", "O002"] {
        assert!(
            sarif.contains(&format!("\"ruleId\":\"{rule}\"")),
            "missing result for {rule}"
        );
    }
    assert!(sarif.contains("\"uri\":\"crates/trigger/src/queue.rs\""));
    assert!(sarif.contains("\"startLine\":28"));
}
