//! Property tests for the page layer: URL round-trips, parser totality,
//! renderer determinism, and dependency-derivation invariants.

use proptest::prelude::*;
use std::sync::Arc;

use nagano_db::{
    seed_games, AthleteId, CountryId, EventId, GamesConfig, NewsId, OlympicDb, SportId,
};
use nagano_pagegen::{FragmentKey, PageKey, Renderer};

fn arbitrary_key() -> impl Strategy<Value = PageKey> {
    prop_oneof![
        (1..=16u32).prop_map(PageKey::Home),
        Just(PageKey::Welcome),
        (0..100_000u32).prop_map(|n| PageKey::News(NewsId(n))),
        (1..=16u32).prop_map(PageKey::NewsIndex),
        (0..1_000u32).prop_map(|n| PageKey::Venue(SportId(n))),
        (0..1_000u32).prop_map(|n| PageKey::Sport(SportId(n))),
        (0..10_000u32).prop_map(|n| PageKey::Event(EventId(n))),
        (0..1_000u32).prop_map(|n| PageKey::Country(CountryId(n))),
        (0..100_000u32).prop_map(|n| PageKey::Athlete(AthleteId(n))),
        Just(PageKey::Medals),
        Just(PageKey::Nagano),
        Just(PageKey::Fun),
        (0..10_000u32).prop_map(|n| PageKey::Fragment(FragmentKey::ResultTable(EventId(n)))),
        Just(PageKey::Fragment(FragmentKey::MedalTable)),
        (1..=16u32).prop_map(|d| PageKey::Fragment(FragmentKey::Headlines(d))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every key round-trips through its URL.
    #[test]
    fn url_roundtrip(key in arbitrary_key()) {
        let url = key.to_url();
        prop_assert_eq!(PageKey::parse(&url), Some(key), "url {}", url);
        // Object keys are prefixed URLs.
        prop_assert_eq!(key.object_key(), format!("page:{url}"));
    }

    /// The URL parser never panics on arbitrary strings.
    #[test]
    fn parser_is_total(path in "\\PC{0,60}") {
        let _ = PageKey::parse(&path);
    }

    /// Parsing any "/a/b/c"-shaped path never panics and, when it
    /// succeeds, re-serialises to an equivalent key.
    #[test]
    fn slashy_paths_parse_consistently(segments in proptest::collection::vec("[a-z0-9]{1,10}", 0..5)) {
        let path = format!("/{}", segments.join("/"));
        if let Some(key) = PageKey::parse(&path) {
            prop_assert_eq!(PageKey::parse(&key.to_url()), Some(key));
        }
    }
}

proptest! {
    // Rendering is heavier; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Rendering is deterministic and its dependency lists are sane:
    /// dynamic pages depend on something, static pages on nothing, and
    /// every dependency weight is positive and finite.
    #[test]
    fn render_invariants(selector in proptest::collection::vec(0..15usize, 1..8)) {
        let db = Arc::new(OlympicDb::new());
        seed_games(&db, &GamesConfig::small());
        let renderer = Renderer::new(Arc::clone(&db));
        let keys: Vec<PageKey> = vec![
            PageKey::Home(2),
            PageKey::Home(14),
            PageKey::Welcome,
            PageKey::NewsIndex(3),
            PageKey::Venue(SportId(1)),
            PageKey::Sport(SportId(1)),
            PageKey::Event(EventId(1)),
            PageKey::Event(EventId(2)),
            PageKey::Country(CountryId(1)),
            PageKey::Athlete(AthleteId(1)),
            PageKey::Medals,
            PageKey::Nagano,
            PageKey::Fun,
            PageKey::Fragment(FragmentKey::ResultTable(EventId(1))),
            PageKey::Fragment(FragmentKey::MedalTable),
        ];
        for &i in &selector {
            let key = keys[i];
            let a = renderer.render(key);
            let b = renderer.render(key);
            prop_assert_eq!(&a.body, &b.body, "nondeterministic body for {}", key);
            prop_assert_eq!(&a.deps, &b.deps);
            if key.is_dynamic() {
                prop_assert!(!a.deps.is_empty(), "{} has no dependencies", key);
            } else {
                prop_assert!(a.deps.is_empty(), "static {} has dependencies", key);
            }
            for dep in &a.deps {
                prop_assert!(dep.weight.is_finite() && dep.weight > 0.0);
                prop_assert!(
                    dep.data_key.starts_with("data:") || dep.data_key.starts_with("page:"),
                    "bad dep namespace {}",
                    dep.data_key
                );
            }
            prop_assert!(a.cost_ms > 0.0);
            prop_assert!(!a.body.is_empty());
        }
    }
}
