//! The page generation cost model.
//!
//! §2: "A static page typically requires 2 to 10 milliseconds of CPU time
//! to generate. By contrast, a dynamic page can consume several orders of
//! magnitude more CPU time" (the paper's reference \[8\]). Costs here are
//! *modelled* CPU milliseconds used by the simulation and by GreedyDual-
//! Size; when a benchmark needs to burn real CPU (the server-throughput
//! experiment) it calls [`spin_for`] with a scale factor.

use std::hint::black_box;
use std::time::{Duration, Instant};

use crate::key::{FragmentKey, PageKey};

/// Deterministic per-page CPU cost model (milliseconds).
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Multiplier applied to every dynamic cost (1.0 = paper-calibrated).
    pub dynamic_scale: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel { dynamic_scale: 1.0 }
    }
}

impl CostModel {
    /// Paper-calibrated model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Static page cost: deterministically jittered in the paper's
    /// 2–10 ms band, keyed by the page identity.
    pub fn static_cost_ms(&self, key: PageKey) -> f64 {
        // Cheap deterministic hash → [0, 1).
        let h = fxhash_key(&key.to_url());
        2.0 + 8.0 * (h % 1024) as f64 / 1024.0
    }

    /// Generation cost of a page in modelled CPU milliseconds.
    ///
    /// Composed pages (home) are the most expensive; fragments the
    /// cheapest dynamic objects. All dynamic costs are 10–100× the static
    /// band, matching the "orders of magnitude" claim.
    pub fn cost_ms(&self, key: PageKey) -> f64 {
        if !key.is_dynamic() {
            return self.static_cost_ms(key);
        }
        let base = match key {
            PageKey::Home(_) => 400.0,
            PageKey::Medals => 150.0,
            PageKey::Sport(_) => 200.0,
            PageKey::Event(_) => 150.0,
            PageKey::Country(_) => 180.0,
            PageKey::Athlete(_) => 120.0,
            PageKey::News(_) => 80.0,
            PageKey::NewsIndex(_) => 120.0,
            PageKey::Fragment(FragmentKey::ResultTable(_)) => 60.0,
            PageKey::Fragment(FragmentKey::MedalTable) => 70.0,
            PageKey::Fragment(FragmentKey::Headlines(_)) => 50.0,
            // Static variants handled above.
            PageKey::Welcome | PageKey::Nagano | PageKey::Fun | PageKey::Venue(_) => {
                unreachable!("static pages handled above")
            }
        };
        // ±20% deterministic jitter so pages of one family differ.
        let h = fxhash_key(&key.to_url());
        let jitter = 0.8 + 0.4 * (h % 4096) as f64 / 4096.0;
        base * jitter * self.dynamic_scale
    }

    /// Cost of rendering only a composed page's *skeleton* (the markup
    /// outside its fragment slots). Fragment bodies dominate composed-page
    /// generation — the result tables, medal box, and headline queries are
    /// the expensive database work — so the skeleton is modelled at 40% of
    /// the whole-page cost. Only meaningful for pages with slots; slotless
    /// pages have no skeleton/fragment split.
    pub fn skeleton_cost_ms(&self, key: PageKey) -> f64 {
        0.4 * self.cost_ms(key)
    }

    /// Cost of splicing `slots` cached fragment bodies into a skeleton: a
    /// fixed dispatch overhead plus a per-slot buffer hand-off. Orders of
    /// magnitude below regeneration — this is what makes recomposition
    /// "cheap" in the fragment-granularity propagation story.
    pub fn compose_cost_ms(&self, slots: usize) -> f64 {
        1.0 + 0.25 * slots as f64
    }

    /// Cost of serving a page straight from the cache (a hash lookup plus
    /// a buffer hand-off — the paper serves cached dynamic pages "at
    /// roughly the same rates as static pages").
    pub fn cache_hit_cost_ms(&self) -> f64 {
        0.5
    }
}

fn fxhash_key(s: &str) -> u64 {
    // FxHash-style multiply-xor fold; deterministic across runs.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in s.as_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Burn approximately `ms * scale` milliseconds of real CPU. Used by the
/// throughput benches to make "expensive dynamic generation" physically
/// real without sleeping (sleep would free the core and overstate
/// capacity).
pub fn spin_for(ms: f64, scale: f64) -> u64 {
    let budget = Duration::from_secs_f64((ms * scale / 1_000.0).max(0.0));
    // nagano-lint: allow(D001) — burning real CPU is this function's purpose; only benches call it
    let start = Instant::now();
    let mut acc: u64 = 0;
    while start.elapsed() < budget {
        for i in 0..512u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        black_box(acc);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use nagano_db::{AthleteId, EventId, SportId};

    #[test]
    fn static_costs_in_paper_band() {
        let m = CostModel::new();
        for key in [
            PageKey::Welcome,
            PageKey::Nagano,
            PageKey::Fun,
            PageKey::Venue(SportId(3)),
        ] {
            let c = m.cost_ms(key);
            assert!((2.0..10.0).contains(&c), "static cost {c}");
        }
    }

    #[test]
    fn dynamic_costs_are_orders_of_magnitude_higher() {
        let m = CostModel::new();
        let static_max = 10.0;
        for key in [
            PageKey::Home(3),
            PageKey::Event(EventId(5)),
            PageKey::Athlete(AthleteId(9)),
            PageKey::Medals,
        ] {
            let c = m.cost_ms(key);
            assert!(c >= static_max * 4.0, "dynamic cost {c} for {key}");
        }
        // Home is the most expensive family.
        assert!(m.cost_ms(PageKey::Home(3)) > m.cost_ms(PageKey::Athlete(AthleteId(9))));
    }

    #[test]
    fn costs_are_deterministic() {
        let m = CostModel::new();
        assert_eq!(m.cost_ms(PageKey::Home(7)), m.cost_ms(PageKey::Home(7)));
        // Different pages of one family differ (jitter).
        assert_ne!(m.cost_ms(PageKey::Home(7)), m.cost_ms(PageKey::Home(8)));
    }

    #[test]
    fn scale_multiplies_dynamic_only() {
        let base = CostModel::new();
        let scaled = CostModel { dynamic_scale: 2.0 };
        let k = PageKey::Event(EventId(1));
        assert!((scaled.cost_ms(k) / base.cost_ms(k) - 2.0).abs() < 1e-12);
        assert_eq!(
            scaled.cost_ms(PageKey::Welcome),
            base.cost_ms(PageKey::Welcome)
        );
    }

    #[test]
    fn cache_hit_is_static_class_or_cheaper() {
        let m = CostModel::new();
        assert!(m.cache_hit_cost_ms() <= 2.0);
    }

    #[test]
    fn skeleton_and_compose_undercut_whole_page_regeneration() {
        let m = CostModel::new();
        let k = PageKey::Home(8);
        let whole = m.cost_ms(k);
        assert!(m.skeleton_cost_ms(k) < whole * 0.5);
        // Recomposing even a fragment-heavy page is static-class work.
        assert!(m.compose_cost_ms(12) < 10.0);
        assert!(m.compose_cost_ms(0) < m.compose_cost_ms(12));
    }

    #[test]
    fn spin_for_burns_roughly_the_budget() {
        let start = std::time::Instant::now();
        spin_for(20.0, 1.0);
        let elapsed = start.elapsed().as_secs_f64() * 1_000.0;
        assert!(elapsed >= 18.0, "elapsed {elapsed}ms");
        // Zero budget returns promptly.
        let start = std::time::Instant::now();
        spin_for(0.0, 1.0);
        assert!(start.elapsed().as_millis() < 50);
    }
}
