//! Composition plans: a page as static skeleton + fragment slots.
//!
//! [`crate::Renderer::plan`] runs the same `compose` pass as a full
//! render, but every `inline_fragment` call records a *slot* (a byte
//! offset and a [`FragmentKey`]) instead of rendering the fragment
//! inline. The result is a [`CompositionPlan`]: the skeleton split into
//! immutable segments around the slots, the page head, the dependency
//! list, and the cost split between skeleton rendering and composition.
//!
//! Composing a plan — splicing cached fragment bodies into the slots and
//! applying the legacy padding rule — is **byte-identical to the whole-
//! page renderer by construction**: the skeleton bytes come from the same
//! compose pass, the fragments come from the same `compose_fragment`, and
//! the head/padding/close primitives here are the very ones
//! `Renderer::render`'s finalisation calls. The fragment-equivalence
//! proptest suite (`tests/tests/fragment_equivalence.rs`) holds this
//! property over arbitrary seeds, days, and transaction prefixes.

use bytes::Bytes;

use crate::key::{FragmentKey, PageKey};
use crate::render::{target_bytes, Dependency};

/// Padding filler appended by finalisation (stands in for the inline
/// imagery the real 1998 pages carried).
pub(crate) const FILLER: &str = "Olympic coverage continues around the clock from Nagano. ";

/// The closing bytes of every finalised page.
pub(crate) const PAGE_CLOSE: &str = "</body></html>";

/// The page chrome above the skeleton: doctype, title, site header.
pub(crate) fn page_head(title: &str) -> String {
    format!(
        "<!doctype html><html><head><title>{title}</title></head><body>\n\
         <header><a href=\"/day/1/\">Nagano 1998</a> · <a href=\"/medals\">Medals</a> · \
         <a href=\"/news/day/1\">News</a></header>\n"
    )
}

/// How many `FILLER` repeats finalisation pads onto a page of `len` bytes
/// targeting `target` (the legacy padding loop, on lengths alone).
pub(crate) fn filler_repeats(mut len: usize, target: usize) -> usize {
    let mut n = 0;
    while len + FILLER.len() + PAGE_CLOSE.len() < target {
        len += FILLER.len();
        n += 1;
    }
    n
}

/// A composed page as a rope of zero-copy slices: page head, skeleton
/// segments, cached fragment bodies, padding, close — in wire order.
/// Feed the parts straight to a vectored write, or flatten once with
/// [`ComposedPage::into_bytes`] for cache distribution.
#[derive(Debug, Clone)]
pub struct ComposedPage {
    /// The body slices in order; every part is non-empty.
    pub parts: Vec<Bytes>,
    len: usize,
}

impl ComposedPage {
    /// Total body length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the body is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Flatten into one contiguous body (single exact-size allocation).
    pub fn into_bytes(self) -> Bytes {
        self.to_bytes()
    }

    /// Flatten into one contiguous body without consuming the rope.
    pub fn to_bytes(&self) -> Bytes {
        let mut out = Vec::with_capacity(self.len);
        for p in &self.parts {
            out.extend_from_slice(p);
        }
        Bytes::from(out)
    }
}

/// A page split into its static skeleton and fragment slots.
///
/// `segments.len() == slots.len() + 1`; slot `i` splices between
/// `segments[i]` and `segments[i + 1]`. Pages without fragments (athlete,
/// country, news) are one-segment plans; fragment pages themselves are a
/// single slot with empty segments (the page *is* its fragment, finalised).
#[derive(Debug, Clone)]
pub struct CompositionPlan {
    key: PageKey,
    title: String,
    head: Bytes,
    segments: Vec<Bytes>,
    slots: Vec<FragmentKey>,
    deps: Vec<Dependency>,
    skeleton_cost_ms: f64,
    compose_cost_ms: f64,
    target: usize,
}

impl CompositionPlan {
    /// Build a plan from one slot-recording compose pass (called by
    /// [`crate::Renderer::plan`]).
    pub(crate) fn assemble(
        key: PageKey,
        title: String,
        inner: String,
        slot_offsets: Vec<(usize, FragmentKey)>,
        deps: Vec<Dependency>,
        skeleton_cost_ms: f64,
        compose_cost_ms: f64,
    ) -> Self {
        let skeleton = Bytes::from(inner);
        let mut segments = Vec::with_capacity(slot_offsets.len() + 1);
        let mut slots = Vec::with_capacity(slot_offsets.len());
        let mut at = 0;
        for (off, f) in slot_offsets {
            debug_assert!(off >= at, "slot offsets must be non-decreasing");
            segments.push(skeleton.slice(at..off));
            slots.push(f);
            at = off;
        }
        segments.push(skeleton.slice(at..));
        let head = Bytes::from(page_head(&title));
        CompositionPlan {
            key,
            title,
            head,
            segments,
            slots,
            deps,
            skeleton_cost_ms,
            compose_cost_ms,
            target: target_bytes(key),
        }
    }

    /// The page this plan composes.
    pub fn key(&self) -> PageKey {
        self.key
    }

    /// The page title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The fragment slots, in splice order.
    pub fn slots(&self) -> &[FragmentKey] {
        &self.slots
    }

    /// Whether the page embeds any fragments.
    pub fn has_slots(&self) -> bool {
        !self.slots.is_empty()
    }

    /// Every dependency the composed page registers with DUP — skeleton
    /// data edges plus fragment object edges, identical to the legacy
    /// whole-page render's list.
    pub fn deps(&self) -> &[Dependency] {
        &self.deps
    }

    /// The *skeleton* data dependencies: everything the non-fragment part
    /// of the page read (fragment object edges excluded). If none of
    /// these changed, the cached skeleton is still fresh and the page can
    /// be recomposed without re-rendering.
    pub fn data_deps(&self) -> impl Iterator<Item = &Dependency> {
        self.deps
            .iter()
            .filter(|d| !d.data_key.starts_with("page:"))
    }

    /// Whether any skeleton data dependency satisfies `changed` — the
    /// recompose-vs-re-render decision for one update batch.
    pub fn skeleton_depends_on<F: FnMut(&str) -> bool>(&self, mut changed: F) -> bool {
        self.data_deps().any(|d| changed(&d.data_key))
    }

    /// Modelled CPU cost (ms) of rebuilding this plan's skeleton.
    pub fn skeleton_cost_ms(&self) -> f64 {
        self.skeleton_cost_ms
    }

    /// Modelled CPU cost (ms) of one composition from cached fragments.
    pub fn compose_cost_ms(&self) -> f64 {
        self.compose_cost_ms
    }

    /// Compose the page as a zero-copy rope: `resolve` supplies each
    /// slot's cached inner HTML. Returns `None` if any fragment is
    /// missing (the caller regenerates or invalidates instead).
    pub fn compose_parts<F>(&self, mut resolve: F) -> Option<ComposedPage>
    where
        F: FnMut(FragmentKey) -> Option<Bytes>,
    {
        let mut parts: Vec<Bytes> = Vec::with_capacity(2 * self.slots.len() + 4);
        let mut len = 0usize;
        let push = |parts: &mut Vec<Bytes>, len: &mut usize, b: Bytes| {
            if !b.is_empty() {
                *len += b.len();
                parts.push(b);
            }
        };
        push(&mut parts, &mut len, self.head.clone());
        for (i, &slot) in self.slots.iter().enumerate() {
            push(&mut parts, &mut len, self.segments[i].clone());
            push(&mut parts, &mut len, resolve(slot)?);
        }
        push(
            &mut parts,
            &mut len,
            self.segments[self.slots.len()].clone(),
        );
        push(&mut parts, &mut len, Bytes::from_static(b"\n"));
        let filler = Bytes::from_static(FILLER.as_bytes());
        for _ in 0..filler_repeats(len, self.target) {
            push(&mut parts, &mut len, filler.clone());
        }
        push(
            &mut parts,
            &mut len,
            Bytes::from_static(PAGE_CLOSE.as_bytes()),
        );
        Some(ComposedPage { parts, len })
    }

    /// Compose the page into one contiguous body.
    pub fn compose<F>(&self, resolve: F) -> Option<Bytes>
    where
        F: FnMut(FragmentKey) -> Option<Bytes>,
    {
        Some(self.compose_parts(resolve)?.into_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::Renderer;
    use nagano_db::{seed_games, GamesConfig, OlympicDb};
    use std::sync::Arc;

    fn renderer() -> Renderer {
        let db = Arc::new(OlympicDb::new());
        seed_games(&db, &GamesConfig::small());
        Renderer::new(db)
    }

    fn representative_keys(r: &Renderer) -> Vec<PageKey> {
        let ev = r.db().events()[0].clone();
        vec![
            PageKey::Home(ev.day),
            PageKey::Medals,
            PageKey::Sport(ev.sport),
            PageKey::Event(ev.id),
            PageKey::Country(r.db().countries()[0].id),
            PageKey::Athlete(r.db().athletes()[0].id),
            PageKey::NewsIndex(2),
            PageKey::Welcome,
            PageKey::Fragment(FragmentKey::ResultTable(ev.id)),
            PageKey::Fragment(FragmentKey::MedalTable),
            PageKey::Fragment(FragmentKey::Headlines(ev.day)),
        ]
    }

    #[test]
    fn composition_matches_whole_page_render() {
        let r = renderer();
        for key in representative_keys(&r) {
            let plan = r.plan(key);
            let composed = plan
                .compose(|f| Some(r.render_fragment(f).body))
                .expect("all fragments resolvable");
            let legacy = r.render(key).body;
            assert_eq!(composed, legacy, "{key}: composition diverges");
        }
    }

    #[test]
    fn plan_deps_match_render_deps() {
        let r = renderer();
        for key in representative_keys(&r) {
            let plan = r.plan(key);
            let legacy = r.render(key);
            if matches!(key, PageKey::Fragment(_)) {
                // Fragment-page plans carry no deps of their own: the
                // fragment render registers the (identical) data edges.
                assert!(plan.deps().is_empty(), "{key}");
                assert_eq!(
                    r.render_fragment(match key {
                        PageKey::Fragment(f) => f,
                        _ => unreachable!(),
                    })
                    .deps,
                    legacy.deps,
                    "{key}"
                );
            } else {
                assert_eq!(plan.deps(), legacy.deps, "{key}: dep lists diverge");
            }
        }
    }

    #[test]
    fn composed_parts_concatenate_to_compose() {
        let r = renderer();
        let ev = r.db().events()[0].clone();
        let plan = r.plan(PageKey::Home(ev.day));
        assert!(plan.has_slots());
        let resolve = |f: FragmentKey| Some(r.render_fragment(f).body);
        let rope = plan.compose_parts(resolve).unwrap();
        assert!(rope.parts.iter().all(|p| !p.is_empty()));
        assert_eq!(rope.len(), rope.to_bytes().len());
        assert_eq!(rope.to_bytes(), plan.compose(resolve).unwrap());
    }

    #[test]
    fn missing_fragment_aborts_composition() {
        let r = renderer();
        let ev = r.db().events()[0].clone();
        let plan = r.plan(PageKey::Home(ev.day));
        assert!(plan.compose(|_| None).is_none());
    }

    #[test]
    fn slotless_pages_never_call_resolve() {
        let r = renderer();
        let a = r.db().athletes()[0].id;
        for key in [PageKey::Athlete(a), PageKey::Welcome, PageKey::Nagano] {
            let plan = r.plan(key);
            assert!(!plan.has_slots(), "{key}");
            let body = plan
                .compose(|_| panic!("slotless page resolved a fragment"))
                .unwrap();
            assert_eq!(body, r.render(key).body, "{key}");
        }
    }

    #[test]
    fn skeleton_dependency_probe_separates_fragment_edges() {
        let r = renderer();
        let ev = r.db().events()[0].clone();
        let plan = r.plan(PageKey::Home(ev.day));
        // The home skeleton reads today's schedule and each event row
        // (phase labels, the Gold line) but depends on the medal table
        // only through its fragment object.
        assert!(plan.skeleton_depends_on(|d| d == format!("data:today:{}", ev.day)));
        assert!(plan.skeleton_depends_on(|d| d == format!("data:event:{}", ev.id.0)));
        assert!(!plan.skeleton_depends_on(|d| d == "data:medals:standings"));
        assert!(plan
            .deps()
            .iter()
            .any(|d| d.data_key == "page:/fragments/medals"));
    }

    #[test]
    fn cost_split_is_cheaper_than_whole_page() {
        let r = renderer();
        let ev = r.db().events()[0].clone();
        let plan = r.plan(PageKey::Home(ev.day));
        let full = r.render(PageKey::Home(ev.day)).cost_ms;
        assert!(plan.skeleton_cost_ms() < full);
        assert!(plan.compose_cost_ms() < plan.skeleton_cost_ms());
        // Slotless dynamic pages: the skeleton is the whole page.
        let ath = r.plan(PageKey::Athlete(r.db().athletes()[0].id));
        assert_eq!(
            ath.skeleton_cost_ms(),
            r.render(ath.key()).cost_ms,
            "slotless skeleton = full cost"
        );
    }
}
