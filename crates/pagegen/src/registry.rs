//! The page registry: the full enumerable page space of a seeded Games.
//!
//! §3.1: the 1998 site held ~87,000 unique pages of which ~21,000 were
//! dynamically created. Our synthetic page space reproduces the *structure*
//! (every category, every per-entity page, every fragment); the absolute
//! count scales with the seeded dataset and language multiplier.

use nagano_db::OlympicDb;
use rustc_hash::FxHashMap;

use crate::key::{FragmentKey, PageKey};
use crate::render::target_bytes;

/// Metadata for one page in the registry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageMeta {
    /// Whether the page is rebuilt from database content.
    pub dynamic: bool,
    /// Nominal transfer size in bytes.
    pub bytes: usize,
    /// Relative request popularity weight (before day-of-games
    /// modulation by the workload model).
    pub weight: f64,
}

/// The enumerated page space.
#[derive(Debug, Clone)]
pub struct PageRegistry {
    pages: Vec<(PageKey, PageMeta)>,
    index: FxHashMap<PageKey, usize>,
    days: u32,
}

impl PageRegistry {
    /// Build the registry for a seeded database covering `days` days.
    ///
    /// Popularity weights encode the access skew the paper describes:
    /// home/today pages dominate, medal standings and marquee events are
    /// hot, the long tail of athletes and countries is cold but wide.
    pub fn build(db: &OlympicDb, days: u32) -> Self {
        let mut pages: Vec<(PageKey, PageMeta)> = Vec::new();
        let mut push = |key: PageKey, weight: f64| {
            let meta = PageMeta {
                dynamic: key.is_dynamic(),
                bytes: target_bytes(key),
                weight,
            };
            pages.push((key, meta));
        };

        for day in 1..=days {
            push(PageKey::Home(day), 300.0);
            push(PageKey::NewsIndex(day), 30.0);
            push(PageKey::Fragment(FragmentKey::Headlines(day)), 2.0);
        }
        push(PageKey::Medals, 150.0);
        push(PageKey::Fragment(FragmentKey::MedalTable), 2.0);
        push(PageKey::Welcome, 20.0);
        push(PageKey::Nagano, 10.0);
        push(PageKey::Fun, 8.0);

        for sport in db.sports() {
            push(PageKey::Sport(sport.id), 40.0);
            push(PageKey::Venue(sport.id), 4.0);
        }
        for event in db.events() {
            push(PageKey::Event(event.id), 10.0 * event.popularity);
            push(PageKey::Fragment(FragmentKey::ResultTable(event.id)), 0.5);
        }
        for (i, country) in db.countries().iter().enumerate() {
            // Zipf-ish tail over countries.
            push(PageKey::Country(country.id), 12.0 / (i as f64 + 1.0).sqrt());
        }
        for (i, athlete) in db.athletes().iter().enumerate() {
            push(PageKey::Athlete(athlete.id), 6.0 / (i as f64 + 1.0));
        }
        for article in (1..=days).flat_map(|d| db.news_on_day(d)) {
            push(PageKey::News(article.id), 15.0);
        }

        let index = pages
            .iter()
            .enumerate()
            .map(|(i, (k, _))| (*k, i))
            .collect();
        PageRegistry { pages, index, days }
    }

    /// Number of days covered.
    pub fn days(&self) -> u32 {
        self.days
    }

    /// All pages with metadata.
    pub fn pages(&self) -> &[(PageKey, PageMeta)] {
        &self.pages
    }

    /// Metadata for one page.
    pub fn meta(&self, key: PageKey) -> Option<PageMeta> {
        self.index.get(&key).map(|&i| self.pages[i].1)
    }

    /// Number of pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Count of dynamic pages.
    pub fn dynamic_count(&self) -> usize {
        self.pages.iter().filter(|(_, m)| m.dynamic).count()
    }

    /// Keys of every dynamic page (the prefetch set the trigger monitor
    /// warms at startup).
    pub fn dynamic_pages(&self) -> impl Iterator<Item = PageKey> + '_ {
        self.pages
            .iter()
            .filter(|(_, m)| m.dynamic)
            .map(|(k, _)| *k)
    }

    /// Total nominal bytes of one copy of every dynamic page (the §5
    /// "maximum memory required for a single copy of all cached objects"
    /// figure).
    pub fn dynamic_bytes(&self) -> u64 {
        self.pages
            .iter()
            .filter(|(_, m)| m.dynamic)
            .map(|(_, m)| m.bytes as u64)
            .sum()
    }

    /// The popularity weights, aligned with [`Self::pages`] (input to a
    /// weighted sampler).
    pub fn weights(&self) -> Vec<f64> {
        self.pages.iter().map(|(_, m)| m.weight).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nagano_db::{seed_games, GamesConfig};
    use std::sync::Arc;

    fn registry() -> PageRegistry {
        let db = Arc::new(OlympicDb::new());
        seed_games(&db, &GamesConfig::small());
        PageRegistry::build(&db, 16)
    }

    #[test]
    fn covers_every_category() {
        let reg = registry();
        use std::collections::HashSet;
        let cats: HashSet<&str> = reg.pages().iter().map(|(k, _)| k.category()).collect();
        assert!(cats.len() >= 8, "categories {cats:?}");
    }

    #[test]
    fn page_counts_match_dataset() {
        let db = Arc::new(OlympicDb::new());
        seed_games(&db, &GamesConfig::small());
        let reg = PageRegistry::build(&db, 16);
        let cfg = GamesConfig::small();
        // homes + news-index + headlines per day; medals(+frag);
        // welcome/nagano/fun; sport+venue per sport; event+fragment per
        // event; country per country; athlete per athlete.
        let n_sports = db.sports().len();
        let expected = 16 * 3
            + 2
            + 3
            + n_sports * 2
            + cfg.events as usize * 2
            + cfg.countries as usize
            + cfg.athletes as usize;
        assert_eq!(reg.len(), expected);
    }

    #[test]
    fn full_scale_page_space_has_thousands_of_dynamic_pages() {
        let db = Arc::new(OlympicDb::new());
        seed_games(&db, &GamesConfig::full());
        let reg = PageRegistry::build(&db, 16);
        // 2,300 athletes + 72 countries + 68×2 events/fragments + … —
        // the per-language page space is in the thousands (the paper's
        // 21,000 counts two full languages plus news archives).
        assert!(
            reg.dynamic_count() > 2_500,
            "dynamic {}",
            reg.dynamic_count()
        );
        assert!(reg.len() > reg.dynamic_count());
    }

    #[test]
    fn meta_lookup_and_weights_align() {
        let reg = registry();
        let (key, meta) = reg.pages()[0];
        assert_eq!(reg.meta(key), Some(meta));
        assert_eq!(reg.weights().len(), reg.len());
        assert!(reg.weights().iter().all(|&w| w > 0.0));
    }

    #[test]
    fn home_pages_dominate_weights() {
        let reg = registry();
        let home_w = reg.meta(PageKey::Home(1)).unwrap().weight;
        let max_other = reg
            .pages()
            .iter()
            .filter(|(k, _)| !matches!(k, PageKey::Home(_)))
            .map(|(_, m)| m.weight)
            .fold(0.0, f64::max);
        assert!(home_w >= max_other, "home {home_w} vs {max_other}");
    }

    #[test]
    fn dynamic_bytes_accumulates() {
        let reg = registry();
        assert_eq!(
            reg.dynamic_bytes(),
            reg.pages()
                .iter()
                .filter(|(_, m)| m.dynamic)
                .map(|(_, m)| m.bytes as u64)
                .sum::<u64>()
        );
        assert_eq!(reg.dynamic_pages().count(), reg.dynamic_count());
    }
}
