//! Typed page identities.
//!
//! Every servable URL on the site maps to one [`PageKey`]; every key has a
//! canonical URL (`to_url`) and parses back (`parse`). Keys double as the
//! cache keys and — prefixed via [`PageKey::object_key`] — as the object
//! vertices of the dependence graph.

use nagano_db::{AthleteId, CountryId, EventId, NewsId, SportId};
use serde::{Deserialize, Serialize};

/// A cacheable page fragment (Figure 15 of the paper).
///
/// Fragments are *hybrid* ODG vertices: they are cached objects in their
/// own right and underlying data for the composed pages that embed them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FragmentKey {
    /// Result table for one event.
    ResultTable(EventId),
    /// The medal-standings table.
    MedalTable,
    /// News headline strip for one day.
    Headlines(u32),
}

impl FragmentKey {
    /// Canonical URL of the fragment (fragments are servable, e.g. for
    /// the CBS feed the paper mentions).
    pub fn to_url(self) -> String {
        match self {
            FragmentKey::ResultTable(e) => format!("/fragments/results/{}", e.0),
            FragmentKey::MedalTable => "/fragments/medals".to_string(),
            FragmentKey::Headlines(d) => format!("/fragments/headlines/{d}"),
        }
    }
}

/// Identity of one servable page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PageKey {
    /// Per-day home page ("Today" category; a different home page was
    /// created each day of the Games).
    Home(u32),
    /// The "how to / what is" page.
    Welcome,
    /// One news article.
    News(NewsId),
    /// The news index for one day.
    NewsIndex(u32),
    /// Venue information for a sport.
    Venue(SportId),
    /// A sport's results/scores page.
    Sport(SportId),
    /// One event's page.
    Event(EventId),
    /// A country's collated page.
    Country(CountryId),
    /// An athlete's collated page.
    Athlete(AthleteId),
    /// The medal standings page.
    Medals,
    /// Information about Nagano (static).
    Nagano,
    /// Children's activities (static).
    Fun,
    /// A cacheable page fragment.
    Fragment(FragmentKey),
}

impl PageKey {
    /// Canonical URL path.
    pub fn to_url(self) -> String {
        let mut out = String::with_capacity(24);
        self.push_url(&mut out);
        out
    }

    /// Append the canonical URL path to `out` — the serving hot path
    /// formats cache keys into a reused buffer instead of allocating a
    /// fresh `String` per request.
    pub fn push_url(self, out: &mut String) {
        use std::fmt::Write;
        // Writing to a String cannot fail; the results are ignorable.
        let _ = match self {
            PageKey::Home(d) => write!(out, "/day/{d}/"),
            PageKey::Welcome => write!(out, "/welcome"),
            PageKey::News(n) => write!(out, "/news/{}", n.0),
            PageKey::NewsIndex(d) => write!(out, "/news/day/{d}"),
            PageKey::Venue(s) => write!(out, "/venues/{}", s.0),
            PageKey::Sport(s) => write!(out, "/sports/{}", s.0),
            PageKey::Event(e) => write!(out, "/events/{}", e.0),
            PageKey::Country(c) => write!(out, "/countries/{}", c.0),
            PageKey::Athlete(a) => write!(out, "/athletes/{}", a.0),
            PageKey::Medals => write!(out, "/medals"),
            PageKey::Nagano => write!(out, "/nagano"),
            PageKey::Fun => write!(out, "/fun"),
            PageKey::Fragment(f) => return out.push_str(&f.to_url()),
        };
    }

    /// The ODG object-vertex name for this page.
    pub fn object_key(self) -> String {
        format!("page:{}", self.to_url())
    }

    /// Parse a URL path back into a key. Returns `None` for unknown paths.
    pub fn parse(path: &str) -> Option<PageKey> {
        let path = path.strip_suffix('/').unwrap_or(path);
        let mut parts = path.split('/').filter(|s| !s.is_empty());
        let head = parts.next();
        let key = match head {
            Some("day") => PageKey::Home(parts.next()?.parse().ok()?),
            Some("welcome") => PageKey::Welcome,
            Some("news") => match parts.next()? {
                "day" => PageKey::NewsIndex(parts.next()?.parse().ok()?),
                n => PageKey::News(NewsId(n.parse().ok()?)),
            },
            Some("venues") => PageKey::Venue(SportId(parts.next()?.parse().ok()?)),
            Some("sports") => PageKey::Sport(SportId(parts.next()?.parse().ok()?)),
            Some("events") => PageKey::Event(EventId(parts.next()?.parse().ok()?)),
            Some("countries") => PageKey::Country(CountryId(parts.next()?.parse().ok()?)),
            Some("athletes") => PageKey::Athlete(AthleteId(parts.next()?.parse().ok()?)),
            Some("medals") => PageKey::Medals,
            Some("nagano") => PageKey::Nagano,
            Some("fun") => PageKey::Fun,
            Some("fragments") => match parts.next()? {
                "results" => PageKey::Fragment(FragmentKey::ResultTable(EventId(
                    parts.next()?.parse().ok()?,
                ))),
                "medals" => PageKey::Fragment(FragmentKey::MedalTable),
                "headlines" => {
                    PageKey::Fragment(FragmentKey::Headlines(parts.next()?.parse().ok()?))
                }
                _ => return None,
            },
            _ => return None,
        };
        // Reject trailing junk.
        if parts.next().is_some() {
            return None;
        }
        Some(key)
    }

    /// Whether this page is dynamic (built from database content) or
    /// static (served as-is).
    pub fn is_dynamic(self) -> bool {
        !matches!(
            self,
            PageKey::Welcome | PageKey::Nagano | PageKey::Fun | PageKey::Venue(_)
        )
    }

    /// Content category (the paper's nine categories; fragments report the
    /// category of the page family they feed).
    pub fn category(self) -> &'static str {
        match self {
            PageKey::Home(_) => "Today",
            PageKey::Welcome => "Welcome",
            PageKey::News(_) | PageKey::NewsIndex(_) => "News",
            PageKey::Venue(_) => "Venues",
            PageKey::Sport(_) | PageKey::Event(_) => "Sports",
            PageKey::Country(_) => "Countries",
            PageKey::Athlete(_) => "Athletes",
            PageKey::Medals => "Today",
            PageKey::Nagano => "Nagano",
            PageKey::Fun => "Fun",
            PageKey::Fragment(_) => "Sports",
        }
    }
}

impl std::fmt::Display for PageKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_url())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_sample_keys() -> Vec<PageKey> {
        vec![
            PageKey::Home(14),
            PageKey::Welcome,
            PageKey::News(NewsId(7)),
            PageKey::NewsIndex(3),
            PageKey::Venue(SportId(2)),
            PageKey::Sport(SportId(2)),
            PageKey::Event(EventId(11)),
            PageKey::Country(CountryId(4)),
            PageKey::Athlete(AthleteId(99)),
            PageKey::Medals,
            PageKey::Nagano,
            PageKey::Fun,
            PageKey::Fragment(FragmentKey::ResultTable(EventId(11))),
            PageKey::Fragment(FragmentKey::MedalTable),
            PageKey::Fragment(FragmentKey::Headlines(5)),
        ]
    }

    #[test]
    fn url_roundtrip_for_every_variant() {
        for key in all_sample_keys() {
            let url = key.to_url();
            assert_eq!(PageKey::parse(&url), Some(key), "url {url}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "/",
            "/unknown",
            "/events/",
            "/events/abc",
            "/athletes/1/extra",
            "/fragments/bogus/1",
            "/news/day/",
        ] {
            assert_eq!(PageKey::parse(bad), None, "path {bad}");
        }
    }

    #[test]
    fn object_key_prefixes_url() {
        assert_eq!(PageKey::Medals.object_key(), "page:/medals");
        assert_eq!(PageKey::Event(EventId(3)).object_key(), "page:/events/3");
    }

    #[test]
    fn static_vs_dynamic_split() {
        assert!(!PageKey::Welcome.is_dynamic());
        assert!(!PageKey::Nagano.is_dynamic());
        assert!(!PageKey::Fun.is_dynamic());
        assert!(!PageKey::Venue(SportId(1)).is_dynamic());
        assert!(PageKey::Home(1).is_dynamic());
        assert!(PageKey::Event(EventId(1)).is_dynamic());
        assert!(PageKey::Fragment(FragmentKey::MedalTable).is_dynamic());
    }

    #[test]
    fn categories_cover_the_paper_list() {
        use std::collections::HashSet;
        let cats: HashSet<&str> = all_sample_keys().iter().map(|k| k.category()).collect();
        for want in [
            "Today",
            "Welcome",
            "News",
            "Venues",
            "Sports",
            "Countries",
            "Athletes",
            "Nagano",
            "Fun",
        ] {
            assert!(cats.contains(want), "missing category {want}");
        }
    }

    #[test]
    fn push_url_matches_to_url_for_every_variant() {
        let mut buf = String::new();
        for key in all_sample_keys() {
            buf.clear();
            key.push_url(&mut buf);
            assert_eq!(buf, key.to_url(), "{key:?}");
        }
    }

    #[test]
    fn display_is_url() {
        assert_eq!(PageKey::Home(3).to_string(), "/day/3/");
    }

    #[test]
    fn home_url_trailing_slash_normalises() {
        assert_eq!(PageKey::parse("/day/3"), Some(PageKey::Home(3)));
        assert_eq!(PageKey::parse("/day/3/"), Some(PageKey::Home(3)));
    }
}
