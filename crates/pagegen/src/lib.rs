//! Page model for the Olympic site: identities, registry, renderer,
//! generation-cost model, and the 1996/1998 navigation structures.
//!
//! §3.1 of the paper describes the nine content categories and the page
//! redesign that grew the dynamic page count from a few thousand (1996) to
//! over 20,000 (1998). This crate reproduces that page space:
//!
//! * [`key`] — typed page identities ([`PageKey`]) including **page
//!   fragments** (Figure 15: result tables, medal tables, headline strips
//!   are cached objects *and* underlying data for the pages composed from
//!   them).
//! * [`registry`] — enumerates the full page space for a seeded Games and
//!   carries per-page metadata (dynamic vs static, nominal byte size,
//!   popularity weight).
//! * [`render`] — renders any page from the database, returning the body
//!   *and the dependency list* the application must register with DUP
//!   ("an application program is responsible for communicating data
//!   dependencies ... to the cache").
//! * [`plan`] — *composition plans* (DESIGN.md §14): the same render pass
//!   with fragments recorded as slots instead of inlined, so serving can
//!   splice cached fragment bodies between static skeleton segments and
//!   regeneration can touch one dirty fragment instead of every embedding
//!   page.
//! * [`cost`] — the generation cost model: static pages take 2–10 ms of
//!   CPU; dynamic pages one to two orders of magnitude more (the paper's
//!   reference \[8\]).
//! * [`structure`] — the 1996 and 1998 page hierarchies as navigation
//!   models for the `nav` experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod key;
pub mod plan;
pub mod registry;
pub mod render;
pub mod structure;

pub use cost::CostModel;
pub use key::{FragmentKey, PageKey};
pub use plan::{ComposedPage, CompositionPlan};
pub use registry::{PageMeta, PageRegistry};
pub use render::{Dependency, RenderOutput, Renderer};
pub use structure::{NavigationModel, SiteStructure};
