//! The page renderer.
//!
//! Rendering a page produces three things:
//!
//! 1. the HTML **body** (deterministic, built from live database rows,
//!    padded to a realistic transfer size — the paper's pages averaged
//!    ~10 KB per hit including images, with the Day-N home pages around
//!    55 KB with inline previews);
//! 2. the **dependency list** — the underlying data and embedded fragments
//!    this page's content was derived from. The paper: "An application
//!    program is responsible for communicating data dependencies between
//!    underlying data and objects to the cache." The trigger monitor
//!    registers these edges in the ODG after every (re)generation, so the
//!    graph tracks the page space as it evolves;
//! 3. the modelled CPU **cost** (used for accounting and GreedyDual-Size).
//!
//! Composed pages (home, sport, event) embed fragments by *reference to
//! the fragment object*, which makes fragments hybrid vertices: data
//! changes propagate data → fragment → page exactly as in Figure 15.

use std::fmt::Write as _;
use std::sync::Arc;

use bytes::Bytes;
use nagano_db::{EventPhase, OlympicDb};

use crate::cost::{spin_for, CostModel};
use crate::key::{FragmentKey, PageKey};
use crate::plan::{filler_repeats, page_head, CompositionPlan, FILLER, PAGE_CLOSE};

/// One dependency edge to register with DUP: `data_key → this page`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dependency {
    /// The underlying-data (or hybrid fragment) vertex name.
    pub data_key: String,
    /// Importance weight for the edge.
    pub weight: f64,
}

impl Dependency {
    /// Unit-weight dependency.
    pub fn new(data_key: impl Into<String>) -> Self {
        Dependency {
            data_key: data_key.into(),
            weight: 1.0,
        }
    }

    /// Weighted dependency.
    pub fn weighted(data_key: impl Into<String>, weight: f64) -> Self {
        Dependency {
            data_key: data_key.into(),
            weight,
        }
    }
}

/// The result of rendering one page.
#[derive(Debug, Clone)]
pub struct RenderOutput {
    /// Rendered HTML.
    pub body: Bytes,
    /// Dependencies to register in the ODG.
    pub deps: Vec<Dependency>,
    /// Modelled CPU cost in milliseconds.
    pub cost_ms: f64,
}

/// Renders pages from a database.
#[derive(Debug, Clone)]
pub struct Renderer {
    db: Arc<OlympicDb>,
    cost: CostModel,
    /// When `Some(scale)`, rendering burns `cost_ms * scale` of real CPU
    /// (throughput experiments). `None` (default) renders at full speed.
    cpu_scale: Option<f64>,
}

impl Renderer {
    /// New renderer over `db` with the default cost model.
    pub fn new(db: Arc<OlympicDb>) -> Self {
        Renderer {
            db,
            cost: CostModel::new(),
            cpu_scale: None,
        }
    }

    /// Use a custom cost model.
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Burn real CPU proportional to the modelled cost (scale 1.0 =
    /// model-accurate; tests use small scales).
    pub fn with_simulated_cpu(mut self, scale: f64) -> Self {
        self.cpu_scale = Some(scale);
        self
    }

    /// The database handle.
    pub fn db(&self) -> &Arc<OlympicDb> {
        &self.db
    }

    /// The cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Render `key`.
    pub fn render(&self, key: PageKey) -> RenderOutput {
        let mut html = String::with_capacity(4096);
        let mut deps: Vec<Dependency> = Vec::new();
        let title = self.compose(key, &mut html, &mut deps, None);
        let body = finalize(key, &title, html);
        let cost_ms = self.cost.cost_ms(key);
        if let Some(scale) = self.cpu_scale {
            spin_for(cost_ms, scale);
        }
        RenderOutput {
            body,
            deps,
            cost_ms,
        }
    }

    /// Render just the fragment's inner HTML — the bytes a composition
    /// plan splices into its slots. The body is *not* a servable page
    /// (no chrome, no padding; compose the owning [`CompositionPlan`]
    /// for that). The dependency list is identical to the one a legacy
    /// whole-page render of `PageKey::Fragment(f)` registers: the page
    /// and the fragment share one ODG vertex.
    pub fn render_fragment(&self, f: FragmentKey) -> RenderOutput {
        let mut html = String::with_capacity(1024);
        let mut deps: Vec<Dependency> = Vec::new();
        self.compose_fragment(f, &mut html, &mut deps);
        let cost_ms = self.cost.cost_ms(PageKey::Fragment(f));
        if let Some(scale) = self.cpu_scale {
            spin_for(cost_ms, scale);
        }
        RenderOutput {
            body: Bytes::from(html),
            deps,
            cost_ms,
        }
    }

    /// Build the page's composition plan: the same `compose` pass as
    /// [`Renderer::render`], but every `inline_fragment` records a slot
    /// instead of rendering — so composing the plan with fresh fragment
    /// bodies is byte-identical to the whole-page render by construction.
    pub fn plan(&self, key: PageKey) -> CompositionPlan {
        let mut html = String::with_capacity(4096);
        let mut deps: Vec<Dependency> = Vec::new();
        let mut slots: Vec<(usize, FragmentKey)> = Vec::new();
        let title = self.compose(key, &mut html, &mut deps, Some(&mut slots));
        let skeleton_cost_ms = match key {
            // The fragment page's render cost is carried by the fragment
            // itself ([`Renderer::render_fragment`]).
            PageKey::Fragment(_) => 0.0,
            _ if slots.is_empty() => self.cost.cost_ms(key),
            _ => self.cost.skeleton_cost_ms(key),
        };
        if let Some(scale) = self.cpu_scale {
            spin_for(skeleton_cost_ms, scale);
        }
        let compose_cost_ms = self.cost.compose_cost_ms(slots.len());
        CompositionPlan::assemble(
            key,
            title,
            html,
            slots,
            deps,
            skeleton_cost_ms,
            compose_cost_ms,
        )
    }

    /// Build the page's inner HTML; returns the title. With `slots` set
    /// (composition-plan mode), fragments record slots instead of
    /// rendering inline and the returned HTML is the bare skeleton.
    fn compose(
        &self,
        key: PageKey,
        html: &mut String,
        deps: &mut Vec<Dependency>,
        mut slots: Option<&mut Vec<(usize, FragmentKey)>>,
    ) -> String {
        match key {
            PageKey::Home(day) => {
                deps.push(Dependency::weighted(
                    nagano_db::schema::today_data_key(day),
                    2.0,
                ));
                // Embedded fragments: medal table, headlines, and the
                // result tables of every event concluding today. Fragment
                // dependencies use the fragment *object* key (hybrid
                // vertices).
                deps.push(Dependency::new(
                    PageKey::Fragment(FragmentKey::MedalTable).object_key(),
                ));
                deps.push(Dependency::weighted(
                    PageKey::Fragment(FragmentKey::Headlines(day)).object_key(),
                    0.5,
                ));
                let _ = writeln!(html, "<h2>Day {day} at the Games</h2>");
                self.inline_fragment(FragmentKey::MedalTable, html, slots.as_deref_mut());
                self.inline_fragment(FragmentKey::Headlines(day), html, slots.as_deref_mut());
                for event in self.db.events_on_day(day) {
                    deps.push(Dependency::weighted(
                        PageKey::Fragment(FragmentKey::ResultTable(event.id)).object_key(),
                        2.0,
                    ));
                    // The *skeleton* also reads event rows directly (phase
                    // label, gold-winner line below), so the page needs its
                    // own data edge — not just the fragment's.
                    deps.push(Dependency::weighted(event.id.data_key(), 1.0));
                    self.inline_fragment(
                        FragmentKey::ResultTable(event.id),
                        html,
                        slots.as_deref_mut(),
                    );
                    let _ = writeln!(
                        html,
                        "<section class=\"event\"><a href=\"{}\">{}</a> — {}</section>",
                        PageKey::Event(event.id).to_url(),
                        event.name,
                        phase_label(event.phase),
                    );
                    // Inline the top line of finished finals: this is what
                    // lets >25% of visitors stop at the home page.
                    if event.phase == EventPhase::Final {
                        if let Some(winner) = self
                            .db
                            .results_for_event(event.id)
                            .iter()
                            .find(|r| r.is_final && r.rank == 1)
                        {
                            // nagano-lint: allow(O001) — athlete names are immutable after seeding; the winner line is refreshed by the `data:event:*` edge pushed above for this event
                            if let Some(a) = self.db.athlete(winner.athlete) {
                                let _ = writeln!(html, "<p>Gold: {}</p>", a.name);
                            }
                        }
                    }
                }
                format!("Nagano 1998 — Day {day}")
            }
            PageKey::Medals => {
                deps.push(Dependency::new(
                    PageKey::Fragment(FragmentKey::MedalTable).object_key(),
                ));
                let _ = writeln!(html, "<h2>Medal Standings</h2>");
                self.inline_fragment(FragmentKey::MedalTable, html, slots.as_deref_mut());
                "Medal Standings".to_string()
            }
            PageKey::Sport(s) => {
                deps.push(Dependency::new(nagano_db::SportId(s.0).data_key()));
                let sport = self.db.sport(s);
                let name = sport
                    .as_ref()
                    .map(|x| x.name.clone())
                    .unwrap_or_else(|| "Unknown sport".into());
                let _ = writeln!(html, "<h2>{name}</h2>");
                for event in self.db.events_of_sport(s) {
                    deps.push(Dependency::new(
                        PageKey::Fragment(FragmentKey::ResultTable(event.id)).object_key(),
                    ));
                    self.inline_fragment(
                        FragmentKey::ResultTable(event.id),
                        html,
                        slots.as_deref_mut(),
                    );
                    let _ = writeln!(
                        html,
                        "<div><a href=\"{}\">{}</a> (day {})</div>",
                        PageKey::Event(event.id).to_url(),
                        event.name,
                        event.day
                    );
                }
                name
            }
            PageKey::Event(e) => {
                deps.push(Dependency::new(
                    PageKey::Fragment(FragmentKey::ResultTable(e)).object_key(),
                ));
                self.inline_fragment(FragmentKey::ResultTable(e), html, slots.as_deref_mut());
                let event = self.db.event(e);
                let name = event
                    .as_ref()
                    .map(|x| x.name.clone())
                    .unwrap_or_else(|| "Unknown event".into());
                let _ = writeln!(html, "<h2>{name}</h2>");
                for photo in self.db.photos_for_event(e) {
                    deps.push(Dependency::weighted(photo.id.data_key(), 0.5));
                    let _ = writeln!(html, "<img alt=\"photo {}\"/>", photo.id.0);
                }
                // Cross-links per the 1998 redesign: every page links to
                // pertinent information in other sections.
                if let Some(ev) = &event {
                    let _ = writeln!(
                        html,
                        "<nav><a href=\"{}\">All {} results</a> <a href=\"/medals\">Medals</a></nav>",
                        PageKey::Sport(ev.sport).to_url(),
                        ev.sport
                    );
                }
                name
            }
            PageKey::Country(c) => {
                deps.push(Dependency::new(c.data_key()));
                // The country page shows its medal box: a change to the
                // standings slightly affects every country page (weight
                // below 1 lets the threshold policy tolerate it).
                deps.push(Dependency::weighted(
                    nagano_db::schema::medals_data_key(),
                    0.25,
                ));
                let country = self.db.country(c);
                let name = country.map(|x| x.name).unwrap_or_else(|| "Unknown".into());
                let _ = writeln!(html, "<h2>{name}</h2>");
                if let Some((_, m)) = self
                    .db
                    .medal_standings()
                    .iter()
                    .find(|(code, _)| *code == c)
                {
                    let _ = writeln!(
                        html,
                        "<p class=\"medal-box\">Gold {} · Silver {} · Bronze {}</p>",
                        m.gold, m.silver, m.bronze
                    );
                }
                for a in self.db.athletes_of_country(c).iter().take(50) {
                    let _ = writeln!(
                        html,
                        "<div><a href=\"{}\">{}</a></div>",
                        PageKey::Athlete(a.id).to_url(),
                        a.name
                    );
                }
                name
            }
            PageKey::Athlete(a) => {
                deps.push(Dependency::new(a.data_key()));
                let athlete = self.db.athlete(a);
                let name = athlete
                    .as_ref()
                    .map(|x| x.name.clone())
                    .unwrap_or_else(|| "Unknown".into());
                let _ = writeln!(html, "<h2>{name}</h2>");
                for r in self.db.results_for_athlete(a) {
                    let _ = writeln!(
                        html,
                        "<div>Event <a href=\"{}\">{}</a>: rank {} ({:.2})</div>",
                        PageKey::Event(r.event).to_url(),
                        r.event.0,
                        r.rank,
                        r.score
                    );
                }
                if let Some(at) = &athlete {
                    let _ = writeln!(
                        html,
                        "<nav><a href=\"{}\">Team page</a></nav>",
                        PageKey::Country(at.country).to_url()
                    );
                }
                name
            }
            PageKey::News(n) => {
                deps.push(Dependency::new(n.data_key()));
                match self.db.news(n) {
                    Some(article) => {
                        let _ = writeln!(
                            html,
                            "<h2>{}</h2><article>{}</article>",
                            article.title, article.body
                        );
                        if let Some(ev) = article.about_event {
                            let _ = writeln!(
                                html,
                                "<nav><a href=\"{}\">Event results</a></nav>",
                                PageKey::Event(ev).to_url()
                            );
                        }
                        article.title
                    }
                    None => "Story not found".to_string(),
                }
            }
            PageKey::NewsIndex(day) => {
                deps.push(Dependency::new(nagano_db::schema::today_data_key(day)));
                let _ = writeln!(html, "<h2>News — Day {day}</h2>");
                for article in self.db.news_on_day(day) {
                    deps.push(Dependency::weighted(article.id.data_key(), 0.5));
                    let _ = writeln!(
                        html,
                        "<div><a href=\"{}\">{}</a></div>",
                        PageKey::News(article.id).to_url(),
                        article.title
                    );
                }
                format!("News for Day {day}")
            }
            PageKey::Venue(s) => {
                let venue = self.db.sport(s).map(|x| x.venue).unwrap_or_default();
                let _ = writeln!(html, "<h2>{venue}</h2><p>Venue guide and transport.</p>");
                venue
            }
            PageKey::Welcome => {
                let _ = writeln!(html, "<h2>Welcome</h2><p>How to use this site.</p>");
                "Welcome".into()
            }
            PageKey::Nagano => {
                let _ = writeln!(html, "<h2>Nagano, Japan</h2><p>Host city guide.</p>");
                "Nagano".into()
            }
            PageKey::Fun => {
                let _ = writeln!(
                    html,
                    "<h2>Fun &amp; Games</h2><p>Activities for children.</p>"
                );
                "Fun".into()
            }
            PageKey::Fragment(f) => match slots {
                // Plan mode: the fragment page is pure slot — its data deps
                // live on the shared fragment vertex, registered when the
                // fragment itself regenerates.
                Some(slots) => {
                    slots.push((html.len(), f));
                    fragment_title(f)
                }
                None => self.compose_fragment(f, html, deps),
            },
        }
    }

    /// Render a fragment's HTML into a composed page *without* adding the
    /// fragment's own data dependencies — the page depends on the fragment
    /// object; the fragment depends on the raw data (Figure 15's two-level
    /// composition). In plan mode (`slots` set) nothing is rendered: the
    /// current skeleton offset is recorded as a cached-fragment slot.
    fn inline_fragment(
        &self,
        f: FragmentKey,
        html: &mut String,
        slots: Option<&mut Vec<(usize, FragmentKey)>>,
    ) {
        match slots {
            Some(slots) => slots.push((html.len(), f)),
            None => {
                let mut fragment_deps = Vec::new();
                self.compose_fragment(f, html, &mut fragment_deps);
            }
        }
    }

    fn compose_fragment(
        &self,
        f: FragmentKey,
        html: &mut String,
        deps: &mut Vec<Dependency>,
    ) -> String {
        match f {
            FragmentKey::ResultTable(e) => {
                deps.push(Dependency::new(e.data_key()));
                let _ = writeln!(html, "<table class=\"results\">");
                for r in self.db.results_for_event(e) {
                    let who = self
                        .db
                        // nagano-lint: allow(O001) — athlete names are immutable after seeding; result changes reach this fragment through the `data:event:*` edge pushed above
                        .athlete(r.athlete)
                        .map(|a| a.name)
                        .unwrap_or_else(|| format!("athlete {}", r.athlete.0));
                    let _ = writeln!(
                        html,
                        "<tr><td>{}</td><td>{}</td><td>{:.2}</td></tr>",
                        r.rank, who, r.score
                    );
                }
                let _ = writeln!(html, "</table>");
            }
            FragmentKey::MedalTable => {
                deps.push(Dependency::new(nagano_db::schema::medals_data_key()));
                let _ = writeln!(html, "<table class=\"medals\">");
                for (c, m) in self.db.medal_standings().iter().take(15) {
                    let code = self
                        .db
                        // nagano-lint: allow(O001) — country codes are immutable after seeding; standings changes reach this fragment through its `data:medals:*` edge
                        .country(*c)
                        .map(|x| x.code)
                        .unwrap_or_else(|| c.to_string());
                    let _ = writeln!(
                        html,
                        "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
                        code, m.gold, m.silver, m.bronze
                    );
                }
                let _ = writeln!(html, "</table>");
            }
            FragmentKey::Headlines(day) => {
                deps.push(Dependency::weighted(
                    nagano_db::schema::today_data_key(day),
                    0.5,
                ));
                let _ = writeln!(html, "<ul class=\"headlines\">");
                for article in self.db.news_on_day(day).iter().take(8) {
                    deps.push(Dependency::new(article.id.data_key()));
                    let _ = writeln!(html, "<li>{}</li>", article.title);
                }
                let _ = writeln!(html, "</ul>");
            }
        }
        fragment_title(f)
    }
}

/// The fragment page's title, computable without touching the database —
/// plan mode needs it even when the fragment body comes from the cache.
fn fragment_title(f: FragmentKey) -> String {
    match f {
        FragmentKey::ResultTable(e) => format!("Results {}", e.0),
        FragmentKey::MedalTable => "Medal Table".into(),
        FragmentKey::Headlines(day) => format!("Headlines Day {day}"),
    }
}

fn phase_label(p: EventPhase) -> &'static str {
    match p {
        EventPhase::Scheduled => "scheduled",
        EventPhase::InProgress => "in progress",
        EventPhase::Final => "final",
    }
}

/// Nominal transfer size per page family — bodies are padded up to this so
/// the link model sees realistic byte counts (home pages carried ~55 KB of
/// markup + inline previews; the site-wide mean request was ~10 KB).
pub fn target_bytes(key: PageKey) -> usize {
    match key {
        PageKey::Home(_) => 55_000,
        PageKey::Sport(_) => 15_000,
        PageKey::Event(_) => 12_000,
        PageKey::Country(_) => 10_000,
        PageKey::Medals => 10_000,
        PageKey::Athlete(_) => 8_000,
        PageKey::NewsIndex(_) => 8_000,
        PageKey::News(_) => 6_000,
        PageKey::Welcome | PageKey::Nagano | PageKey::Fun | PageKey::Venue(_) => 5_000,
        PageKey::Fragment(FragmentKey::ResultTable(_)) => 3_000,
        PageKey::Fragment(FragmentKey::MedalTable) => 3_000,
        PageKey::Fragment(FragmentKey::Headlines(_)) => 2_000,
    }
}

fn finalize(key: PageKey, title: &str, inner: String) -> Bytes {
    let mut page = page_head(title);
    page.push_str(&inner);
    page.push('\n');
    // Pad with content filler to the family's nominal size (stands in for
    // the inline imagery the real pages carried).
    for _ in 0..filler_repeats(page.len(), target_bytes(key)) {
        page.push_str(FILLER);
    }
    page.push_str(PAGE_CLOSE);
    Bytes::from(page)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nagano_db::{seed_games, AthleteId, CountryId, GamesConfig, NewsArticle, NewsId};

    fn seeded() -> (Arc<OlympicDb>, nagano_db::EventId) {
        let db = Arc::new(OlympicDb::new());
        let (fs, _) = seed_games(&db, &GamesConfig::small());
        (db, fs)
    }

    #[test]
    fn result_fragment_depends_on_event_data() {
        let (db, _) = seeded();
        let r = Renderer::new(db);
        let ev = nagano_db::EventId(1);
        let out = r.render(PageKey::Fragment(FragmentKey::ResultTable(ev)));
        assert!(out
            .deps
            .iter()
            .any(|d| d.data_key == "data:event:1" && d.weight == 1.0));
        assert!(out.cost_ms > 10.0);
    }

    #[test]
    fn home_page_embeds_fragments_for_the_day() {
        let (db, fs) = seeded();
        let day = db.event(fs).unwrap().day;
        let r = Renderer::new(db);
        let out = r.render(PageKey::Home(day));
        let keys: Vec<&str> = out.deps.iter().map(|d| d.data_key.as_str()).collect();
        assert!(keys.contains(&format!("data:today:{day}").as_str()));
        assert!(keys.contains(&"page:/fragments/medals"));
        assert!(keys
            .iter()
            .any(|k| k.starts_with("page:/fragments/results/")));
        // Home page is padded to its nominal ~55 KB size.
        assert!(out.body.len() >= 50_000, "body {} bytes", out.body.len());
    }

    #[test]
    fn final_results_appear_on_home_page() {
        let (db, _) = seeded();
        let ev = db.events().into_iter().next().unwrap();
        let athletes = db.athletes_of_sport(ev.sport);
        let podium: Vec<(AthleteId, f64)> = athletes
            .iter()
            .take(3)
            .enumerate()
            .map(|(i, a)| (a.id, 100.0 - i as f64))
            .collect();
        db.record_results(ev.id, &podium, true, ev.day);
        let winner = db.athlete(podium[0].0).unwrap().name;
        let r = Renderer::new(db);
        let out = r.render(PageKey::Home(ev.day));
        let html = String::from_utf8(out.body.to_vec()).unwrap();
        assert!(html.contains(&format!("Gold: {winner}")), "missing winner");
    }

    #[test]
    fn country_page_softly_depends_on_medals() {
        let (db, _) = seeded();
        let r = Renderer::new(db);
        let out = r.render(PageKey::Country(CountryId(1)));
        let medal_dep = out
            .deps
            .iter()
            .find(|d| d.data_key == "data:medals:standings")
            .expect("medal dependency");
        assert!(medal_dep.weight < 1.0, "soft weight expected");
        assert!(out.deps.iter().any(|d| d.data_key == "data:country:1"));
    }

    #[test]
    fn static_pages_have_no_deps_and_low_cost() {
        let (db, _) = seeded();
        let r = Renderer::new(db);
        for key in [PageKey::Welcome, PageKey::Nagano, PageKey::Fun] {
            let out = r.render(key);
            assert!(out.deps.is_empty(), "{key} should be static");
            assert!(out.cost_ms < 10.0);
        }
    }

    #[test]
    fn news_pages_depend_on_their_article() {
        let (db, _) = seeded();
        db.publish_news(NewsArticle {
            id: NewsId(1),
            day: 2,
            title: "Opening day".into(),
            body: "The Games begin.".into(),
            about_event: None,
        });
        let r = Renderer::new(db);
        let out = r.render(PageKey::News(NewsId(1)));
        assert!(out.deps.iter().any(|d| d.data_key == "data:news:1"));
        let html = String::from_utf8(out.body.to_vec()).unwrap();
        assert!(html.contains("Opening day"));
        // Index page softly depends on each article.
        let idx = r.render(PageKey::NewsIndex(2));
        assert!(idx
            .deps
            .iter()
            .any(|d| d.data_key == "data:news:1" && d.weight < 1.0));
    }

    #[test]
    fn rendering_is_deterministic() {
        let (db, _) = seeded();
        let r = Renderer::new(db);
        let a = r.render(PageKey::Medals);
        let b = r.render(PageKey::Medals);
        assert_eq!(a.body, b.body);
        assert_eq!(a.deps, b.deps);
        assert_eq!(a.cost_ms, b.cost_ms);
    }

    #[test]
    fn bodies_meet_their_size_targets() {
        let (db, _) = seeded();
        let r = Renderer::new(db);
        for key in [
            PageKey::Home(2),
            PageKey::Event(nagano_db::EventId(1)),
            PageKey::Athlete(AthleteId(1)),
            PageKey::Medals,
        ] {
            let out = r.render(key);
            let target = target_bytes(key);
            assert!(
                out.body.len() >= target - 100 && out.body.len() <= target + 2048,
                "{key}: {} vs target {target}",
                out.body.len()
            );
        }
    }

    #[test]
    fn unknown_entities_render_gracefully() {
        let (db, _) = seeded();
        let r = Renderer::new(db);
        let out = r.render(PageKey::Athlete(AthleteId(9999)));
        let html = String::from_utf8(out.body.to_vec()).unwrap();
        assert!(html.contains("Unknown"));
    }

    #[test]
    fn simulated_cpu_burns_time() {
        let (db, _) = seeded();
        // Scale 0.1: a 120ms athlete page burns ~12ms.
        let r = Renderer::new(db).with_simulated_cpu(0.1);
        let start = std::time::Instant::now();
        r.render(PageKey::Athlete(AthleteId(1)));
        assert!(start.elapsed().as_millis() >= 8);
    }
}
