//! The 1996 vs 1998 site structures as navigation models (§3.1,
//! Figures 7–12).
//!
//! The paper's server logs showed 1996 users "spending too much time
//! looking for basic information": at least three requests to reach a
//! result page, no cross-links from leaf pages, navigation-only
//! intermediate pages among the most requested. The 1998 redesign added a
//! per-day home page carrying current results (">25% of the users found
//! the information they were looking for by examining the home page"),
//! organised content along four axes (sport/event/country/athlete), and
//! cross-linked every leaf. IBM estimated the 1996 design would have drawn
//! over 200M hits/day — more than 3× what the 1998 design actually peaked
//! at.
//!
//! We model a visitor *information need* (e.g. "the latest result of event
//! X") and count the requests spent satisfying it under each structure.

use nagano_simcore::DeterministicRng;

/// Which site design a visitor navigates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteStructure {
    /// The 1996 Atlanta hierarchy (Figure 7): deep, navigation-only
    /// interior pages, no cross-links.
    Design96,
    /// The 1998 Nagano hierarchy (Figure 11): per-day home pages carrying
    /// results, four content axes, cross-linked leaves.
    Design98,
}

/// Result of satisfying one information need.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NavOutcome {
    /// HTTP page requests issued.
    pub requests: u32,
    /// Whether the home page alone satisfied the need.
    pub satisfied_on_home: bool,
}

/// Navigation simulator for one structure.
#[derive(Debug, Clone)]
pub struct NavigationModel {
    structure: SiteStructure,
    /// Probability the per-day home page already shows what the visitor
    /// wants (1998 only; calibrated to the paper's ">25%").
    home_satisfaction: f64,
    /// Probability a visitor needs information from a *second* section
    /// after the first (cross-links make this cheap in 1998).
    follow_up: f64,
}

impl NavigationModel {
    /// Model with paper-calibrated parameters.
    pub fn new(structure: SiteStructure) -> Self {
        NavigationModel {
            structure,
            home_satisfaction: 0.28,
            follow_up: 0.35,
        }
    }

    /// Override the home-page satisfaction probability.
    pub fn with_home_satisfaction(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        self.home_satisfaction = p;
        self
    }

    /// The structure being modelled.
    pub fn structure(&self) -> SiteStructure {
        self.structure
    }

    /// Simulate one visitor need; returns the request count.
    pub fn simulate_need(&self, rng: &mut DeterministicRng) -> NavOutcome {
        match self.structure {
            SiteStructure::Design96 => {
                // Home → section index → sport → event page: the paper says
                // "at least three Web server requests were needed to
                // navigate to a result page"; visitors frequently
                // overshoot once (wrong event page, back, retry).
                let mut requests = 1 + 3; // home + three levels down
                if rng.chance(0.30) {
                    requests += 2; // wrong leaf, back out one level, retry
                }
                if rng.chance(self.follow_up) {
                    // No cross-links: a second need re-descends the tree
                    // from the section index.
                    requests += 3;
                }
                NavOutcome {
                    requests,
                    satisfied_on_home: false,
                }
            }
            SiteStructure::Design98 => {
                if rng.chance(self.home_satisfaction) {
                    // The day's home page carried the result.
                    return NavOutcome {
                        requests: 1,
                        satisfied_on_home: true,
                    };
                }
                // Direct section link from the home page: home + leaf.
                let mut requests = 2;
                if rng.chance(self.follow_up) {
                    // Cross-links: one more request, no re-descent.
                    requests += 1;
                }
                NavOutcome {
                    requests,
                    satisfied_on_home: false,
                }
            }
        }
    }

    /// Average requests per need over `n` simulated visitors, plus the
    /// fraction satisfied on the home page.
    pub fn average_requests(&self, n: usize, rng: &mut DeterministicRng) -> (f64, f64) {
        assert!(n > 0);
        let mut total = 0u64;
        let mut on_home = 0u64;
        for _ in 0..n {
            let o = self.simulate_need(rng);
            total += o.requests as u64;
            on_home += o.satisfied_on_home as u64;
        }
        (total as f64 / n as f64, on_home as f64 / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DeterministicRng {
        DeterministicRng::seed_from_u64(98)
    }

    #[test]
    fn design96_needs_at_least_four_requests() {
        let m = NavigationModel::new(SiteStructure::Design96);
        let mut r = rng();
        for _ in 0..1000 {
            let o = m.simulate_need(&mut r);
            assert!(o.requests >= 4);
            assert!(!o.satisfied_on_home);
        }
    }

    #[test]
    fn design98_can_satisfy_on_home_page() {
        let m = NavigationModel::new(SiteStructure::Design98);
        let mut r = rng();
        let (_, home_frac) = m.average_requests(20_000, &mut r);
        // Paper: "over 25% of the users found the information they were
        // looking for by examining the home page".
        assert!(home_frac > 0.25, "home fraction {home_frac}");
        assert!(home_frac < 0.32);
    }

    #[test]
    fn redesign_cuts_requests_by_about_3x() {
        let mut r = rng();
        let (avg96, _) =
            NavigationModel::new(SiteStructure::Design96).average_requests(20_000, &mut r);
        let (avg98, _) =
            NavigationModel::new(SiteStructure::Design98).average_requests(20_000, &mut r);
        let ratio = avg96 / avg98;
        assert!(
            (2.2..4.0).contains(&ratio),
            "96:{avg96:.2} 98:{avg98:.2} ratio {ratio:.2}"
        );
    }

    #[test]
    fn home_satisfaction_override() {
        let m = NavigationModel::new(SiteStructure::Design98).with_home_satisfaction(1.0);
        let mut r = rng();
        let o = m.simulate_need(&mut r);
        assert_eq!(o.requests, 1);
        assert!(o.satisfied_on_home);
    }

    #[test]
    fn deterministic_given_seed() {
        let m = NavigationModel::new(SiteStructure::Design98);
        let mut a = DeterministicRng::seed_from_u64(5);
        let mut b = DeterministicRng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(m.simulate_need(&mut a), m.simulate_need(&mut b));
        }
    }
}
