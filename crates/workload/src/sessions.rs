//! Session-level navigation: concrete page-request sequences for one
//! visitor under the 1996 and 1998 site structures (§3.1).
//!
//! Where [`nagano_pagegen::structure`] counts abstract requests per
//! information need, this module emits the *actual pages* a visitor
//! fetches, so log-style analyses can reproduce the paper's observations:
//! under the 1996 hierarchy, "intermediate pages required for navigation
//! were among the most frequently accessed"; under the 1998 design the
//! per-day home page absorbs visits.

use nagano_db::OlympicDb;
use nagano_pagegen::{PageKey, SiteStructure};
use nagano_simcore::DeterministicRng;

/// Generates concrete per-visit page sequences.
#[derive(Debug, Clone)]
pub struct SessionModel {
    structure: SiteStructure,
    /// Probability the 1998 home page satisfies the visit outright.
    home_satisfaction: f64,
    /// Probability of a follow-up information need.
    follow_up: f64,
    /// `(sport, event)` pairs a visit can target.
    targets: Vec<(nagano_db::SportId, nagano_db::EventId)>,
}

impl SessionModel {
    /// Build for a seeded database.
    pub fn new(db: &OlympicDb, structure: SiteStructure) -> Self {
        let targets = db.events().iter().map(|e| (e.sport, e.id)).collect();
        SessionModel {
            structure,
            home_satisfaction: 0.28,
            follow_up: 0.35,
            targets,
        }
    }

    /// The structure being generated.
    pub fn structure(&self) -> SiteStructure {
        self.structure
    }

    /// One visit: the pages fetched, in order. `day` selects the home
    /// page the visit enters through.
    pub fn visit(&self, day: u32, rng: &mut DeterministicRng) -> Vec<PageKey> {
        assert!(!self.targets.is_empty(), "no events to browse");
        let (sport, event) = self.targets[rng.index(self.targets.len())];
        let mut pages = vec![PageKey::Home(day)];
        match self.structure {
            SiteStructure::Design96 => {
                // Home → sports index (modelled as the Welcome/how-to
                // page) → sport page → event page; visitors overshoot to
                // a wrong event ~30% of the time and back out via the
                // sport page.
                pages.push(PageKey::Welcome);
                pages.push(PageKey::Sport(sport));
                if rng.chance(0.30) {
                    let (_, wrong) = self.targets[rng.index(self.targets.len())];
                    pages.push(PageKey::Event(wrong));
                    pages.push(PageKey::Sport(sport));
                }
                pages.push(PageKey::Event(event));
                if rng.chance(self.follow_up) {
                    // No cross-links: re-descend the tree for the second
                    // need.
                    let (sport2, event2) = self.targets[rng.index(self.targets.len())];
                    pages.push(PageKey::Welcome);
                    pages.push(PageKey::Sport(sport2));
                    pages.push(PageKey::Event(event2));
                }
            }
            SiteStructure::Design98 => {
                if rng.chance(self.home_satisfaction) {
                    // The per-day home page carried the result inline.
                    return pages;
                }
                // Direct link from the home page to the leaf.
                pages.push(PageKey::Event(event));
                if rng.chance(self.follow_up) {
                    // Cross-links from the leaf: one more request.
                    pages.push(match rng.index(3) {
                        0 => PageKey::Medals,
                        1 => PageKey::Sport(sport),
                        _ => {
                            let (_, event2) = self.targets[rng.index(self.targets.len())];
                            PageKey::Event(event2)
                        }
                    });
                }
            }
        }
        pages
    }

    /// Aggregate `n` visits: `(total_requests, per-page counts sorted by
    /// count desc)`.
    pub fn aggregate(
        &self,
        day: u32,
        n: usize,
        rng: &mut DeterministicRng,
    ) -> (u64, Vec<(PageKey, u64)>) {
        use rustc_hash::FxHashMap;
        let mut counts: FxHashMap<PageKey, u64> = FxHashMap::default();
        let mut total = 0u64;
        for _ in 0..n {
            for page in self.visit(day, rng) {
                total += 1;
                *counts.entry(page).or_insert(0) += 1;
            }
        }
        let mut sorted: Vec<(PageKey, u64)> = counts.into_iter().collect();
        sorted.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        (total, sorted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nagano_db::{seed_games, GamesConfig};

    fn db() -> OlympicDb {
        let db = OlympicDb::new();
        seed_games(&db, &GamesConfig::small());
        db
    }

    #[test]
    fn visits_start_at_the_home_page() {
        let db = db();
        let mut rng = DeterministicRng::seed_from_u64(1);
        for structure in [SiteStructure::Design96, SiteStructure::Design98] {
            let m = SessionModel::new(&db, structure);
            for _ in 0..200 {
                let visit = m.visit(5, &mut rng);
                assert_eq!(visit[0], PageKey::Home(5));
                assert!(!visit.is_empty());
            }
        }
    }

    #[test]
    fn design96_visits_are_deep_and_pass_through_navigation_pages() {
        let db = db();
        let m = SessionModel::new(&db, SiteStructure::Design96);
        let mut rng = DeterministicRng::seed_from_u64(2);
        let (total, counts) = m.aggregate(5, 5_000, &mut rng);
        let per_visit = total as f64 / 5_000.0;
        assert!(per_visit > 4.0, "96 visits too shallow: {per_visit}");
        // The pure-navigation Welcome page is among the top pages —
        // the paper's "intermediate pages ... among the most frequently
        // accessed".
        let top3: Vec<PageKey> = counts.iter().take(3).map(|&(k, _)| k).collect();
        assert!(top3.contains(&PageKey::Welcome), "top3 {top3:?}");
    }

    #[test]
    fn design98_visits_are_shallow_with_no_navigation_pages() {
        let db = db();
        let m = SessionModel::new(&db, SiteStructure::Design98);
        let mut rng = DeterministicRng::seed_from_u64(3);
        let (total, counts) = m.aggregate(5, 5_000, &mut rng);
        let per_visit = total as f64 / 5_000.0;
        assert!((1.5..2.5).contains(&per_visit), "98 depth {per_visit}");
        assert!(
            !counts.iter().any(|&(k, _)| k == PageKey::Welcome),
            "1998 visits never touch navigation-only pages"
        );
        // Roughly the calibrated share of visits end at the home page.
        let mut rng2 = DeterministicRng::seed_from_u64(30);
        let satisfied = (0..5_000)
            .filter(|_| m.visit(5, &mut rng2).len() == 1)
            .count();
        let frac = satisfied as f64 / 5_000.0;
        assert!(
            (0.24..0.33).contains(&frac),
            "home-satisfied fraction {frac}"
        );
        let _ = counts;
    }

    #[test]
    fn hit_ratio_between_designs_matches_the_projection_band() {
        let db = db();
        let mut rng = DeterministicRng::seed_from_u64(4);
        let m96 = SessionModel::new(&db, SiteStructure::Design96);
        let m98 = SessionModel::new(&db, SiteStructure::Design98);
        let (t96, _) = m96.aggregate(5, 20_000, &mut rng);
        let (t98, _) = m98.aggregate(5, 20_000, &mut rng);
        let ratio = t96 as f64 / t98 as f64;
        assert!((2.2..4.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn sessions_are_deterministic_per_seed() {
        let db = db();
        let m = SessionModel::new(&db, SiteStructure::Design96);
        let a = m.visit(3, &mut DeterministicRng::seed_from_u64(9));
        let b = m.visit(3, &mut DeterministicRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
