//! Client regions and the geographic request mix (Figure 23).

use nagano_simcore::DeterministicRng;
use serde::{Deserialize, Serialize};

/// Where a client request originates. Granularity matches the paper's
/// serving geography: four complexes (Schaumburg, Columbus, Bethesda,
/// Tokyo) serving these catchments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// United States & Canada, eastern half.
    UsEast,
    /// United States & Canada, central/western.
    UsWest,
    /// Japan.
    Japan,
    /// Europe (the paper measured UK ISPs).
    Europe,
    /// Australia / Oceania.
    Oceania,
    /// Rest of Asia and elsewhere.
    RestOfWorld,
}

impl Region {
    /// All regions, fixed order.
    pub const ALL: [Region; 6] = [
        Region::UsEast,
        Region::UsWest,
        Region::Japan,
        Region::Europe,
        Region::Oceania,
        Region::RestOfWorld,
    ];

    /// Offset of the region's local time from the simulation clock, in
    /// hours. The simulation clock runs on Japan time (the Games' local
    /// time).
    pub fn utc_offset_from_japan(self) -> i32 {
        match self {
            Region::Japan => 0,
            Region::UsEast => -14, // JST+9 vs EST-5
            Region::UsWest => -17, // vs PST-8
            Region::Europe => -9,  // vs GMT
            Region::Oceania => 2,  // vs AEDT+11
            Region::RestOfWorld => -1,
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Region::UsEast => "US-East",
            Region::UsWest => "US-West",
            Region::Japan => "Japan",
            Region::Europe => "Europe",
            Region::Oceania => "Oceania",
            Region::RestOfWorld => "Rest-of-world",
        }
    }
}

/// The geographic request mix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeoMix {
    shares: [f64; 6],
}

impl Default for GeoMix {
    fn default() -> Self {
        Self::nagano()
    }
}

impl GeoMix {
    /// Mix calibrated to Figure 23's breakdown: North America and Japan
    /// dominate, Europe next, then Oceania and the rest.
    pub fn nagano() -> Self {
        GeoMix {
            // UsEast, UsWest, Japan, Europe, Oceania, RestOfWorld
            shares: [0.24, 0.18, 0.28, 0.16, 0.06, 0.08],
        }
    }

    /// Custom mix (must be non-negative; normalised on construction).
    pub fn custom(shares: [f64; 6]) -> Self {
        let total: f64 = shares.iter().sum();
        assert!(total > 0.0, "shares must sum positive");
        let mut s = shares;
        for v in &mut s {
            assert!(*v >= 0.0);
            *v /= total;
        }
        GeoMix { shares: s }
    }

    /// Share of traffic for a region.
    pub fn share(&self, region: Region) -> f64 {
        self.shares[Region::ALL.iter().position(|&r| r == region).unwrap()]
    }

    /// Sample a region.
    pub fn sample(&self, rng: &mut DeterministicRng) -> Region {
        Region::ALL[rng.weighted_index(&self.shares)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mix_sums_to_one() {
        let mix = GeoMix::nagano();
        let total: f64 = Region::ALL.iter().map(|&r| mix.share(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn japan_and_us_dominate() {
        let mix = GeoMix::nagano();
        let us = mix.share(Region::UsEast) + mix.share(Region::UsWest);
        assert!(us > 0.35);
        assert!(mix.share(Region::Japan) > 0.2);
        assert!(mix.share(Region::Oceania) < 0.1);
    }

    #[test]
    fn sampling_tracks_shares() {
        let mix = GeoMix::nagano();
        let mut rng = DeterministicRng::seed_from_u64(23);
        let mut japan = 0u32;
        let n = 50_000;
        for _ in 0..n {
            if mix.sample(&mut rng) == Region::Japan {
                japan += 1;
            }
        }
        let frac = japan as f64 / n as f64;
        assert!((frac - 0.28).abs() < 0.02, "japan {frac}");
    }

    #[test]
    fn custom_mix_normalises() {
        let mix = GeoMix::custom([2.0, 2.0, 2.0, 2.0, 1.0, 1.0]);
        assert!((mix.share(Region::UsEast) - 0.2).abs() < 1e-9);
        assert!((mix.share(Region::Oceania) - 0.1).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn zero_mix_rejected() {
        let _ = GeoMix::custom([0.0; 6]);
    }

    #[test]
    fn offsets_are_sane() {
        assert_eq!(Region::Japan.utc_offset_from_japan(), 0);
        assert!(Region::UsEast.utc_offset_from_japan() < 0);
        assert!(Region::Oceania.utc_offset_from_japan() > 0);
    }
}
