//! The composite request model: how many requests arrive each minute, and
//! what each one asks for.
//!
//! rate(t) = day_total(day) × Σ_regions share_r · diurnal_r(t) × spike(t) / 1440
//!
//! `spike(t)` is a Gaussian bump around each marquee final (the Women's
//! Figure Skating free skate drove the audited 110,414 hits/minute record;
//! the Men's Ski Jumping final drove 98,000/minute). Page selection uses a
//! per-day popularity table: the current day's home page dominates, event
//! pages are boosted on their day, old home pages decay, and during a
//! spike most of the surge goes to the marquee's pages.

use std::sync::Arc;

use parking_lot::Mutex;
use rustc_hash::FxHashMap;

use nagano_db::OlympicDb;
use nagano_pagegen::{PageKey, PageRegistry};
use nagano_simcore::{DeterministicRng, LinkClass, SimTime};

use crate::calendar::GamesCalendar;
use crate::diurnal::DiurnalShape;
use crate::geo::{GeoMix, Region};

/// A marquee-event traffic spike.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Spike {
    /// Centre of the bump.
    pub at: SimTime,
    /// Peak multiplier added on top of the base rate (0.8 = +80%).
    pub magnitude: f64,
    /// Standard deviation of the bump in minutes.
    pub width_mins: f64,
    /// The event drawing the crowd.
    pub event: nagano_db::EventId,
    /// Home audience of the marquee: the surge traffic is dominated by
    /// this region (the ski-jump surge was Japanese — which is why Tokyo
    /// served 72,000 of the 98,000 requests that minute).
    pub home_region: Option<Region>,
}

/// One sampled request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestSample {
    /// Page requested.
    pub page: PageKey,
    /// Client region.
    pub region: Region,
    /// Client link technology.
    pub link: LinkClass,
}

/// The full request model.
pub struct RequestModel {
    registry: Arc<PageRegistry>,
    geo: GeoMix,
    diurnal: DiurnalShape,
    calendar: GamesCalendar,
    /// Divide paper-scale volumes by this (1000 → ~635k simulated
    /// requests for the whole Games).
    scale: f64,
    spikes: Vec<Spike>,
    marquee_sport: FxHashMap<nagano_db::EventId, nagano_db::SportId>,
    /// Per-day page CDF cache.
    day_tables: Mutex<FxHashMap<u32, Arc<DayTable>>>,
}

struct DayTable {
    cdf: Vec<f64>,
}

impl RequestModel {
    /// Build the model. Marquee spikes are derived from the seeded events
    /// with popularity ≥ 10 (the pinned figure-skating and ski-jumping
    /// finals).
    pub fn new(db: &OlympicDb, registry: Arc<PageRegistry>, scale: f64) -> Self {
        assert!(scale >= 1.0, "scale divides paper volumes");
        let mut spikes = Vec::new();
        let mut marquee_sport = FxHashMap::default();
        for ev in db.events() {
            if ev.popularity >= 10.0 {
                let home_region = if ev.name.contains("Ski Jumping") {
                    Some(Region::Japan)
                } else if ev.name.contains("Figure Skating") {
                    Some(Region::UsEast)
                } else {
                    None
                };
                spikes.push(Spike {
                    at: SimTime::at(ev.day, ev.hour, 0),
                    magnitude: ev.popularity / 15.0, // fs: ~1.7x extra, sj: ~1.0x
                    width_mins: 25.0,
                    event: ev.id,
                    home_region,
                });
                marquee_sport.insert(ev.id, ev.sport);
            }
        }
        RequestModel {
            registry,
            geo: GeoMix::nagano(),
            diurnal: DiurnalShape::web_1998(),
            calendar: GamesCalendar::nagano(),
            scale,
            spikes,
            marquee_sport,
            day_tables: Mutex::new(FxHashMap::default()),
        }
    }

    /// Override the calendar (tests/ablation).
    pub fn with_calendar(mut self, calendar: GamesCalendar) -> Self {
        self.calendar = calendar;
        self
    }

    /// Override the geographic mix.
    pub fn with_geo(mut self, geo: GeoMix) -> Self {
        self.geo = geo;
        self
    }

    /// The scale divisor.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The calendar in use.
    pub fn calendar(&self) -> &GamesCalendar {
        &self.calendar
    }

    /// The geographic mix in use.
    pub fn geo(&self) -> &GeoMix {
        &self.geo
    }

    /// The configured spikes.
    pub fn spikes(&self) -> &[Spike] {
        &self.spikes
    }

    /// The diurnal multiplier blended over regions at `t`.
    pub fn diurnal_mixture(&self, t: SimTime) -> f64 {
        Region::ALL
            .iter()
            .map(|&r| self.geo.share(r) * self.diurnal.multiplier(r, t))
            .sum()
    }

    /// The spike multiplier at `t` (≥ 1).
    pub fn spike_multiplier(&self, t: SimTime) -> f64 {
        let mut m = 1.0;
        for s in &self.spikes {
            let dt_min = (t.as_secs_f64() - s.at.as_secs_f64()) / 60.0;
            m += s.magnitude * (-(dt_min * dt_min) / (2.0 * s.width_mins * s.width_mins)).exp();
        }
        m
    }

    /// Expected (scaled) requests arriving in the minute containing `t`.
    pub fn rate_per_minute(&self, t: SimTime) -> f64 {
        let day_total = self.calendar.day_millions(t.day()) * 1.0e6 / self.scale;
        day_total * self.diurnal_mixture(t) * self.spike_multiplier(t) / 1440.0
    }

    /// The un-scaled (paper units) rate for reporting.
    pub fn rate_per_minute_paper(&self, t: SimTime) -> f64 {
        self.rate_per_minute(t) * self.scale
    }

    /// Sample a Poisson count of requests for the minute containing `t`
    /// (normal approximation above λ=50, exact inversion below).
    pub fn sample_minute_count(&self, t: SimTime, rng: &mut DeterministicRng) -> u64 {
        let lambda = self.rate_per_minute(t);
        sample_poisson(lambda, rng)
    }

    /// Sample one request at `t`.
    pub fn sample_request(&self, t: SimTime, rng: &mut DeterministicRng) -> RequestSample {
        // During a marquee spike, the surge component of the traffic comes
        // from the event's home audience.
        let region = match self.spike_home_region(t, rng) {
            Some(r) => r,
            None => {
                // Region ∝ share × its diurnal activity right now.
                let weights: Vec<f64> = Region::ALL
                    .iter()
                    .map(|&r| self.geo.share(r) * self.diurnal.multiplier(r, t))
                    .collect();
                Region::ALL[rng.weighted_index(&weights)]
            }
        };
        let page = self.sample_page(t, rng);
        let link = sample_link(rng);
        RequestSample { page, region, link }
    }

    /// If `t` falls in a biased spike window, return the home region with
    /// probability equal to the surge's share of current traffic.
    fn spike_home_region(&self, t: SimTime, rng: &mut DeterministicRng) -> Option<Region> {
        for s in &self.spikes {
            let Some(home) = s.home_region else { continue };
            let dt_min = (t.as_secs_f64() - s.at.as_secs_f64()) / 60.0;
            if dt_min.abs() < 2.0 * s.width_mins {
                let bump =
                    s.magnitude * (-(dt_min * dt_min) / (2.0 * s.width_mins * s.width_mins)).exp();
                // The surge is `bump/(1+bump)` of traffic; ~92% of it is
                // the home audience.
                if rng.chance(bump / (1.0 + bump) * 0.92) {
                    return Some(home);
                }
            }
        }
        None
    }

    /// Sample just a page at `t`.
    pub fn sample_page(&self, t: SimTime, rng: &mut DeterministicRng) -> PageKey {
        // During a spike, the surge concentrates on the marquee pages.
        for s in &self.spikes {
            let dt_min = ((t.as_secs_f64() - s.at.as_secs_f64()) / 60.0).abs();
            if dt_min < 2.0 * s.width_mins {
                let bump =
                    s.magnitude * (-(dt_min * dt_min) / (2.0 * s.width_mins * s.width_mins)).exp();
                let p_hot = bump / (1.0 + bump);
                if rng.chance(p_hot) {
                    let sport = self.marquee_sport[&s.event];
                    return match rng.index(4) {
                        0 => PageKey::Home(t.day()),
                        1 => PageKey::Event(s.event),
                        2 => PageKey::Sport(sport),
                        _ => PageKey::Medals,
                    };
                }
            }
        }
        let table = self.day_table(t.day());
        let u = rng.f64();
        let idx = match table
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("finite"))
        {
            Ok(i) => (i + 1).min(table.cdf.len() - 1),
            Err(i) => i.min(table.cdf.len() - 1),
        };
        self.registry.pages()[idx].0
    }

    /// Unnormalised per-page popularity weights on `day` (static registry
    /// weight × day-of-games modifier), in registry order. This is the
    /// distribution [`RequestModel::sample_page`] draws from outside spike
    /// windows; the `hybrid` experiment uses it to report how much request
    /// traffic the hottest fraction of pages captures.
    pub fn popularity_weights(&self, day: u32) -> Vec<(PageKey, f64)> {
        self.registry
            .pages()
            .iter()
            .map(|(key, meta)| (*key, meta.weight * day_modifier(*key, day)))
            .collect()
    }

    fn day_table(&self, day: u32) -> Arc<DayTable> {
        let mut tables = self.day_tables.lock();
        Arc::clone(tables.entry(day).or_insert_with(|| {
            let mut acc = 0.0;
            let mut cdf = Vec::with_capacity(self.registry.len());
            for (key, meta) in self.registry.pages() {
                acc += meta.weight * day_modifier(*key, day);
                cdf.push(acc);
            }
            assert!(acc > 0.0, "empty popularity table");
            for v in &mut cdf {
                *v /= acc;
            }
            if let Some(last) = cdf.last_mut() {
                *last = 1.0;
            }
            Arc::new(DayTable { cdf })
        }))
    }
}

/// Day-of-games popularity modulation for a page.
fn day_modifier(key: PageKey, day: u32) -> f64 {
    match key {
        // Clients overwhelmingly read the *current* day's home page; old
        // days decay fast, future days do not exist yet.
        PageKey::Home(d)
        | PageKey::NewsIndex(d)
        | PageKey::Fragment(nagano_pagegen::FragmentKey::Headlines(d)) => {
            if d > day {
                0.0
            } else {
                1.0 / (1.0 + 2.0 * (day - d) as f64).powi(2)
            }
        }
        PageKey::News(id) => {
            // News ids encode their publication day (day*1000+seq).
            let published = id.0 / 1_000;
            if published > day {
                0.0
            } else {
                1.0 / (1.0 + (day - published) as f64)
            }
        }
        _ => 1.0,
    }
}

fn sample_link(rng: &mut DeterministicRng) -> LinkClass {
    // 1998 client mix: modems dominate.
    let r = rng.f64();
    if r < 0.62 {
        LinkClass::Modem28_8
    } else if r < 0.80 {
        LinkClass::Modem56
    } else if r < 0.90 {
        LinkClass::Isdn64
    } else {
        LinkClass::T1
    }
}

/// Sample a Poisson deviate.
pub fn sample_poisson(lambda: f64, rng: &mut DeterministicRng) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 50.0 {
        // Knuth inversion.
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.f64();
            if p <= l {
                return k;
            }
            k += 1;
            if k > 10_000 {
                return k; // numerical guard
            }
        }
    }
    // Normal approximation with continuity correction.
    let x = lambda + lambda.sqrt() * rng.normal() + 0.5;
    x.max(0.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use nagano_db::{seed_games, GamesConfig};

    fn model(scale: f64) -> (Arc<OlympicDb>, RequestModel) {
        let db = Arc::new(OlympicDb::new());
        seed_games(&db, &GamesConfig::full());
        let registry = Arc::new(PageRegistry::build(&db, 16));
        let model = RequestModel::new(&db, registry, scale);
        (db, model)
    }

    #[test]
    fn daily_totals_track_the_calendar() {
        let (_, m) = model(1000.0);
        // Integrate the rate over day 7 in 10-minute steps.
        let mut total = 0.0;
        for step in 0..144 {
            let t = SimTime::at(7, 0, 0) + nagano_simcore::SimDuration::from_mins(step * 10);
            total += m.rate_per_minute(t) * 10.0;
        }
        let expected = 56.8e6 / 1000.0;
        let err = (total - expected).abs() / expected;
        assert!(err < 0.15, "day-7 total {total:.0} vs {expected:.0}");
    }

    #[test]
    fn marquee_spikes_exist_and_peak_on_their_days() {
        let (db, m) = model(1000.0);
        assert_eq!(m.spikes().len(), 2);
        let fs = m
            .spikes()
            .iter()
            .max_by(|a, b| a.magnitude.partial_cmp(&b.magnitude).unwrap())
            .unwrap();
        assert_eq!(db.event(fs.event).unwrap().day, 14);
        assert!(m.spike_multiplier(fs.at) > 2.5);
        // Far from any spike the multiplier is ~1.
        assert!((m.spike_multiplier(SimTime::at(2, 3, 0)) - 1.0).abs() < 0.05);
    }

    #[test]
    fn peak_minute_is_on_day_14_and_dwarfs_the_average() {
        let (_, m) = model(1000.0);
        // Scan every 5 minutes of the Games for the max paper-scale rate.
        let mut peak = (SimTime::ZERO, 0.0);
        for mins in (0..16 * 1440).step_by(5) {
            let t = SimTime::from_mins(mins as u64);
            let r = m.rate_per_minute_paper(t);
            if r > peak.1 {
                peak = (t, r);
            }
        }
        assert_eq!(peak.0.day(), 14, "peak at {}", peak.0);
        // Paper: 110,414 hits in the peak minute.
        assert!(
            (80_000.0..150_000.0).contains(&peak.1),
            "peak rate {:.0}",
            peak.1
        );
    }

    #[test]
    fn page_sampling_prefers_current_home_page() {
        let (_, m) = model(1000.0);
        let mut rng = DeterministicRng::seed_from_u64(4);
        let t = SimTime::at(5, 12, 0);
        let mut home_today = 0;
        let mut home_old = 0;
        let n = 20_000;
        for _ in 0..n {
            match m.sample_page(t, &mut rng) {
                PageKey::Home(5) => home_today += 1,
                PageKey::Home(_) => home_old += 1,
                _ => {}
            }
        }
        assert!(
            home_today > home_old * 3,
            "today {home_today} old {home_old}"
        );
        assert!(home_today as f64 / n as f64 > 0.10);
    }

    #[test]
    fn future_pages_are_never_requested() {
        let (_, m) = model(1000.0);
        let mut rng = DeterministicRng::seed_from_u64(9);
        let t = SimTime::at(3, 15, 0);
        for _ in 0..5_000 {
            match m.sample_page(t, &mut rng) {
                PageKey::Home(d) | PageKey::NewsIndex(d) => assert!(d <= 3, "future day {d}"),
                _ => {}
            }
        }
    }

    #[test]
    fn spike_traffic_concentrates_on_marquee_pages() {
        let (db, m) = model(1000.0);
        let fs = m.spikes()[m
            .spikes()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.magnitude.partial_cmp(&b.1.magnitude).unwrap())
            .unwrap()
            .0];
        let mut rng = DeterministicRng::seed_from_u64(12);
        let mut marquee_hits = 0;
        let n = 10_000;
        let sport = db.event(fs.event).unwrap().sport;
        for _ in 0..n {
            match m.sample_page(fs.at, &mut rng) {
                PageKey::Event(e) if e == fs.event => marquee_hits += 1,
                PageKey::Sport(s) if s == sport => marquee_hits += 1,
                PageKey::Home(14) | PageKey::Medals => marquee_hits += 1,
                _ => {}
            }
        }
        assert!(
            marquee_hits as f64 / n as f64 > 0.5,
            "marquee share {}",
            marquee_hits as f64 / n as f64
        );
    }

    #[test]
    fn request_samples_cover_regions_and_links() {
        use std::collections::HashSet;
        let (_, m) = model(1000.0);
        let mut rng = DeterministicRng::seed_from_u64(2);
        let mut regions = HashSet::new();
        let mut links = HashSet::new();
        for _ in 0..5_000 {
            let s = m.sample_request(SimTime::at(6, 20, 0), &mut rng);
            regions.insert(s.region);
            links.insert(s.link);
        }
        assert!(regions.len() >= 5);
        assert!(links.len() >= 3);
    }

    #[test]
    fn poisson_sampler_moments() {
        let mut rng = DeterministicRng::seed_from_u64(77);
        for &lambda in &[3.0, 40.0, 500.0] {
            let n = 20_000;
            let mean: f64 = (0..n)
                .map(|_| sample_poisson(lambda, &mut rng) as f64)
                .sum::<f64>()
                / n as f64;
            assert!(
                (mean - lambda).abs() < lambda * 0.05 + 0.5,
                "lambda {lambda} mean {mean}"
            );
        }
        assert_eq!(sample_poisson(0.0, &mut rng), 0);
    }

    #[test]
    fn minute_counts_follow_the_rate() {
        let (_, m) = model(100.0);
        let mut rng = DeterministicRng::seed_from_u64(31);
        let t = SimTime::at(7, 20, 0);
        let lambda = m.rate_per_minute(t);
        let n = 200;
        let mean: f64 = (0..n)
            .map(|_| m.sample_minute_count(t, &mut rng) as f64)
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean - lambda).abs() / lambda < 0.05,
            "mean {mean} λ {lambda}"
        );
    }
}
