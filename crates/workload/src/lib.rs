//! Workload models for the 16-day Games: who requests what, when, from
//! where — and when the databases change.
//!
//! Calibrated against §5 of the paper:
//! * 634.7M requests over 16 days; peak day (7) 56.8M; peak minute
//!   110,414 around the Women's Figure Skating free skate (day 14);
//!   98,000/min during the Men's Ski Jumping finals (day 10).
//! * strong diurnal cycles per geography (Figure 18);
//! * geographic mix across four serving complexes (Figure 23);
//! * ~10 KB mean transfer (Figure 21: a daily terabyte-scale byte volume).
//!
//! Modules:
//! * [`geo`] — client regions and the geographic mix.
//! * [`diurnal`] — hour-of-day activity shapes per region.
//! * [`calendar`] — day weights across the Games, with marquee-event
//!   spikes.
//! * [`requests`] — the composite request-rate model and per-request
//!   sampler (page, region, link class).
//! * [`sessions`] — concrete per-visit page sequences under the 1996 and
//!   1998 site structures.
//! * [`updates`] — the database update schedule: partial/final results per
//!   event, news, photos.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calendar;
pub mod diurnal;
pub mod geo;
pub mod requests;
pub mod sessions;
pub mod updates;

pub use calendar::GamesCalendar;
pub use diurnal::DiurnalShape;
pub use geo::{GeoMix, Region};
pub use requests::{RequestModel, RequestSample};
pub use sessions::SessionModel;
pub use updates::{ScheduledUpdate, UpdateKind, UpdateSchedule};
