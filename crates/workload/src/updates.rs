//! The database update schedule: when results, news, and photos arrive.
//!
//! Results flowed from venue scoring systems into the master database as
//! events progressed: intermediate standings during competition, final
//! standings (and medals) at the end. §3.1: up to 58,000 pages were
//! regenerated on the busiest day, an average of 20,000/day, and pages
//! reflected new results "within a maximum of sixty seconds".

use std::sync::Arc;

use nagano_db::{AthleteId, EventId, NewsArticle, NewsId, OlympicDb, Photo, PhotoId, Transaction};
use nagano_simcore::{DeterministicRng, SimTime};

/// What kind of update arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateKind {
    /// Result standings for an event; `is_final` awards medals.
    Results {
        /// The event.
        event: EventId,
        /// Whether these are the final standings.
        is_final: bool,
    },
    /// An editorial news story.
    News {
        /// Sequence number within the day.
        seq: u32,
        /// Event the story covers, if any.
        about: Option<EventId>,
    },
    /// A classified photo.
    Photo {
        /// Event depicted.
        event: EventId,
        /// Sequence number for the event.
        seq: u32,
    },
}

/// One scheduled database update.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledUpdate {
    /// When the update reaches the master database.
    pub at: SimTime,
    /// Day of the Games (1-based).
    pub day: u32,
    /// The payload kind.
    pub kind: UpdateKind,
}

/// The full Games update schedule, sorted by time.
#[derive(Debug, Clone, Default)]
pub struct UpdateSchedule {
    updates: Vec<ScheduledUpdate>,
}

impl UpdateSchedule {
    /// Generate the schedule for a seeded database.
    ///
    /// Per event: two intermediate result postings in the hour before the
    /// final, then the final standings on the hour. Per day: a morning and
    /// an evening news story (plus one per finished marquee event), and a
    /// photo shortly after each final.
    pub fn generate(db: &OlympicDb, rng: &mut DeterministicRng) -> Self {
        let mut updates = Vec::new();
        for event in db.events() {
            let final_at = SimTime::at(event.day, event.hour, rng.index(10) as u32);
            for (k, minutes_before) in [(0u32, 40u32), (1, 20)] {
                let at = final_at - nagano_simcore::SimDuration::from_mins(minutes_before as u64);
                let _ = k;
                updates.push(ScheduledUpdate {
                    at,
                    day: event.day,
                    kind: UpdateKind::Results {
                        event: event.id,
                        is_final: false,
                    },
                });
            }
            updates.push(ScheduledUpdate {
                at: final_at,
                day: event.day,
                kind: UpdateKind::Results {
                    event: event.id,
                    is_final: true,
                },
            });
            // Photo desk files a classified shot ~15 minutes after the
            // final; marquee events also get a story.
            updates.push(ScheduledUpdate {
                at: final_at + nagano_simcore::SimDuration::from_mins(15),
                day: event.day,
                kind: UpdateKind::Photo {
                    event: event.id,
                    seq: 0,
                },
            });
            if event.popularity >= 10.0 {
                updates.push(ScheduledUpdate {
                    at: final_at + nagano_simcore::SimDuration::from_mins(25),
                    day: event.day,
                    kind: UpdateKind::News {
                        seq: 90 + event.id.0 % 10,
                        about: Some(event.id),
                    },
                });
            }
        }
        // Editorial cadence: morning + evening stories every day.
        let days = db.events().iter().map(|e| e.day).max().unwrap_or(1);
        for day in 1..=days {
            for (seq, hour) in [(0u32, 8u32), (1, 21)] {
                updates.push(ScheduledUpdate {
                    at: SimTime::at(day, hour, rng.index(60) as u32),
                    day,
                    kind: UpdateKind::News { seq, about: None },
                });
            }
        }
        updates.sort_by_key(|u| u.at);
        UpdateSchedule { updates }
    }

    /// The updates, time-sorted.
    pub fn updates(&self) -> &[ScheduledUpdate] {
        &self.updates
    }

    /// Number of updates.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// Updates scheduled on a given day.
    pub fn on_day(&self, day: u32) -> impl Iterator<Item = &ScheduledUpdate> {
        self.updates.iter().filter(move |u| u.day == day)
    }

    /// Apply one update to the database, committing a transaction.
    ///
    /// For results, placements are drawn from the event's sport entry list
    /// — 8 to 30 athletes, matching the fan-out that made one cross-country
    /// update touch 128 pages.
    pub fn apply(
        update: &ScheduledUpdate,
        db: &OlympicDb,
        rng: &mut DeterministicRng,
    ) -> Arc<Transaction> {
        match update.kind {
            UpdateKind::Results { event, is_final } => {
                let ev = db.event(event).expect("scheduled event exists");
                let pool = db.athletes_of_sport(ev.sport);
                assert!(!pool.is_empty(), "sport without athletes");
                let n = (8 + rng.index(23)).min(pool.len());
                // Deterministic shuffle-by-selection of n distinct athletes.
                let mut picked: Vec<AthleteId> = Vec::with_capacity(n);
                let mut indices: Vec<usize> = (0..pool.len()).collect();
                for k in 0..n {
                    let j = k + rng.index(indices.len() - k);
                    indices.swap(k, j);
                    picked.push(pool[indices[k]].id);
                }
                let placements: Vec<(AthleteId, f64)> = picked
                    .iter()
                    .enumerate()
                    .map(|(i, &a)| (a, 100.0 - i as f64 - rng.f64()))
                    .collect();
                db.record_results(event, &placements, is_final, update.day)
            }
            UpdateKind::News { seq, about } => {
                let id = NewsId(update.day * 1_000 + seq);
                db.publish_news(NewsArticle {
                    id,
                    day: update.day,
                    title: match about {
                        Some(ev) => format!("Drama at event {}", ev.0),
                        None => format!("Day {} round-up #{}", update.day, seq),
                    },
                    body: "Full report from our correspondents in Nagano.".into(),
                    about_event: about,
                })
            }
            UpdateKind::Photo { event, seq } => db.add_photo(Photo {
                id: PhotoId(event.0 * 100 + seq),
                day: update.day,
                about_event: Some(event),
                bytes: 30_000 + rng.index(50_000) as u32,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nagano_db::{seed_games, GamesConfig};

    fn setup() -> (Arc<OlympicDb>, UpdateSchedule, DeterministicRng) {
        let db = Arc::new(OlympicDb::new());
        seed_games(&db, &GamesConfig::small());
        let mut rng = DeterministicRng::seed_from_u64(11);
        let sched = UpdateSchedule::generate(&db, &mut rng);
        (db, sched, rng)
    }

    #[test]
    fn schedule_is_time_sorted_and_complete() {
        let (db, sched, _) = setup();
        assert!(!sched.is_empty());
        for w in sched.updates().windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        // 3 result postings + 1 photo per event, plus ≥2 news per day.
        let n_events = db.events().len();
        assert!(sched.len() >= n_events * 4 + 2 * 14);
    }

    #[test]
    fn each_event_gets_two_partials_then_a_final() {
        let (db, sched, _) = setup();
        let ev = db.events()[0].id;
        let mut postings: Vec<(SimTime, bool)> = sched
            .updates()
            .iter()
            .filter_map(|u| match u.kind {
                UpdateKind::Results { event, is_final } if event == ev => Some((u.at, is_final)),
                _ => None,
            })
            .collect();
        postings.sort();
        assert_eq!(postings.len(), 3);
        assert_eq!(
            postings.iter().map(|&(_, f)| f).collect::<Vec<_>>(),
            vec![false, false, true]
        );
    }

    #[test]
    fn applying_results_records_rows_and_medals() {
        let (db, sched, mut rng) = setup();
        let final_update = sched
            .updates()
            .iter()
            .find(|u| matches!(u.kind, UpdateKind::Results { is_final: true, .. }))
            .copied()
            .unwrap();
        let txn = UpdateSchedule::apply(&final_update, &db, &mut rng);
        assert!(txn.changes.len() >= 8, "changes {}", txn.changes.len());
        let standings = db.medal_standings();
        assert!(standings.iter().any(|(_, m)| m.gold > 0));
    }

    #[test]
    fn applying_full_schedule_is_clean() {
        let (db, sched, mut rng) = setup();
        for u in sched.updates() {
            UpdateSchedule::apply(u, &db, &mut rng);
        }
        let (_, _, _, _, results, news, photos) = db.counts();
        assert!(results > 0);
        assert!(news >= 28, "news {news}");
        assert_eq!(photos, db.events().len());
        assert_eq!(db.log().len(), sched.len());
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let db = Arc::new(OlympicDb::new());
        seed_games(&db, &GamesConfig::small());
        let a = UpdateSchedule::generate(&db, &mut DeterministicRng::seed_from_u64(3));
        let b = UpdateSchedule::generate(&db, &mut DeterministicRng::seed_from_u64(3));
        assert_eq!(a.updates(), b.updates());
    }

    #[test]
    fn on_day_filters() {
        let (_, sched, _) = setup();
        let day2: Vec<_> = sched.on_day(2).collect();
        assert!(day2.iter().all(|u| u.day == 2));
        assert!(!day2.is_empty());
    }
}
