//! Day-by-day request volumes across the Games (Figure 20).
//!
//! Calibrated to the paper: 634.7M requests over 16 days, peaking at
//! 56.8M on Day 7 (Friday, Feb 13), with a secondary swell around the
//! Day-10 ski-jumping and Day-14 figure-skating marquees and a tail-off
//! after the closing weekend.

/// Daily request totals in millions, paper scale.
#[derive(Debug, Clone)]
pub struct GamesCalendar {
    day_millions: Vec<f64>,
}

impl Default for GamesCalendar {
    fn default() -> Self {
        Self::nagano()
    }
}

impl GamesCalendar {
    /// The Nagano 1998 calibration.
    pub fn nagano() -> Self {
        GamesCalendar {
            day_millions: vec![
                22.0, 27.0, 32.0, 36.0, 42.0, 48.0, 56.8, 50.0, 44.0, 48.0, 40.0, 38.0, 42.0, 47.0,
                36.0, 25.9,
            ],
        }
    }

    /// Uniform calendar (for tests/ablation).
    pub fn uniform(days: u32, millions_per_day: f64) -> Self {
        GamesCalendar {
            day_millions: vec![millions_per_day; days as usize],
        }
    }

    /// Number of days.
    pub fn days(&self) -> u32 {
        self.day_millions.len() as u32
    }

    /// Requests (millions) on 1-based `day`; 0 outside the Games.
    pub fn day_millions(&self, day: u32) -> f64 {
        if day == 0 {
            return 0.0;
        }
        self.day_millions
            .get(day as usize - 1)
            .copied()
            .unwrap_or(0.0)
    }

    /// Total over the Games, millions.
    pub fn total_millions(&self) -> f64 {
        self.day_millions.iter().sum()
    }

    /// The (1-based) peak day and its volume.
    pub fn peak_day(&self) -> (u32, f64) {
        self.day_millions
            .iter()
            .copied()
            .enumerate()
            .fold(
                (1, 0.0),
                |best, (i, v)| {
                    if v > best.1 {
                        (i as u32 + 1, v)
                    } else {
                        best
                    }
                },
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_the_paper() {
        let c = GamesCalendar::nagano();
        assert_eq!(c.days(), 16);
        assert!(
            (c.total_millions() - 634.7).abs() < 0.1,
            "{}",
            c.total_millions()
        );
        let (day, peak) = c.peak_day();
        assert_eq!(day, 7);
        assert!((peak - 56.8).abs() < 1e-9);
    }

    #[test]
    fn every_1998_day_out_draws_the_1996_peak() {
        // §5: the 1996 site peaked at 17M/day, "fewer than any day for the
        // 1998 Olympic Games".
        let c = GamesCalendar::nagano();
        for day in 1..=16 {
            assert!(c.day_millions(day) > 17.0, "day {day}");
        }
    }

    #[test]
    fn out_of_range_days_are_zero() {
        let c = GamesCalendar::nagano();
        assert_eq!(c.day_millions(0), 0.0);
        assert_eq!(c.day_millions(17), 0.0);
    }

    #[test]
    fn uniform_calendar() {
        let c = GamesCalendar::uniform(4, 10.0);
        assert_eq!(c.days(), 4);
        assert_eq!(c.total_millions(), 40.0);
        assert_eq!(c.peak_day().0, 1);
    }
}
