//! Hour-of-day activity shapes (Figure 18).
//!
//! Each region browses mostly during its local daytime and evening; the
//! Games ran on Japan time, so the US sites saw their load maxima many
//! hours after results were posted. The shape below is the classic
//! two-hump web-traffic curve: a daytime plateau, a lunch bump, and an
//! evening peak, with a deep overnight trough.

use crate::geo::Region;
use nagano_simcore::SimTime;

/// Relative activity by local hour, normalised to mean 1.0 over 24h.
#[derive(Debug, Clone)]
pub struct DiurnalShape {
    weights: [f64; 24],
}

impl Default for DiurnalShape {
    fn default() -> Self {
        Self::web_1998()
    }
}

impl DiurnalShape {
    /// The 1998 consumer-web shape: office hours + evening modem peak.
    pub fn web_1998() -> Self {
        // Raw per-local-hour activity levels (arbitrary units).
        let raw: [f64; 24] = [
            0.35, 0.25, 0.18, 0.14, 0.12, 0.15, // 00-05: overnight trough
            0.25, 0.45, 0.80, 1.10, 1.25, 1.30, // 06-11: morning ramp
            1.40, 1.30, 1.25, 1.30, 1.35, 1.45, // 12-17: day plateau
            1.60, 1.85, 2.00, 1.80, 1.20, 0.65, // 18-23: evening peak
        ];
        Self::from_raw(raw)
    }

    /// Build from raw hour levels (normalised to mean 1).
    pub fn from_raw(raw: [f64; 24]) -> Self {
        let mean: f64 = raw.iter().sum::<f64>() / 24.0;
        assert!(mean > 0.0);
        let mut weights = raw;
        for w in &mut weights {
            assert!(*w >= 0.0);
            *w /= mean;
        }
        DiurnalShape { weights }
    }

    /// Multiplier for a *local* hour.
    pub fn at_local_hour(&self, hour: u32) -> f64 {
        self.weights[(hour % 24) as usize]
    }

    /// Multiplier for a region at simulation (Japan) time, linearly
    /// interpolated between hours so rates are continuous.
    pub fn multiplier(&self, region: Region, t: SimTime) -> f64 {
        let offset = region.utc_offset_from_japan();
        let local_min = (t.minute_of_day() as i64 + offset as i64 * 60).rem_euclid(24 * 60) as u32;
        let h0 = local_min / 60;
        let frac = (local_min % 60) as f64 / 60.0;
        let a = self.at_local_hour(h0);
        let b = self.at_local_hour((h0 + 1) % 24);
        a + (b - a) * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalised_to_mean_one() {
        let s = DiurnalShape::web_1998();
        let mean: f64 = (0..24).map(|h| s.at_local_hour(h)).sum::<f64>() / 24.0;
        assert!((mean - 1.0).abs() < 1e-9);
    }

    #[test]
    fn evening_peak_exceeds_overnight_trough() {
        let s = DiurnalShape::web_1998();
        assert!(s.at_local_hour(20) > 3.0 * s.at_local_hour(4));
    }

    #[test]
    fn japan_peak_is_japan_evening() {
        let s = DiurnalShape::web_1998();
        // 20:00 Japan time — simulation clock is Japan local.
        let evening = s.multiplier(Region::Japan, SimTime::at(1, 20, 0));
        let night = s.multiplier(Region::Japan, SimTime::at(1, 4, 0));
        assert!(evening > night * 3.0);
    }

    #[test]
    fn us_peak_is_shifted() {
        let s = DiurnalShape::web_1998();
        // 20:00 US-East local = 10:00 Japan time next day.
        let us_evening = s.multiplier(Region::UsEast, SimTime::at(1, 10, 0));
        let us_overnight = s.multiplier(Region::UsEast, SimTime::at(1, 18, 0)); // 04:00 EST
        assert!(
            us_evening > us_overnight * 2.5,
            "{us_evening} vs {us_overnight}"
        );
    }

    #[test]
    fn interpolation_is_continuous() {
        let s = DiurnalShape::web_1998();
        let a = s.multiplier(Region::Japan, SimTime::at(1, 11, 59));
        let b = s.multiplier(Region::Japan, SimTime::at(1, 12, 0));
        assert!((a - b).abs() < 0.05, "{a} vs {b}");
    }

    #[test]
    fn from_raw_rejects_zero_mean() {
        let result = std::panic::catch_unwind(|| DiurnalShape::from_raw([0.0; 24]));
        assert!(result.is_err());
    }
}
