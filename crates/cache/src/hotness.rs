//! Per-page EWMA access-frequency tracking ("hotness").
//!
//! The paper's trigger monitor did not treat all stale pages alike:
//! "frequently accessed obsolete objects are generally updated in the
//! cache in place", while cold objects could simply be invalidated. To
//! make that split deterministic and measurable, [`HotnessTracker`] keeps
//! one exponentially weighted moving average per page, folded once per
//! sim minute from the caches' window-hit counters:
//!
//! ```text
//! H(m) = (1 - alpha) * H(m - 1) + alpha * hits(m)
//! ```
//!
//! Two implementation choices keep the tracker O(pages touched), not
//! O(pages tracked), per minute:
//!
//! * **Lazy decay.** Each cell stores `(value, last_minute)`; the decay
//!   factor `(1 - alpha)^(m - last_minute)` is applied only when the cell
//!   is next folded into or read, via `f64::powi` (exactly reproducible,
//!   unlike a per-minute running product in a different fold order).
//! * **Windowed input.** The caches accumulate hits per entry and hand
//!   over only the touched keys ([`crate::PageCache::drain_window_hits`]).
//!
//! Everything here is driven by the sim clock (a minute index) and seeded
//! request order — no wall clock, no OS entropy — so same-seed runs
//! produce bit-identical hotness values (DESIGN.md §10).

use std::sync::Arc;

use parking_lot::Mutex;
use rustc_hash::FxHashMap;

/// The per-minute EWMA smoothing factor used fleet-wide. 0.3 weights the
/// last ~10 minutes of traffic (weight of a minute `k` minutes ago is
/// `0.3 * 0.7^k`), matching the cadence at which Olympics scores changed.
pub const EWMA_ALPHA: f64 = 0.3;

/// Decayed values below this are dropped during the periodic prune: after
/// a few hours cold, a page is indistinguishable from never-accessed.
const PRUNE_EPSILON: f64 = 1e-9;

/// Prune cadence in minutes (hourly keeps the map bounded by the hot
/// working set without paying a full-map sweep every fold).
const PRUNE_EVERY_MINUTES: u64 = 60;

#[derive(Debug, Clone, Copy)]
struct Cell {
    value: f64,
    minute: u64,
}

impl Cell {
    /// The cell's value decayed forward to `minute`.
    fn decayed(self, minute: u64, alpha: f64) -> f64 {
        if minute <= self.minute {
            return self.value;
        }
        // powi over a clamped exponent: beyond ~2^-1000 the value is a
        // hard zero anyway, and the clamp keeps the cast in i32 range.
        let dt = (minute - self.minute).min(1_000) as i32;
        self.value * (1.0 - alpha).powi(dt)
    }
}

/// EWMA hotness per page key, with lazy decay. See the module docs.
#[derive(Debug, Default)]
pub struct HotnessTracker {
    cells: Mutex<FxHashMap<Arc<str>, Cell>>,
}

impl HotnessTracker {
    /// Fold one window of hit counts observed at `minute` into the EWMA,
    /// decaying each touched cell forward first. `alpha` is the EWMA
    /// smoothing factor in `(0, 1]`.
    pub fn fold<I>(&self, hits: I, minute: u64, alpha: f64)
    where
        I: IntoIterator<Item = (Arc<str>, u64)>,
    {
        let mut cells = self.cells.lock();
        for (key, n) in hits {
            let add = alpha * n as f64;
            match cells.get_mut(&key) {
                Some(cell) => {
                    cell.value = cell.decayed(minute, alpha) + add;
                    cell.minute = cell.minute.max(minute);
                }
                None => {
                    cells.insert(key, Cell { value: add, minute });
                }
            }
        }
        if minute.is_multiple_of(PRUNE_EVERY_MINUTES) {
            cells.retain(|_, c| c.decayed(minute, alpha) >= PRUNE_EPSILON);
        }
    }

    /// Current hotness of `key` as of `minute` (0.0 if never tracked).
    pub fn get(&self, key: &str, minute: u64, alpha: f64) -> f64 {
        self.cells
            .lock()
            .get(key)
            .map(|c| c.decayed(minute, alpha))
            .unwrap_or(0.0)
    }

    /// Number of tracked pages.
    pub fn len(&self) -> usize {
        self.cells.lock().len()
    }

    /// Whether nothing is tracked yet.
    pub fn is_empty(&self) -> bool {
        self.cells.lock().is_empty()
    }

    /// The hotness value of the k-th hottest tracked page, where `k` is
    /// `hot_permille` (0..=1000) of the tracked population, rounded to the
    /// nearest page. A page is "hot" iff `hotness >= threshold`, so:
    ///
    /// * `hot_permille == 0` returns `+inf` — nothing is hot;
    /// * `hot_permille >= 1000` returns `-inf` — everything is hot,
    ///   including pages the tracker has never seen (hotness 0.0);
    /// * an empty tracker returns `+inf` — with no traffic signal the
    ///   split degrades conservatively to invalidate-everything.
    ///
    /// Ties at the threshold value all count as hot; the caller's ranking
    /// breaks exact ties deterministically by page key.
    pub fn threshold(&self, hot_permille: u16, minute: u64, alpha: f64) -> f64 {
        if hot_permille == 0 {
            return f64::INFINITY;
        }
        if hot_permille >= 1000 {
            return f64::NEG_INFINITY;
        }
        let cells = self.cells.lock();
        if cells.is_empty() {
            return f64::INFINITY;
        }
        let mut values: Vec<f64> = cells.values().map(|c| c.decayed(minute, alpha)).collect();
        drop(cells);
        values.sort_by(|a, b| b.total_cmp(a));
        let k = (values.len() * hot_permille as usize + 500) / 1000;
        if k == 0 {
            return f64::INFINITY;
        }
        values[k - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn fold_accumulates_and_decays() {
        let t = HotnessTracker::default();
        t.fold([(key("/a"), 10)], 1, 0.5);
        assert_eq!(t.get("/a", 1, 0.5), 5.0);
        // One minute idle halves it (alpha = 0.5), lazily on read.
        assert_eq!(t.get("/a", 2, 0.5), 2.5);
        // Folding more hits decays first, then adds.
        t.fold([(key("/a"), 4)], 3, 0.5);
        assert_eq!(t.get("/a", 3, 0.5), 5.0 * 0.25 + 2.0);
    }

    #[test]
    fn unknown_key_is_cold() {
        let t = HotnessTracker::default();
        assert_eq!(t.get("/nope", 5, 0.3), 0.0);
    }

    #[test]
    fn threshold_sentinels() {
        let t = HotnessTracker::default();
        assert_eq!(t.threshold(500, 1, 0.3), f64::INFINITY, "empty tracker");
        t.fold([(key("/a"), 1)], 1, 0.3);
        assert_eq!(t.threshold(0, 1, 0.3), f64::INFINITY);
        assert_eq!(t.threshold(1000, 1, 0.3), f64::NEG_INFINITY);
    }

    #[test]
    fn threshold_selects_the_quantile() {
        let t = HotnessTracker::default();
        for (k, n) in [("/a", 100), ("/b", 50), ("/c", 10), ("/d", 1)] {
            t.fold([(key(k), n)], 1, 0.5);
        }
        // 500‰ of 4 pages = top 2: threshold is /b's value.
        let thr = t.threshold(500, 1, 0.5);
        assert_eq!(thr, 25.0);
        assert!(t.get("/a", 1, 0.5) >= thr);
        assert!(t.get("/b", 1, 0.5) >= thr);
        assert!(t.get("/c", 1, 0.5) < thr);
    }

    #[test]
    fn tiny_quantile_of_tiny_population_is_nothing() {
        let t = HotnessTracker::default();
        t.fold([(key("/a"), 1)], 1, 0.5);
        // 100‰ of one page rounds to zero pages hot.
        assert_eq!(t.threshold(100, 1, 0.5), f64::INFINITY);
    }

    #[test]
    fn prune_drops_long_cold_pages() {
        let t = HotnessTracker::default();
        t.fold([(key("/a"), 1)], 1, 0.5);
        assert_eq!(t.len(), 1);
        // Hours later a fold at a prune-cadence minute sweeps it out.
        t.fold([(key("/b"), 1)], 600, 0.5);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get("/a", 600, 0.5), 0.0);
    }
}
