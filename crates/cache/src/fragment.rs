//! The sharded concurrent fragment store.
//!
//! Pages are not the only cacheable unit: the paper's §2 models *page
//! fragments* (result tables, the medal box, headline lists) as first-class
//! ODG objects, and Figure 15 composes pages from them in two levels.
//! This store holds the **inner HTML** of each fragment — the bytes a
//! composed page splices between its skeleton segments — keyed by the
//! fragment's canonical URL (`/fragments/...`), separate from the
//! [`crate::PageCache`] entries that hold finished, servable pages.
//!
//! The machinery mirrors the page cache: shards of `parking_lot::Mutex`
//! maps, immutable [`bytes::Bytes`] bodies (so composing a fragment into
//! fifty pages shares one allocation), and a monotonically bumped version
//! per entry. It is deliberately simpler than [`crate::PageCache`]: no
//! eviction (the full fragment space is orders of magnitude smaller than
//! the page space), no single-flight (fragment regeneration is driven by
//! the trigger monitor, which already serialises per-batch work).

use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use bytes::Bytes;
use parking_lot::Mutex;
use rustc_hash::{FxHashMap, FxHasher};

/// One cached fragment: immutable inner-HTML bytes plus bookkeeping.
#[derive(Debug, Clone)]
pub struct FragmentEntry {
    /// The fragment's inner HTML (no page chrome, no padding).
    pub body: Bytes,
    /// Bumped on every put; 1 on first insert.
    pub version: u64,
    /// Modelled CPU cost (ms) of regenerating this fragment.
    pub cost_ms: f64,
}

/// Counters for the store (mirrors [`crate::StatsSnapshot`] in spirit).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FragmentStoreStats {
    /// Successful lookups.
    pub hits: u64,
    /// Failed lookups (missing or invalidated fragment).
    pub misses: u64,
    /// Inserts and in-place updates.
    pub puts: u64,
    /// Invalidation calls that removed a live entry.
    pub invalidations: u64,
}

#[derive(Default)]
struct Shard {
    map: FxHashMap<String, FragmentEntry>,
}

/// A sharded map from fragment URL to [`FragmentEntry`].
pub struct FragmentStore {
    shards: Vec<Mutex<Shard>>,
    mask: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    puts: AtomicU64,
    invalidations: AtomicU64,
}

impl std::fmt::Debug for FragmentStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FragmentStore")
            .field("shards", &self.shards.len())
            .field("len", &self.len())
            .finish()
    }
}

impl Default for FragmentStore {
    fn default() -> Self {
        Self::new()
    }
}

impl FragmentStore {
    /// A store with the default 16 shards.
    pub fn new() -> Self {
        Self::with_shards(16)
    }

    /// A store with `shards` shards (rounded up to a power of two, min 1).
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        FragmentStore {
            shards: (0..n).map(|_| Mutex::new(Shard::default())).collect(),
            mask: n - 1,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            puts: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    fn shard(&self, url: &str) -> &Mutex<Shard> {
        let mut h = FxHasher::default();
        url.hash(&mut h);
        &self.shards[(h.finish() as usize) & self.mask]
    }

    /// Insert or update the fragment at `url`; returns the new version
    /// (1 on first insert). The body is the fragment's *inner* HTML.
    pub fn put(&self, url: &str, body: Bytes, cost_ms: f64) -> u64 {
        self.puts.fetch_add(1, Relaxed);
        let mut shard = self.shard(url).lock();
        match shard.map.get_mut(url) {
            Some(entry) => {
                entry.body = body;
                entry.version += 1;
                entry.cost_ms = cost_ms;
                entry.version
            }
            None => {
                shard.map.insert(
                    url.to_string(),
                    FragmentEntry {
                        body,
                        version: 1,
                        cost_ms,
                    },
                );
                1
            }
        }
    }

    /// Look up the fragment at `url` — a refcount bump, never a copy.
    pub fn get(&self, url: &str) -> Option<FragmentEntry> {
        let found = self.shard(url).lock().map.get(url).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Relaxed),
            None => self.misses.fetch_add(1, Relaxed),
        };
        found
    }

    /// Look up without touching the hit/miss counters (composition-planning
    /// probes that should not skew the stats).
    pub fn peek(&self, url: &str) -> Option<FragmentEntry> {
        self.shard(url).lock().map.get(url).cloned()
    }

    /// Whether a live fragment exists at `url`.
    pub fn contains(&self, url: &str) -> bool {
        self.shard(url).lock().map.contains_key(url)
    }

    /// Drop the fragment at `url`; returns whether an entry was removed.
    pub fn invalidate(&self, url: &str) -> bool {
        let removed = self.shard(url).lock().map.remove(url).is_some();
        if removed {
            self.invalidations.fetch_add(1, Relaxed);
        }
        removed
    }

    /// Number of live fragments.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().map.is_empty())
    }

    /// Drop every fragment (cold-restart fault injection).
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().map.clear();
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> FragmentStoreStats {
        FragmentStoreStats {
            hits: self.hits.load(Relaxed),
            misses: self.misses.load(Relaxed),
            puts: self.puts.load(Relaxed),
            invalidations: self.invalidations.load(Relaxed),
        }
    }

    /// Every live `(url, entry)` pair, sorted by URL (deterministic
    /// export for tests and audits).
    pub fn export_entries(&self) -> Vec<(String, FragmentEntry)> {
        let mut out: Vec<(String, FragmentEntry)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .map
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip_bumps_versions() {
        let store = FragmentStore::new();
        assert_eq!(
            store.put("/fragments/medals", Bytes::from("<table/>"), 70.0),
            1
        );
        assert_eq!(
            store.put("/fragments/medals", Bytes::from("<table>2</table>"), 70.0),
            2
        );
        let e = store.get("/fragments/medals").unwrap();
        assert_eq!(e.version, 2);
        assert_eq!(&e.body[..], b"<table>2</table>");
        assert_eq!(e.cost_ms, 70.0);
        assert!(store.get("/fragments/results/9").is_none());
        let s = store.stats();
        assert_eq!((s.puts, s.hits, s.misses), (2, 1, 1));
    }

    #[test]
    fn get_is_zero_copy() {
        let store = FragmentStore::new();
        let body = Bytes::from(vec![b'x'; 256]);
        let ptr = body.as_ptr();
        store.put("/fragments/results/1", body, 60.0);
        let a = store.get("/fragments/results/1").unwrap();
        let b = store.get("/fragments/results/1").unwrap();
        assert_eq!(a.body.as_ptr(), ptr);
        assert_eq!(b.body.as_ptr(), ptr);
    }

    #[test]
    fn invalidate_removes_and_counts() {
        let store = FragmentStore::new();
        store.put("/fragments/headlines/3", Bytes::from("<ul/>"), 50.0);
        assert!(store.contains("/fragments/headlines/3"));
        assert!(store.invalidate("/fragments/headlines/3"));
        assert!(!store.invalidate("/fragments/headlines/3"));
        assert!(!store.contains("/fragments/headlines/3"));
        assert_eq!(store.stats().invalidations, 1);
        assert_eq!(store.len(), 0);
    }

    #[test]
    fn peek_does_not_skew_stats() {
        let store = FragmentStore::new();
        store.put("/fragments/medals", Bytes::from("m"), 70.0);
        store.peek("/fragments/medals");
        store.peek("/fragments/missing");
        let s = store.stats();
        assert_eq!((s.hits, s.misses), (0, 0));
    }

    #[test]
    fn clear_and_export() {
        let store = FragmentStore::new();
        store.put("/fragments/results/2", Bytes::from("b"), 60.0);
        store.put("/fragments/results/1", Bytes::from("a"), 60.0);
        let urls: Vec<String> = store.export_entries().into_iter().map(|(u, _)| u).collect();
        assert_eq!(urls, vec!["/fragments/results/1", "/fragments/results/2"]);
        store.clear();
        assert!(store.is_empty());
    }
}
