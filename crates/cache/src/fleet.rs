//! The per-frame cache fleet.
//!
//! Inside one SP2 (Figure 6 of the paper), the trigger monitor on the SMP
//! renders updated pages once and **distributes** them to the eight
//! uniprocessor serving nodes. [`CacheFleet`] models that arrangement: one
//! logical page store replicated across N member caches, with broadcast
//! update/invalidate operations. `Bytes` bodies are reference-counted, so
//! a distributed page costs one allocation regardless of fleet size.

use std::sync::Arc;

use bytes::Bytes;
use rustc_hash::FxHashMap;

use crate::cache::{CacheConfig, CachedPage, HeadBuilder, PageCache};
use crate::hotness::{HotnessTracker, EWMA_ALPHA};
use crate::stats::StatsSnapshot;

/// A set of replicated serving caches fed by one distributor.
#[derive(Debug)]
pub struct CacheFleet {
    members: Vec<Arc<PageCache>>,
    /// Fleet-wide EWMA hotness, folded from the members' window-hit
    /// counters by [`CacheFleet::fold_hotness`]. Requests are spread over
    /// all members by the dispatcher, so hotness is meaningful only as an
    /// aggregate across the fleet.
    hotness: HotnessTracker,
}

impl CacheFleet {
    /// Build a fleet of `n` members (n >= 1), each configured with
    /// `config`.
    pub fn new(n: usize, config: CacheConfig) -> Self {
        assert!(n >= 1, "a fleet needs at least one cache");
        CacheFleet {
            members: (0..n)
                .map(|_| Arc::new(PageCache::new(config.clone())))
                .collect(),
            hotness: HotnessTracker::default(),
        }
    }

    /// Number of member caches.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Always false (construction requires n >= 1).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Handle to member `i`.
    pub fn member(&self, i: usize) -> &Arc<PageCache> {
        &self.members[i]
    }

    /// Install `builder` on every member (see
    /// [`PageCache::set_head_builder`]); returns `false` if any member
    /// already had one.
    pub fn set_head_builder(&self, builder: HeadBuilder) -> bool {
        let mut all = true;
        for m in &self.members {
            all &= m.set_head_builder(Arc::clone(&builder));
        }
        all
    }

    /// All members.
    pub fn members(&self) -> &[Arc<PageCache>] {
        &self.members
    }

    /// Serve a lookup from member `i` (a request routed to serving node
    /// `i` by the dispatcher).
    pub fn get_from(&self, i: usize, key: &str) -> Option<CachedPage> {
        self.members[i].get(key)
    }

    /// Distribute a freshly rendered page to every member (the trigger
    /// monitor's prefetch/update-in-place path).
    pub fn distribute(&self, key: &str, body: Bytes, cost: f64) {
        for m in &self.members {
            m.put(key, body.clone(), cost);
        }
    }

    /// Broadcast an invalidation; returns how many members held the key.
    pub fn invalidate_everywhere(&self, key: &str) -> usize {
        self.members.iter().filter(|m| m.invalidate(key)).count()
    }

    /// Insert into a single member only (a demand-miss fill on one serving
    /// node, the pre-DUP behaviour).
    pub fn put_local(&self, i: usize, key: &str, body: Bytes, cost: f64) {
        self.members[i].put(key, body, cost);
    }

    /// Aggregate statistics over all members.
    pub fn aggregate_stats(&self) -> StatsSnapshot {
        let mut total = StatsSnapshot::default();
        for m in &self.members {
            let s = m.stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.inserts += s.inserts;
            total.updates += s.updates;
            total.invalidations += s.invalidations;
            total.evictions += s.evictions;
            total.stale_served += s.stale_served;
            total.coalesced += s.coalesced;
            total.bytes_current += s.bytes_current;
            total.bytes_peak += s.bytes_peak;
        }
        total
    }

    /// Advance every member's cache clock (stale-age bookkeeping).
    pub fn set_now_secs(&self, secs: f64) {
        for m in &self.members {
            m.set_now_secs(secs);
        }
    }

    /// Serve member `i`'s tombstoned stale copy of `key`, if any is
    /// within its stale policy's age bound.
    pub fn serve_stale_from(&self, i: usize, key: &str) -> Option<crate::StaleCopy> {
        self.members[i].serve_stale(key)
    }

    /// Clear every member.
    pub fn clear(&self) {
        for m in &self.members {
            m.clear();
        }
    }

    /// Fold every member's window-hit counters into the fleet EWMA as of
    /// sim minute `minute`. Called once per minute by the cluster
    /// heartbeat; between folds the members just bump per-entry counters
    /// under their existing shard locks. Counts for the same key across
    /// members are summed before folding so fleet size never skews the
    /// EWMA scale.
    pub fn fold_hotness(&self, minute: u64) {
        let mut window: FxHashMap<Arc<str>, u64> = FxHashMap::default();
        let mut order: Vec<Arc<str>> = Vec::new();
        for m in &self.members {
            for (key, n) in m.drain_window_hits() {
                match window.get_mut(&key) {
                    Some(total) => *total += n,
                    None => {
                        window.insert(Arc::clone(&key), n);
                        order.push(key);
                    }
                }
            }
        }
        self.hotness.fold(
            order.into_iter().map(|k| {
                let n = window[&k];
                (k, n)
            }),
            minute,
            EWMA_ALPHA,
        );
    }

    /// Current EWMA hotness of `key` as of sim minute `minute` (0.0 for
    /// pages with no tracked traffic).
    pub fn hotness(&self, key: &str, minute: u64) -> f64 {
        self.hotness.get(key, minute, EWMA_ALPHA)
    }

    /// Hot/cold split threshold: a page is hot iff its hotness is `>=`
    /// the returned value. See [`HotnessTracker::threshold`] for the
    /// quantile rule and the `±inf` sentinels.
    pub fn hotness_threshold(&self, hot_permille: u16, minute: u64) -> f64 {
        self.hotness.threshold(hot_permille, minute, EWMA_ALPHA)
    }

    /// Resynchronise member `to` from member `from`: a recovered serving
    /// node repopulates its cache from a healthy peer before the advisors
    /// put it back in rotation, so it rejoins warm and version-consistent.
    /// Returns the number of entries copied.
    pub fn resync(&self, from: usize, to: usize) -> usize {
        assert_ne!(from, to, "cannot resync a member from itself");
        let entries = self.members[from].export_entries();
        let n = entries.len();
        let target = &self.members[to];
        target.clear();
        for (key, body, cost, version) in entries {
            target.restore_entry(&key, body, cost, version);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn distribute_reaches_all_members() {
        let fleet = CacheFleet::new(8, CacheConfig::default());
        fleet.distribute("/today", body("<html>results</html>"), 40.0);
        for i in 0..8 {
            let page = fleet.get_from(i, "/today").unwrap();
            assert_eq!(&page.body[..], b"<html>results</html>");
        }
        assert_eq!(fleet.aggregate_stats().hits, 8);
    }

    #[test]
    fn distribute_shares_the_body_allocation() {
        let fleet = CacheFleet::new(4, CacheConfig::default());
        let b = body("shared");
        fleet.distribute("/x", b.clone(), 1.0);
        // Bytes clones are refcounted views of one buffer.
        let got = fleet.member(0).peek("/x").unwrap().body;
        assert_eq!(got.as_ptr(), b.as_ptr());
    }

    #[test]
    fn local_fill_stays_local() {
        let fleet = CacheFleet::new(3, CacheConfig::default());
        fleet.put_local(1, "/event", body("data"), 10.0);
        assert!(fleet.get_from(1, "/event").is_some());
        assert!(fleet.get_from(0, "/event").is_none());
        assert!(fleet.get_from(2, "/event").is_none());
    }

    #[test]
    fn invalidate_everywhere_counts() {
        let fleet = CacheFleet::new(4, CacheConfig::default());
        fleet.distribute("/a", body("1"), 1.0);
        fleet.put_local(0, "/b", body("2"), 1.0);
        assert_eq!(fleet.invalidate_everywhere("/a"), 4);
        assert_eq!(fleet.invalidate_everywhere("/b"), 1);
        assert_eq!(fleet.invalidate_everywhere("/c"), 0);
    }

    #[test]
    fn clear_all() {
        let fleet = CacheFleet::new(2, CacheConfig::default());
        fleet.distribute("/a", body("1"), 1.0);
        fleet.clear();
        assert!(fleet.member(0).is_empty());
        assert!(fleet.member(1).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one cache")]
    fn empty_fleet_rejected() {
        let _ = CacheFleet::new(0, CacheConfig::default());
    }

    #[test]
    fn resync_rebuilds_a_recovered_node() {
        let fleet = CacheFleet::new(3, CacheConfig::default());
        fleet.distribute("/a", body("alpha"), 10.0);
        fleet.distribute("/a", body("alpha-v2"), 10.0); // version 2
        fleet.distribute("/b", body("beta"), 5.0);
        // Node 2 dies and comes back cold with junk.
        fleet.member(2).clear();
        fleet.put_local(2, "/stale-junk", body("x"), 1.0);
        let copied = fleet.resync(0, 2);
        assert_eq!(copied, 2);
        assert!(
            fleet.member(2).peek("/stale-junk").is_none(),
            "junk cleared"
        );
        // Content AND versions agree with the healthy peer.
        for key in ["/a", "/b"] {
            let healthy = fleet.member(0).peek(key).unwrap();
            let resynced = fleet.member(2).peek(key).unwrap();
            assert_eq!(healthy.body, resynced.body, "{key}");
            assert_eq!(healthy.version, resynced.version, "{key}");
        }
        assert_eq!(fleet.member(2).peek("/a").unwrap().version, 2);
    }

    #[test]
    fn hotness_folds_across_members() {
        let fleet = CacheFleet::new(2, CacheConfig::default());
        fleet.distribute("/hot", body("h"), 1.0);
        fleet.distribute("/cold", body("c"), 1.0);
        // Traffic lands on different members; hotness is the fleet sum.
        for _ in 0..5 {
            fleet.get_from(0, "/hot");
            fleet.get_from(1, "/hot");
        }
        fleet.get_from(0, "/cold");
        fleet.fold_hotness(1);
        let hot = fleet.hotness("/hot", 1);
        let cold = fleet.hotness("/cold", 1);
        assert!(hot > cold, "hot {hot} vs cold {cold}");
        assert_eq!(hot, crate::hotness::EWMA_ALPHA * 10.0);
        // Top-half split puts /hot above the threshold and /cold below.
        let thr = fleet.hotness_threshold(500, 1);
        assert!(hot >= thr && cold < thr);
        // Sentinels pass straight through.
        assert_eq!(fleet.hotness_threshold(0, 1), f64::INFINITY);
        assert_eq!(fleet.hotness_threshold(1000, 1), f64::NEG_INFINITY);
    }

    #[test]
    #[should_panic(expected = "from itself")]
    fn resync_self_rejected() {
        let fleet = CacheFleet::new(2, CacheConfig::default());
        fleet.resync(1, 1);
    }
}
