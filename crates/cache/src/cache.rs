//! The sharded concurrent page cache.
//!
//! Keys are page identities (URL paths); values are immutable rendered
//! bodies ([`bytes::Bytes`], so distributing a page to eight serving caches
//! shares one allocation). The lock per shard is a `parking_lot::Mutex`;
//! with the default 16 shards and short critical sections, contention is
//! negligible next to page generation costs.
//!
//! Eviction uses a lazy-deletion priority queue per shard: every
//! touch/insert pushes a `(rank, key, stamp)` record; stale records (stamp
//! mismatch) are discarded when popped. This gives O(log n) amortised
//! eviction for all three bounded policies without intrusive lists.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex as StdMutex, OnceLock};
use std::time::Duration;

use bytes::Bytes;
use parking_lot::Mutex;
use rustc_hash::{FxHashMap, FxHasher};

use crate::policy::{Rank, ReplacementPolicy};
use crate::stats::{CacheStats, StatsSnapshot};

/// Retention policy for stale copies: evicted or invalidated bodies are
/// kept as *tombstones* so the serving path can fall back to a bounded-age
/// stale copy when regeneration is slow or the backend is down
/// (serve-stale-on-error / stale-while-revalidate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StalePolicy {
    /// Maximum age, in seconds of cache-clock time (see
    /// [`PageCache::set_now_secs`]), a stale copy may still be served.
    pub max_age_secs: f64,
}

impl StalePolicy {
    /// Keep stale copies servable for up to `max_age_secs`.
    pub fn bounded(max_age_secs: f64) -> Self {
        StalePolicy { max_age_secs }
    }
}

/// Configuration for a [`PageCache`].
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Number of shards (rounded up to a power of two, min 1).
    pub shards: usize,
    /// Total byte budget across all shards; `None` = unbounded (the
    /// paper's production configuration).
    pub max_bytes: Option<u64>,
    /// Eviction policy when `max_bytes` is set.
    pub policy: ReplacementPolicy,
    /// When set, evicted/invalidated bodies become servable stale
    /// tombstones; `None` (the default) drops them outright.
    pub stale: Option<StalePolicy>,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            shards: 16,
            max_bytes: None,
            policy: ReplacementPolicy::Unbounded,
            stale: None,
        }
    }
}

impl CacheConfig {
    /// Unbounded cache with `n` shards.
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Bounded cache with the given budget and policy.
    pub fn bounded(max_bytes: u64, policy: ReplacementPolicy) -> Self {
        CacheConfig {
            shards: 16,
            max_bytes: Some(max_bytes),
            policy,
            stale: None,
        }
    }

    /// Override the shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Keep evicted/invalidated bodies as stale tombstones under `policy`.
    pub fn with_stale(mut self, policy: StalePolicy) -> Self {
        self.stale = Some(policy);
        self
    }
}

/// Opaque preserialised response-head fragments stored alongside a cache
/// entry: the bytes before and after whatever per-request piece the
/// serving layer splices in. The cache never interprets them — it only
/// computes them once per fill (via the installed [`HeadBuilder`]) so
/// every hit skips header formatting entirely.
#[derive(Debug, Clone)]
pub struct PrebuiltHead {
    /// Head bytes preceding the per-request fragment.
    pub pre: Bytes,
    /// Head bytes following it (through the end of the head).
    pub post: Bytes,
}

/// Builds the preserialised head for a `(body, version)` pair. Installed
/// once per cache by the serving layer — the cache stays protocol-
/// agnostic — and invoked on insert/update/restore, never on the hit
/// path.
pub type HeadBuilder = Arc<dyn Fn(&Bytes, u64) -> PrebuiltHead + Send + Sync>;

/// A successful cache lookup.
#[derive(Debug, Clone)]
pub struct CachedPage {
    /// The rendered page body.
    pub body: Bytes,
    /// Monotonic per-entry version: 1 on insert, +1 per in-place update.
    pub version: u64,
    /// Preserialised head computed at fill time, when a [`HeadBuilder`]
    /// is installed. Cloning is two refcount bumps.
    pub head: Option<PrebuiltHead>,
}

/// A stale copy served in place of a fresh body.
#[derive(Debug, Clone)]
pub struct StaleCopy {
    /// The last body the entry held before eviction/invalidation.
    pub body: Bytes,
    /// The version that body carried.
    pub version: u64,
    /// Stale epoch: increments every time the key goes live → stale, so
    /// single-flight can pin "one regeneration per (key, stale-epoch)".
    pub epoch: u64,
    /// Seconds of cache-clock time the copy has been stale.
    pub age_secs: f64,
}

/// One in-flight regeneration that concurrent misses coalesce onto.
#[derive(Debug, Default)]
struct Flight {
    state: StdMutex<FlightState>,
    cv: Condvar,
}

#[derive(Debug, Default)]
struct FlightState {
    done: bool,
    result: Option<CachedPage>,
}

/// Leader-side handle for an in-flight regeneration. The holder must
/// finish with [`PageCache::complete_flight`] (passing `None` on failure)
/// so followers wake; a token that is merely dropped leaves followers to
/// their deadline, after which one of them takes the flight over.
#[derive(Debug)]
pub struct FlightToken {
    key: Arc<str>,
    flight: Arc<Flight>,
}

/// Outcome of [`PageCache::join_or_lead`] for a missed key.
#[derive(Debug)]
pub enum FlightOutcome {
    /// No regeneration was in flight: the caller is now the leader and
    /// must regenerate, then call [`PageCache::complete_flight`].
    Lead(FlightToken),
    /// Another caller's regeneration completed while we waited.
    Joined(CachedPage),
    /// The wait deadline expired (or the leader failed) with no result.
    TimedOut,
}

#[derive(Debug)]
struct StaleEntry {
    body: Bytes,
    version: u64,
    epoch: u64,
    since_us: u64,
}

#[derive(Debug)]
struct Entry {
    body: Bytes,
    version: u64,
    /// Preserialised response head, recomputed whenever the body or
    /// version changes (see [`HeadBuilder`]).
    head: Option<PrebuiltHead>,
    cost: f64,
    pinned: bool,
    freq: u64,
    /// Hits since the last [`PageCache::drain_window_hits`] call — the raw
    /// input to the fleet-level EWMA hotness tracker.
    window_hits: u64,
    last_tick: u64,
    /// Identity of the entry's newest heap record, drawn from the shard's
    /// monotonic tick so stale records — including ones surviving from a
    /// previous incarnation of the same key — never match.
    stamp: u64,
}

struct Shard {
    map: FxHashMap<Arc<str>, Entry>,
    heap: BinaryHeap<Reverse<(Rank, u64, Arc<str>)>>,
    tick: u64,
    bytes: u64,
    /// GreedyDual-Size inflation term L.
    inflation: f64,
    /// Keys whose `window_hits` went 0 → nonzero since the last drain, so
    /// draining walks only touched entries rather than the whole map.
    dirty: Vec<Arc<str>>,
    /// Tombstoned stale copies (only populated under a [`StalePolicy`]).
    /// Not charged against the byte budget: bodies are refcounted views
    /// and the store is bounded by the policy's max age via pruning.
    stale: FxHashMap<Arc<str>, StaleEntry>,
    /// Count of live → stale transitions per key. Kept separately from
    /// `stale` so the epoch survives a fresh body superseding (and
    /// removing) the tombstone — single-flight pins "one regeneration per
    /// (key, stale-epoch)" against this counter.
    stale_epochs: FxHashMap<Arc<str>, u64>,
    /// In-flight single-flight regenerations keyed by page.
    flights: FxHashMap<Arc<str>, Arc<Flight>>,
}

impl Shard {
    fn new() -> Self {
        Shard {
            map: FxHashMap::default(),
            heap: BinaryHeap::new(),
            tick: 0,
            bytes: 0,
            inflation: 0.0,
            dirty: Vec::new(),
            stale: FxHashMap::default(),
            stale_epochs: FxHashMap::default(),
            flights: FxHashMap::default(),
        }
    }

    /// Move a removed entry's body into the stale tombstone store,
    /// bumping the key's stale epoch.
    fn tombstone(&mut self, key: &str, body: Bytes, version: u64, now_us: u64) {
        let k: Arc<str> = match self.stale_epochs.get_key_value(key) {
            Some((k, _)) => Arc::clone(k),
            None => Arc::from(key),
        };
        let epoch = {
            let e = self.stale_epochs.entry(Arc::clone(&k)).or_insert(0);
            *e += 1;
            *e
        };
        self.stale.insert(
            k,
            StaleEntry {
                body,
                version,
                epoch,
                since_us: now_us,
            },
        );
    }

    fn touch(&mut self, key: &Arc<str>, policy: ReplacementPolicy) {
        self.tick += 1;
        let inflation = self.inflation;
        let tick = self.tick;
        if let Some(e) = self.map.get_mut(key) {
            e.freq += 1;
            if e.window_hits == 0 {
                self.dirty.push(Arc::clone(key));
            }
            e.window_hits += 1;
            e.last_tick = tick;
            e.stamp = tick;
            if policy.is_bounded() {
                let rank = policy.rank(tick, e.freq, e.cost, e.body.len() as u64, inflation);
                self.heap.push(Reverse((rank, e.stamp, Arc::clone(key))));
            }
        }
    }

    /// Pop victims until `bytes <= budget` or nothing evictable remains.
    ///
    /// `protect` shields the entry that triggered the eviction (the page
    /// just inserted): without it, a fresh entry with zero hits would be
    /// the immediate LFU/GDS victim and nothing new could ever stay cached.
    /// With `stale_now` set (a [`StalePolicy`] is active, value = current
    /// cache-clock micros), victims are tombstoned instead of dropped.
    fn evict_to(
        &mut self,
        budget: u64,
        stats: &CacheStats,
        protect: Option<&str>,
        stale_now: Option<u64>,
    ) {
        let mut skipped: Vec<Reverse<(Rank, u64, Arc<str>)>> = Vec::new();
        while self.bytes > budget {
            let Some(Reverse((rank, stamp, key))) = self.heap.pop() else {
                // Nothing evictable (everything pinned or heap drained):
                // allow overflow rather than loop forever.
                break;
            };
            if Some(&*key) == protect {
                skipped.push(Reverse((rank, stamp, key)));
                continue;
            }
            let evict = match self.map.get(&key) {
                Some(e) if e.stamp == stamp && !e.pinned => true,
                _ => false, // stale record or pinned entry
            };
            if evict {
                if let Rank::Value(v) = rank {
                    self.inflation = self.inflation.max(v.0);
                }
                if let Some(e) = self.map.remove(&key) {
                    let size = e.body.len() as u64;
                    self.bytes -= size;
                    stats.evict(size);
                    if let Some(now_us) = stale_now {
                        self.tombstone(&key, e.body, e.version, now_us);
                    }
                }
            }
        }
        // Protected records go back so the entry stays evictable later.
        self.heap.extend(skipped);
    }
}

/// A concurrent cache of rendered pages.
///
/// ```
/// use bytes::Bytes;
/// use nagano_cache::PageCache;
///
/// let cache = PageCache::default();
/// cache.put("/medals", Bytes::from_static(b"<html>v1</html>"), 150.0);
/// assert_eq!(cache.get("/medals").unwrap().version, 1);
///
/// // The trigger monitor updates stale pages *in place*: the entry is
/// // replaced, never missing, and its version bumps (the HTTP ETag).
/// cache.put("/medals", Bytes::from_static(b"<html>v2</html>"), 150.0);
/// let page = cache.get("/medals").unwrap();
/// assert_eq!(&page.body[..], b"<html>v2</html>");
/// assert_eq!(page.version, 2);
/// assert_eq!(cache.stats().misses, 0);
/// ```
pub struct PageCache {
    shards: Vec<Mutex<Shard>>,
    mask: usize,
    per_shard_budget: Option<u64>,
    policy: ReplacementPolicy,
    stale: Option<StalePolicy>,
    /// Cache-clock time in microseconds, advanced by the owner via
    /// [`PageCache::set_now_secs`]; stale ages are measured against it.
    /// Simulations feed it sim time, real deployments wall time — the
    /// cache itself never reads a clock (determinism contract, D001).
    now_us: AtomicU64,
    /// Optional head preserialiser, installed once by the serving layer.
    head_builder: OnceLock<HeadBuilder>,
    stats: Arc<CacheStats>,
}

impl std::fmt::Debug for PageCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageCache")
            .field("shards", &self.shards.len())
            .field("policy", &self.policy)
            .field("len", &self.len())
            .finish()
    }
}

impl Default for PageCache {
    fn default() -> Self {
        PageCache::new(CacheConfig::default())
    }
}

impl PageCache {
    /// Create a cache from `config`.
    pub fn new(config: CacheConfig) -> Self {
        let n = config.shards.max(1).next_power_of_two();
        let shards = (0..n).map(|_| Mutex::new(Shard::new())).collect();
        PageCache {
            shards,
            mask: n - 1,
            per_shard_budget: config.max_bytes.map(|b| b / n as u64),
            policy: config.policy,
            stale: config.stale,
            now_us: AtomicU64::new(0),
            head_builder: OnceLock::new(),
            stats: Arc::new(CacheStats::default()),
        }
    }

    /// Install the builder invoked on every insert/update/restore to
    /// preserialise the entry's response head. Install it before the
    /// first fill (typically right after construction, before prewarm):
    /// entries filled earlier stay headless until their next update.
    /// Returns `false` if a builder was already installed (the first one
    /// wins).
    pub fn set_head_builder(&self, builder: HeadBuilder) -> bool {
        self.head_builder.set(builder).is_ok()
    }

    fn build_head(&self, body: &Bytes, version: u64) -> Option<PrebuiltHead> {
        self.head_builder.get().map(|b| b(body, version))
    }

    /// Advance the cache clock (monotonic micros derived from `secs`).
    /// Stale-copy ages are measured against this clock, so the owner
    /// decides what "time" means — sim time in the cluster simulation.
    pub fn set_now_secs(&self, secs: f64) {
        let us = (secs.max(0.0) * 1e6) as u64;
        self.now_us.fetch_max(us, Relaxed);
    }

    fn now_us(&self) -> u64 {
        self.now_us.load(Relaxed)
    }

    /// Current cache-clock micros when a stale policy is active.
    fn stale_now(&self) -> Option<u64> {
        self.stale.map(|_| self.now_us())
    }

    fn shard_for(&self, key: &str) -> &Mutex<Shard> {
        let mut h = FxHasher::default();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) & self.mask]
    }

    /// The replacement policy in effect.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Shared handle to the statistics block.
    pub fn stats_handle(&self) -> Arc<CacheStats> {
        Arc::clone(&self.stats)
    }

    /// Snapshot of the statistics.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Look up `key`, recording a hit or miss and touching recency state.
    pub fn get(&self, key: &str) -> Option<CachedPage> {
        let mut shard = self.shard_for(key).lock();
        let found = shard.map.get_key_value(key).map(|(k, e)| {
            (
                Arc::clone(k),
                CachedPage {
                    body: e.body.clone(),
                    version: e.version,
                    head: e.head.clone(),
                },
            )
        });
        match found {
            Some((k, page)) => {
                shard.touch(&k, self.policy);
                self.stats.hit();
                Some(page)
            }
            None => {
                self.stats.miss();
                None
            }
        }
    }

    /// Look up without counting a hit/miss or touching recency — used by
    /// the trigger monitor to inspect state without skewing measurements.
    pub fn peek(&self, key: &str) -> Option<CachedPage> {
        let shard = self.shard_for(key).lock();
        shard.map.get(key).map(|e| CachedPage {
            body: e.body.clone(),
            version: e.version,
            head: e.head.clone(),
        })
    }

    /// Insert or update-in-place. Returns the entry's new version (1 for a
    /// fresh insert). `cost` is the page's generation cost in milliseconds,
    /// used by GreedyDual-Size.
    pub fn put(&self, key: &str, body: Bytes, cost: f64) -> u64 {
        let size = body.len() as u64;
        let mut shard = self.shard_for(key).lock();
        shard.tick += 1;
        let tick = shard.tick;
        let inflation = shard.inflation;
        let version;
        if let Some(e) = shard.map.get_mut(key) {
            let old = e.body.len() as u64;
            e.version += 1;
            version = e.version;
            e.head = self.build_head(&body, version);
            e.body = body;
            e.cost = cost;
            e.stamp = tick;
            e.last_tick = tick;
            let stamp = e.stamp;
            let freq = e.freq;
            shard.bytes = shard.bytes - old + size;
            self.stats.update(old, size);
            if self.policy.is_bounded() {
                let rank = self.policy.rank(tick, freq, cost, size, inflation);
                if let Some(k) = shard.map.get_key_value(key).map(|(k, _)| Arc::clone(k)) {
                    shard.heap.push(Reverse((rank, stamp, k)));
                }
            }
        } else {
            let k: Arc<str> = Arc::from(key);
            version = 1;
            let head = self.build_head(&body, 1);
            shard.map.insert(
                Arc::clone(&k),
                Entry {
                    body,
                    version: 1,
                    head,
                    cost,
                    pinned: false,
                    freq: 0,
                    window_hits: 0,
                    last_tick: tick,
                    stamp: tick,
                },
            );
            shard.bytes += size;
            self.stats.insert(size);
            if self.policy.is_bounded() {
                let rank = self.policy.rank(tick, 0, cost, size, inflation);
                shard.heap.push(Reverse((rank, tick, k)));
            }
        }
        // A fresh body supersedes any tombstoned stale copy of the key.
        if self.stale.is_some() {
            shard.stale.remove(key);
        }
        if let Some(budget) = self.per_shard_budget {
            shard.evict_to(budget, &self.stats, Some(key), self.stale_now());
        }
        version
    }

    /// Remove `key`; returns whether it was present. Under a
    /// [`StalePolicy`] the removed body is kept as a servable tombstone.
    pub fn invalidate(&self, key: &str) -> bool {
        let stale_now = self.stale_now();
        let mut shard = self.shard_for(key).lock();
        if let Some(e) = shard.map.remove(key) {
            let size = e.body.len() as u64;
            shard.bytes -= size;
            self.stats.invalidate(size);
            if let Some(now_us) = stale_now {
                shard.tombstone(key, e.body, e.version, now_us);
            }
            true
        } else {
            false
        }
    }

    /// Invalidate a batch; returns how many were present.
    pub fn invalidate_many<'a, I: IntoIterator<Item = &'a str>>(&self, keys: I) -> usize {
        keys.into_iter().filter(|k| self.invalidate(k)).count()
    }

    /// Pin or unpin an entry (pinned entries are never evicted). Returns
    /// whether the key was present.
    pub fn set_pinned(&self, key: &str, pinned: bool) -> bool {
        let mut shard = self.shard_for(key).lock();
        shard.tick += 1;
        let fresh_stamp = shard.tick;
        let inflation = shard.inflation;
        let policy = self.policy;
        let rec = if let Some(e) = shard.map.get_mut(key) {
            e.pinned = pinned;
            if !pinned && policy.is_bounded() {
                // Re-enter the eviction queue at the entry's *original*
                // recency: unpinning is not an access.
                e.stamp = fresh_stamp;
                let rank = policy.rank(e.last_tick, e.freq, e.cost, e.body.len() as u64, inflation);
                Some((rank, e.stamp))
            } else {
                None
            }
        } else {
            return false;
        };
        if let Some((rank, stamp)) = rec {
            if let Some(k) = shard.map.get_key_value(key).map(|(k, _)| Arc::clone(k)) {
                shard.heap.push(Reverse((rank, stamp, k)));
            }
        }
        true
    }

    /// Whether `key` is cached.
    pub fn contains(&self, key: &str) -> bool {
        self.shard_for(key).lock().map.contains_key(key)
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently cached.
    pub fn bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().bytes).sum()
    }

    /// Drop every entry (counted as invalidations). This is a *cold*
    /// restart: stale tombstones and in-flight regenerations are wiped
    /// too, so a crashed shard recovers with nothing to serve stale from.
    pub fn clear(&self) {
        for s in &self.shards {
            let mut shard = s.lock();
            let keys: Vec<Arc<str>> = shard.map.keys().cloned().collect();
            for k in keys {
                if let Some(e) = shard.map.remove(&k) {
                    let size = e.body.len() as u64;
                    shard.bytes -= size;
                    self.stats.invalidate(size);
                }
            }
            shard.heap.clear();
            shard.stale.clear();
            shard.stale_epochs.clear();
            shard.flights.clear();
        }
    }

    /// All cached keys (for diagnostics; takes each shard lock in turn).
    pub fn keys(&self) -> Vec<String> {
        let mut out = Vec::new();
        for s in &self.shards {
            out.extend(s.lock().map.keys().map(|k| k.to_string()));
        }
        out
    }

    /// Export every entry: `(key, body, cost, version)`. Bodies are
    /// refcounted views, so exporting is cheap. Used to resynchronise a
    /// recovered serving node from a healthy peer.
    pub fn export_entries(&self) -> Vec<(String, Bytes, f64, u64)> {
        let mut out = Vec::new();
        for s in &self.shards {
            let shard = s.lock();
            out.extend(
                shard
                    .map
                    .iter()
                    .map(|(k, e)| (k.to_string(), e.body.clone(), e.cost, e.version)),
            );
        }
        out
    }

    /// Collect and reset per-entry hit counts accumulated since the last
    /// drain: `(key, hits)` for every entry touched in the window. Walks
    /// only the per-shard dirty lists, so cost is proportional to the
    /// number of *distinct* pages hit, not the cache size. Keys evicted or
    /// invalidated since they were hit are silently dropped (their window
    /// counts die with the entry). Order is deterministic: shards in index
    /// order, keys in first-hit order within a shard.
    pub fn drain_window_hits(&self) -> Vec<(Arc<str>, u64)> {
        let mut out = Vec::new();
        for s in &self.shards {
            let mut shard = s.lock();
            let dirty = std::mem::take(&mut shard.dirty);
            for key in dirty {
                if let Some(e) = shard.map.get_mut(&key) {
                    if e.window_hits > 0 {
                        out.push((key, std::mem::take(&mut e.window_hits)));
                    }
                }
            }
        }
        out
    }

    /// Restore an entry with an explicit version (peer resync). Unlike
    /// [`PageCache::put`], the version is copied rather than bumped, so a
    /// resynced node agrees with its peers' entity tags. Counted as an
    /// insert or update in the statistics.
    pub fn restore_entry(&self, key: &str, body: Bytes, cost: f64, version: u64) {
        let size = body.len() as u64;
        let mut shard = self.shard_for(key).lock();
        shard.tick += 1;
        let tick = shard.tick;
        if let Some(e) = shard.map.get_mut(key) {
            let old = e.body.len() as u64;
            e.head = self.build_head(&body, version);
            e.body = body;
            e.cost = cost;
            e.version = version;
            e.stamp = tick;
            e.last_tick = tick;
            shard.bytes = shard.bytes - old + size;
            self.stats.update(old, size);
        } else {
            let k: Arc<str> = Arc::from(key);
            let head = self.build_head(&body, version);
            shard.map.insert(
                Arc::clone(&k),
                Entry {
                    body,
                    version,
                    head,
                    cost,
                    pinned: false,
                    freq: 0,
                    window_hits: 0,
                    last_tick: tick,
                    stamp: tick,
                },
            );
            shard.bytes += size;
            self.stats.insert(size);
            if self.policy.is_bounded() {
                let rank = self.policy.rank(tick, 0, cost, size, shard.inflation);
                shard.heap.push(Reverse((rank, tick, k)));
            }
        }
        if self.stale.is_some() {
            shard.stale.remove(key);
        }
        if let Some(budget) = self.per_shard_budget {
            shard.evict_to(budget, &self.stats, Some(key), self.stale_now());
        }
    }

    // ---- stale tombstones -------------------------------------------------

    /// Serve the tombstoned stale copy of `key`, if one exists within the
    /// policy's age bound. Counts a stale serve; an over-age copy is
    /// pruned and `None` returned. Without a [`StalePolicy`] this is
    /// always `None`.
    pub fn serve_stale(&self, key: &str) -> Option<StaleCopy> {
        let copy = self.lookup_stale(key, true)?;
        self.stats.stale_serve();
        Some(copy)
    }

    /// Like [`PageCache::serve_stale`] but without counting a stale serve
    /// — used to *check* fallback coverage without skewing measurements.
    pub fn peek_stale(&self, key: &str) -> Option<StaleCopy> {
        self.lookup_stale(key, false)
    }

    fn lookup_stale(&self, key: &str, prune_expired: bool) -> Option<StaleCopy> {
        let policy = self.stale?;
        let now_us = self.now_us();
        let mut shard = self.shard_for(key).lock();
        let e = shard.stale.get(key)?;
        let age_secs = now_us.saturating_sub(e.since_us) as f64 / 1e6;
        if age_secs > policy.max_age_secs {
            if prune_expired {
                shard.stale.remove(key);
            }
            return None;
        }
        Some(StaleCopy {
            body: e.body.clone(),
            version: e.version,
            epoch: e.epoch,
            age_secs,
        })
    }

    /// The key's current stale epoch: 0 while it has never been
    /// tombstoned, otherwise the number of live → stale transitions.
    /// Single-flight regeneration is pinned to "exactly one per
    /// (key, stale-epoch)" by the resilience property tests.
    pub fn stale_epoch(&self, key: &str) -> u64 {
        self.shard_for(key)
            .lock()
            .stale_epochs
            .get(key)
            .copied()
            .unwrap_or(0)
    }

    /// Number of tombstoned stale copies currently held.
    pub fn stale_len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().stale.len()).sum()
    }

    /// Drop every tombstone older than the policy's age bound. Called by
    /// the owner's heartbeat so dead keys do not accumulate.
    pub fn prune_stale(&self) {
        let Some(policy) = self.stale else { return };
        let horizon_us = (policy.max_age_secs * 1e6) as u64;
        let now_us = self.now_us();
        for s in &self.shards {
            let mut shard = s.lock();
            shard
                .stale
                .retain(|_, e| now_us.saturating_sub(e.since_us) <= horizon_us);
        }
    }

    // ---- single-flight regeneration ---------------------------------------

    /// Coalesce a miss for `key` onto any in-flight regeneration.
    ///
    /// The first caller becomes the *leader* ([`FlightOutcome::Lead`]) and
    /// must regenerate, then call [`PageCache::complete_flight`]. Callers
    /// arriving while the flight is open are *followers*: they count one
    /// coalesced miss, block up to `deadline`, and either observe the
    /// leader's result ([`FlightOutcome::Joined`]) or give up
    /// ([`FlightOutcome::TimedOut`] — typically falling back to
    /// [`PageCache::serve_stale`]). A follower whose wait expires while
    /// the flight is still open removes the (presumed dead) flight so the
    /// next miss can lead again.
    pub fn join_or_lead(&self, key: &str, deadline: Duration) -> FlightOutcome {
        let flight = {
            let mut shard = self.shard_for(key).lock();
            match shard.flights.get(key) {
                Some(f) => Arc::clone(f),
                None => {
                    let k: Arc<str> = Arc::from(key);
                    let f = Arc::new(Flight::default());
                    shard.flights.insert(Arc::clone(&k), Arc::clone(&f));
                    return FlightOutcome::Lead(FlightToken { key: k, flight: f });
                }
            }
        };
        self.stats.coalesce();
        let guard = match flight.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let (state, timeout) = match flight.cv.wait_timeout_while(guard, deadline, |s| !s.done) {
            Ok((g, t)) => (g, t.timed_out()),
            Err(poisoned) => {
                let (g, t) = poisoned.into_inner();
                (g, t.timed_out())
            }
        };
        if state.done {
            match &state.result {
                Some(page) => FlightOutcome::Joined(page.clone()),
                None => FlightOutcome::TimedOut, // leader failed
            }
        } else {
            drop(state);
            if timeout {
                // Presume the leader dead: clear the flight (if it is
                // still the same one) so the next miss can lead.
                let mut shard = self.shard_for(key).lock();
                if let Some(current) = shard.flights.get(key) {
                    if Arc::ptr_eq(current, &flight) {
                        shard.flights.remove(key);
                    }
                }
            }
            FlightOutcome::TimedOut
        }
    }

    /// Finish a flight: publish `page` (or `None` on regeneration
    /// failure) to every waiting follower and retire the flight. The
    /// leader is responsible for having inserted the fresh body with
    /// [`PageCache::put`] before completing.
    pub fn complete_flight(&self, token: FlightToken, page: Option<CachedPage>) {
        {
            let mut state = match token.flight.state.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            state.done = true;
            state.result = page;
        }
        token.flight.cv.notify_all();
        let mut shard = self.shard_for(&token.key).lock();
        if let Some(current) = shard.flights.get(&*token.key) {
            if Arc::ptr_eq(current, &token.flight) {
                shard.flights.remove(&*token.key);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn insert_get_roundtrip() {
        let c = PageCache::default();
        assert!(c.get("/home").is_none());
        let v = c.put("/home", body("<html>day 1</html>"), 50.0);
        assert_eq!(v, 1);
        let page = c.get("/home").unwrap();
        assert_eq!(&page.body[..], b"<html>day 1</html>");
        assert_eq!(page.version, 1);
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn update_in_place_bumps_version() {
        let c = PageCache::default();
        c.put("/medals", body("gold: 0"), 10.0);
        let v2 = c.put("/medals", body("gold: 1"), 10.0);
        assert_eq!(v2, 2);
        let page = c.get("/medals").unwrap();
        assert_eq!(&page.body[..], b"gold: 1");
        assert_eq!(page.version, 2);
        let s = c.stats();
        assert_eq!((s.inserts, s.updates), (1, 1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn invalidate_removes() {
        let c = PageCache::default();
        c.put("/a", body("x"), 1.0);
        assert!(c.invalidate("/a"));
        assert!(!c.invalidate("/a"));
        assert!(c.get("/a").is_none());
        assert_eq!(c.stats().invalidations, 1);
        assert_eq!(c.bytes(), 0);
    }

    #[test]
    fn invalidate_many_counts_present() {
        let c = PageCache::default();
        c.put("/a", body("1"), 1.0);
        c.put("/b", body("2"), 1.0);
        let n = c.invalidate_many(["/a", "/b", "/c"]);
        assert_eq!(n, 2);
        assert!(c.is_empty());
    }

    #[test]
    fn peek_does_not_count() {
        let c = PageCache::default();
        c.put("/a", body("1"), 1.0);
        c.peek("/a");
        c.peek("/zzz");
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (0, 0));
    }

    #[test]
    fn byte_accounting_tracks_sizes() {
        let c = PageCache::default();
        c.put("/a", body("1234"), 1.0);
        c.put("/b", body("12345678"), 1.0);
        assert_eq!(c.bytes(), 12);
        c.put("/a", body("12"), 1.0); // shrink in place
        assert_eq!(c.bytes(), 10);
        assert_eq!(c.stats().bytes_current, 10);
        assert_eq!(c.stats().bytes_peak, 12);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // Single shard so the budget applies globally.
        let c = PageCache::new(CacheConfig::bounded(30, ReplacementPolicy::Lru).with_shards(1));
        c.put("/a", body("aaaaaaaaaa"), 1.0); // 10 bytes
        c.put("/b", body("bbbbbbbbbb"), 1.0);
        c.put("/c", body("cccccccccc"), 1.0);
        c.get("/a"); // /b is now least recent
        c.put("/d", body("dddddddddd"), 1.0); // forces one eviction
        assert!(c.contains("/a"));
        assert!(!c.contains("/b"));
        assert!(c.contains("/c"));
        assert!(c.contains("/d"));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn lfu_evicts_least_frequent() {
        let c = PageCache::new(CacheConfig::bounded(30, ReplacementPolicy::Lfu).with_shards(1));
        c.put("/a", body("aaaaaaaaaa"), 1.0);
        c.put("/b", body("bbbbbbbbbb"), 1.0);
        c.put("/c", body("cccccccccc"), 1.0);
        for _ in 0..5 {
            c.get("/a");
            c.get("/c");
        }
        c.get("/b");
        c.put("/d", body("dddddddddd"), 1.0);
        assert!(!c.contains("/b"));
        assert!(c.contains("/a") && c.contains("/c") && c.contains("/d"));
    }

    #[test]
    fn gds_prefers_cheap_victim() {
        let c = PageCache::new(
            CacheConfig::bounded(30, ReplacementPolicy::GreedyDualSize).with_shards(1),
        );
        c.put("/cheap", body("aaaaaaaaaa"), 1.0);
        c.put("/dear", body("bbbbbbbbbb"), 500.0);
        c.put("/mid", body("cccccccccc"), 50.0);
        c.put("/new", body("dddddddddd"), 50.0);
        assert!(!c.contains("/cheap"));
        assert!(c.contains("/dear"));
    }

    #[test]
    fn pinned_entries_survive_eviction() {
        let c = PageCache::new(CacheConfig::bounded(20, ReplacementPolicy::Lru).with_shards(1));
        c.put("/home", body("aaaaaaaaaa"), 1.0);
        assert!(c.set_pinned("/home", true));
        c.put("/x", body("bbbbbbbbbb"), 1.0);
        c.put("/y", body("cccccccccc"), 1.0); // would evict /home under LRU
        assert!(c.contains("/home"));
        // Unpinning makes it evictable again.
        c.set_pinned("/home", false);
        c.put("/z", body("dddddddddd"), 1.0);
        assert!(!c.contains("/home"));
        assert!(!c.set_pinned("/missing", true));
    }

    #[test]
    fn oversized_entry_does_not_loop() {
        let c = PageCache::new(CacheConfig::bounded(5, ReplacementPolicy::Lru).with_shards(1));
        c.put("/big", body("0123456789"), 1.0);
        // Entry itself exceeds the budget: the eviction loop removes it
        // and stops (nothing left to evict).
        assert!(c.bytes() <= 10);
    }

    #[test]
    fn clear_empties_everything() {
        let c = PageCache::default();
        for i in 0..100 {
            c.put(&format!("/p{i}"), body("data"), 1.0);
        }
        assert_eq!(c.len(), 100);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.bytes(), 0);
        assert_eq!(c.stats().bytes_current, 0);
    }

    #[test]
    fn keys_lists_all() {
        let c = PageCache::default();
        c.put("/a", body("1"), 1.0);
        c.put("/b", body("2"), 1.0);
        let mut keys = c.keys();
        keys.sort();
        assert_eq!(keys, vec!["/a", "/b"]);
    }

    #[test]
    fn drain_window_hits_collects_and_resets() {
        let c = PageCache::default();
        c.put("/a", body("1"), 1.0);
        c.put("/b", body("2"), 1.0);
        c.put("/c", body("3"), 1.0);
        for _ in 0..3 {
            c.get("/a");
        }
        c.get("/b");
        c.peek("/c"); // peek must not count as traffic
        c.get("/zzz"); // miss must not count as traffic
        let mut hits: Vec<(String, u64)> = c
            .drain_window_hits()
            .into_iter()
            .map(|(k, n)| (k.to_string(), n))
            .collect();
        hits.sort();
        assert_eq!(hits, vec![("/a".into(), 3), ("/b".into(), 1)]);
        // The drain resets the window: nothing new means nothing drained.
        assert!(c.drain_window_hits().is_empty());
        // A fresh window starts counting from zero.
        c.get("/a");
        let again = c.drain_window_hits();
        assert_eq!(again.len(), 1);
        assert_eq!((&*again[0].0, again[0].1), ("/a", 1));
    }

    #[test]
    fn drain_window_hits_skips_invalidated_entries() {
        let c = PageCache::default();
        c.put("/a", body("1"), 1.0);
        c.get("/a");
        c.invalidate("/a");
        assert!(c.drain_window_hits().is_empty());
        // Re-inserting and hitting again re-enters the dirty list cleanly.
        c.put("/a", body("2"), 1.0);
        c.get("/a");
        assert_eq!(c.drain_window_hits().len(), 1);
    }

    #[test]
    fn concurrent_mixed_workload_is_consistent() {
        use std::thread;
        let c = Arc::new(PageCache::new(CacheConfig::default().with_shards(8)));
        let mut handles = Vec::new();
        for t in 0..8 {
            let c = Arc::clone(&c);
            handles.push(thread::spawn(move || {
                for i in 0..2_000u32 {
                    let key = format!("/page{}", (i * 7 + t) % 50);
                    match i % 4 {
                        0 => {
                            c.put(&key, Bytes::from(vec![b'x'; 64]), 5.0);
                        }
                        3 if i % 16 == 3 => {
                            c.invalidate(&key);
                        }
                        _ => {
                            c.get(&key);
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Accounting invariant: current bytes equals sum of live entries.
        let live_bytes: u64 = c
            .keys()
            .iter()
            .map(|k| c.peek(k).map(|p| p.body.len() as u64).unwrap_or(0))
            .sum();
        assert_eq!(c.bytes(), live_bytes);
        assert_eq!(c.stats().bytes_current, live_bytes);
    }

    fn stale_config(max_age_secs: f64) -> CacheConfig {
        CacheConfig::default().with_stale(StalePolicy::bounded(max_age_secs))
    }

    #[test]
    fn invalidation_tombstones_under_stale_policy() {
        let c = PageCache::new(stale_config(60.0));
        c.put("/a", body("v1"), 1.0);
        c.put("/a", body("v2"), 1.0);
        assert!(c.invalidate("/a"));
        assert!(c.get("/a").is_none(), "live entry is gone");
        let copy = c.serve_stale("/a").unwrap();
        assert_eq!(&copy.body[..], b"v2");
        assert_eq!(copy.version, 2);
        assert_eq!(copy.epoch, 1);
        assert_eq!(c.stats().stale_served, 1);
        // A fresh body supersedes the tombstone.
        c.put("/a", body("v3"), 1.0);
        assert!(c.serve_stale("/a").is_none());
        assert_eq!(c.stale_len(), 0);
    }

    #[test]
    fn stale_epoch_counts_live_to_stale_transitions() {
        let c = PageCache::new(stale_config(60.0));
        assert_eq!(c.stale_epoch("/a"), 0);
        c.put("/a", body("v1"), 1.0);
        c.invalidate("/a");
        assert_eq!(c.stale_epoch("/a"), 1);
        c.put("/a", body("v2"), 1.0);
        c.invalidate("/a");
        assert_eq!(c.stale_epoch("/a"), 2);
    }

    #[test]
    fn stale_age_is_bounded_by_the_policy() {
        let c = PageCache::new(stale_config(30.0));
        c.put("/a", body("v1"), 1.0);
        c.set_now_secs(100.0);
        c.invalidate("/a");
        c.set_now_secs(120.0);
        let copy = c.peek_stale("/a").unwrap();
        assert!((copy.age_secs - 20.0).abs() < 1e-9);
        c.set_now_secs(131.0); // 31 s stale > 30 s bound
        assert!(c.serve_stale("/a").is_none());
        assert_eq!(c.stale_len(), 0, "expired tombstone pruned on lookup");
        assert_eq!(c.stats().stale_served, 0, "expired copy never counted");
    }

    #[test]
    fn prune_stale_drops_expired_tombstones() {
        let c = PageCache::new(stale_config(10.0));
        c.put("/old", body("x"), 1.0);
        c.invalidate("/old");
        c.set_now_secs(5.0);
        c.put("/new", body("y"), 1.0);
        c.invalidate("/new");
        c.set_now_secs(11.0);
        c.prune_stale();
        assert_eq!(c.stale_len(), 1);
        assert!(c.peek_stale("/new").is_some());
    }

    #[test]
    fn eviction_tombstones_under_stale_policy() {
        let c = PageCache::new(
            CacheConfig::bounded(20, ReplacementPolicy::Lru)
                .with_shards(1)
                .with_stale(StalePolicy::bounded(60.0)),
        );
        c.put("/a", body("aaaaaaaaaa"), 1.0);
        c.put("/b", body("bbbbbbbbbb"), 1.0);
        c.put("/c", body("cccccccccc"), 1.0); // evicts /a
        assert!(!c.contains("/a"));
        let copy = c.serve_stale("/a").unwrap();
        assert_eq!(&copy.body[..], b"aaaaaaaaaa");
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn clear_is_a_cold_restart() {
        let c = PageCache::new(stale_config(60.0));
        c.put("/a", body("v1"), 1.0);
        c.invalidate("/a");
        assert_eq!(c.stale_len(), 1);
        c.clear();
        assert_eq!(c.stale_len(), 0);
        assert!(c.serve_stale("/a").is_none());
    }

    #[test]
    fn without_stale_policy_nothing_is_tombstoned() {
        let c = PageCache::default();
        c.put("/a", body("v1"), 1.0);
        c.invalidate("/a");
        assert!(c.serve_stale("/a").is_none());
        assert_eq!(c.stale_epoch("/a"), 0);
        assert_eq!(c.stale_len(), 0);
    }

    #[test]
    fn single_flight_has_one_leader_and_counted_followers() {
        let c = PageCache::default();
        let token = match c.join_or_lead("/k", Duration::from_millis(10)) {
            FlightOutcome::Lead(t) => t,
            other => panic!("first caller must lead, got {other:?}"),
        };
        // A second caller while the flight is open times out (nobody
        // completes it yet) and counts one coalesced miss.
        match c.join_or_lead("/k", Duration::from_millis(5)) {
            FlightOutcome::TimedOut => {}
            other => panic!("expected timeout, got {other:?}"),
        }
        assert_eq!(c.stats().coalesced, 1);
        c.complete_flight(
            token,
            Some(CachedPage {
                body: body("fresh"),
                version: 1,
                head: None,
            }),
        );
        // The flight is retired: the next miss leads again.
        assert!(matches!(
            c.join_or_lead("/k", Duration::from_millis(1)),
            FlightOutcome::Lead(_)
        ));
    }

    #[test]
    fn followers_join_the_leaders_result_across_threads() {
        use std::thread;
        let c = Arc::new(PageCache::default());
        let token = match c.join_or_lead("/page", Duration::from_secs(5)) {
            FlightOutcome::Lead(t) => t,
            other => panic!("expected lead, got {other:?}"),
        };
        let mut joiners = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            joiners.push(thread::spawn(move || {
                c.join_or_lead("/page", Duration::from_secs(5))
            }));
        }
        // Give followers a moment to attach, then publish.
        thread::sleep(Duration::from_millis(20));
        c.put("/page", body("fresh"), 1.0);
        let page = c.peek("/page").unwrap();
        c.complete_flight(token, Some(page));
        for j in joiners {
            match j.join().unwrap() {
                FlightOutcome::Joined(page) => assert_eq!(&page.body[..], b"fresh"),
                // A follower that raced in after completion leads a
                // fresh flight; it must still see the cached body.
                FlightOutcome::Lead(t) => {
                    let cached = c.peek("/page").unwrap();
                    assert_eq!(&cached.body[..], b"fresh");
                    c.complete_flight(t, Some(cached));
                }
                FlightOutcome::TimedOut => panic!("follower timed out"),
            }
        }
    }

    #[test]
    fn failed_flight_wakes_followers_without_a_body() {
        use std::thread;
        let c = Arc::new(PageCache::default());
        let token = match c.join_or_lead("/page", Duration::from_secs(5)) {
            FlightOutcome::Lead(t) => t,
            other => panic!("expected lead, got {other:?}"),
        };
        let follower = {
            let c = Arc::clone(&c);
            thread::spawn(move || c.join_or_lead("/page", Duration::from_secs(5)))
        };
        thread::sleep(Duration::from_millis(20));
        c.complete_flight(token, None);
        match follower.join().unwrap() {
            FlightOutcome::TimedOut => {}
            FlightOutcome::Lead(t) => c.complete_flight(t, None),
            FlightOutcome::Joined(_) => panic!("failed flight must not produce a body"),
        }
    }

    #[test]
    fn timed_out_follower_clears_a_dead_flight() {
        let c = PageCache::default();
        let token = match c.join_or_lead("/k", Duration::from_millis(1)) {
            FlightOutcome::Lead(t) => t,
            other => panic!("expected lead, got {other:?}"),
        };
        // Leader "dies" (token leaked, never completed). A follower's
        // expired wait clears the flight so the key is not wedged.
        std::mem::forget(token);
        assert!(matches!(
            c.join_or_lead("/k", Duration::from_millis(5)),
            FlightOutcome::TimedOut
        ));
        assert!(matches!(
            c.join_or_lead("/k", Duration::from_millis(1)),
            FlightOutcome::Lead(_)
        ));
    }

    #[test]
    fn head_builder_runs_on_fill_not_on_hit() {
        use std::sync::atomic::AtomicUsize;
        let c = PageCache::default();
        let calls = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&calls);
        let installed = c.set_head_builder(Arc::new(move |body: &Bytes, version: u64| {
            counter.fetch_add(1, Relaxed);
            PrebuiltHead {
                pre: Bytes::copy_from_slice(format!("len={}", body.len()).as_bytes()),
                post: Bytes::copy_from_slice(format!("v={version}").as_bytes()),
            }
        }));
        assert!(installed);
        // The first builder wins; a second install is refused.
        assert!(!c.set_head_builder(Arc::new(|_: &Bytes, _| PrebuiltHead {
            pre: Bytes::new(),
            post: Bytes::new(),
        })));
        c.put("/a", body("12345"), 1.0);
        assert_eq!(calls.load(Relaxed), 1);
        for _ in 0..10 {
            let h = c.get("/a").unwrap().head.unwrap();
            assert_eq!(&h.pre[..], b"len=5");
            assert_eq!(&h.post[..], b"v=1");
        }
        assert_eq!(calls.load(Relaxed), 1, "hits never rebuild the head");
        // Update-in-place recomputes for the new body and version.
        c.put("/a", body("123"), 1.0);
        let h = c.peek("/a").unwrap().head.unwrap();
        assert_eq!(&h.pre[..], b"len=3");
        assert_eq!(&h.post[..], b"v=2");
        // Restore (peer resync) builds for the copied version.
        c.restore_entry("/b", body("xy"), 1.0, 9);
        let h = c.peek("/b").unwrap().head.unwrap();
        assert_eq!(&h.pre[..], b"len=2");
        assert_eq!(&h.post[..], b"v=9");
    }

    #[test]
    fn without_head_builder_pages_are_headless() {
        let c = PageCache::default();
        c.put("/a", body("x"), 1.0);
        assert!(c.get("/a").unwrap().head.is_none());
    }

    #[test]
    fn eviction_respects_total_budget_across_fill() {
        let c = PageCache::new(CacheConfig::bounded(1_000, ReplacementPolicy::Lru).with_shards(1));
        for i in 0..200 {
            c.put(&format!("/p{i}"), Bytes::from(vec![0u8; 50]), 1.0);
        }
        assert!(c.bytes() <= 1_000, "bytes {}", c.bytes());
        assert!(c.len() <= 20);
        assert!(c.stats().evictions >= 180);
    }
}
