//! Lock-free cache statistics.
//!
//! Counters are relaxed atomics: they are monotonic event counts whose
//! exact interleaving does not matter, only their totals (Rust Atomics and
//! Locks ch. 2's "statistics" pattern).

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Shared, thread-safe counters for one cache.
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    updates: AtomicU64,
    invalidations: AtomicU64,
    evictions: AtomicU64,
    bytes_current: AtomicU64,
    bytes_peak: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Successful lookups.
    pub hits: u64,
    /// Failed lookups.
    pub misses: u64,
    /// First-time insertions.
    pub inserts: u64,
    /// In-place updates of existing entries.
    pub updates: u64,
    /// Explicit invalidations.
    pub invalidations: u64,
    /// Capacity evictions.
    pub evictions: u64,
    /// Bytes currently cached.
    pub bytes_current: u64,
    /// High-water mark of cached bytes.
    pub bytes_peak: u64,
}

impl StatsSnapshot {
    /// Hit rate in `[0, 1]`; 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl CacheStats {
    /// Record a hit.
    pub fn hit(&self) {
        self.hits.fetch_add(1, Relaxed);
    }

    /// Record a miss.
    pub fn miss(&self) {
        self.misses.fetch_add(1, Relaxed);
    }

    /// Record an insertion of `bytes` new bytes.
    pub fn insert(&self, bytes: u64) {
        self.inserts.fetch_add(1, Relaxed);
        self.grow(bytes);
    }

    /// Record an in-place update changing the entry size by
    /// `old_bytes → new_bytes`.
    pub fn update(&self, old_bytes: u64, new_bytes: u64) {
        self.updates.fetch_add(1, Relaxed);
        self.shrink(old_bytes);
        self.grow(new_bytes);
    }

    /// Record an invalidation freeing `bytes`.
    pub fn invalidate(&self, bytes: u64) {
        self.invalidations.fetch_add(1, Relaxed);
        self.shrink(bytes);
    }

    /// Record an eviction freeing `bytes`.
    pub fn evict(&self, bytes: u64) {
        self.evictions.fetch_add(1, Relaxed);
        self.shrink(bytes);
    }

    fn grow(&self, bytes: u64) {
        let now = self.bytes_current.fetch_add(bytes, Relaxed) + bytes;
        // Racy max update is fine: peak is advisory and monotone.
        self.bytes_peak.fetch_max(now, Relaxed);
    }

    fn shrink(&self, bytes: u64) {
        self.bytes_current.fetch_sub(bytes, Relaxed);
    }

    /// Copy the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            hits: self.hits.load(Relaxed),
            misses: self.misses.load(Relaxed),
            inserts: self.inserts.load(Relaxed),
            updates: self.updates.load(Relaxed),
            invalidations: self.invalidations.load(Relaxed),
            evictions: self.evictions.load(Relaxed),
            bytes_current: self.bytes_current.load(Relaxed),
            bytes_peak: self.bytes_peak.load(Relaxed),
        }
    }

    /// Zero the event counters (byte gauges are left alone: they track
    /// live state, not events).
    pub fn reset_events(&self) {
        self.hits.store(0, Relaxed);
        self.misses.store(0, Relaxed);
        self.inserts.store(0, Relaxed);
        self.updates.store(0, Relaxed);
        self.invalidations.store(0, Relaxed);
        self.evictions.store(0, Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate() {
        let s = CacheStats::default();
        s.hit();
        s.hit();
        s.miss();
        s.insert(100);
        s.update(100, 150);
        s.invalidate(150);
        let snap = s.snapshot();
        assert_eq!(snap.hits, 2);
        assert_eq!(snap.misses, 1);
        assert_eq!(snap.inserts, 1);
        assert_eq!(snap.updates, 1);
        assert_eq!(snap.invalidations, 1);
        assert_eq!(snap.bytes_current, 0);
        assert_eq!(snap.bytes_peak, 150);
    }

    #[test]
    fn hit_rate() {
        let s = CacheStats::default();
        assert_eq!(s.snapshot().hit_rate(), 0.0);
        for _ in 0..9 {
            s.hit();
        }
        s.miss();
        assert!((s.snapshot().hit_rate() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn reset_keeps_gauges() {
        let s = CacheStats::default();
        s.insert(500);
        s.hit();
        s.reset_events();
        let snap = s.snapshot();
        assert_eq!(snap.hits, 0);
        assert_eq!(snap.inserts, 0);
        assert_eq!(snap.bytes_current, 500);
    }

    #[test]
    fn concurrent_counting_is_exact() {
        use std::sync::Arc;
        let s = Arc::new(CacheStats::default());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    s.hit();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.snapshot().hits, 80_000);
    }
}
