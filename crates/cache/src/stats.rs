//! Lock-free cache statistics.
//!
//! Counters are relaxed atomics: they are monotonic event counts whose
//! exact interleaving does not matter, only their totals (Rust Atomics and
//! Locks ch. 2's "statistics" pattern). The cells are
//! [`nagano_telemetry`] handles, so a cache can [`bind`](CacheStats::bind)
//! the very same counters into a [`MetricsRegistry`] — exporters then see
//! live values with no extra bookkeeping on the hot path.

use nagano_telemetry::{Counter, Gauge, MetricsRegistry};

/// Shared, thread-safe counters for one cache.
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: Counter,
    misses: Counter,
    inserts: Counter,
    updates: Counter,
    invalidations: Counter,
    evictions: Counter,
    stale_served: Counter,
    coalesced: Counter,
    bytes_current: Gauge,
    bytes_peak: Gauge,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Successful lookups.
    pub hits: u64,
    /// Failed lookups.
    pub misses: u64,
    /// First-time insertions.
    pub inserts: u64,
    /// In-place updates of existing entries.
    pub updates: u64,
    /// Explicit invalidations.
    pub invalidations: u64,
    /// Capacity evictions.
    pub evictions: u64,
    /// Lookups answered from a tombstoned stale copy (serve-stale-on-error
    /// / stale-while-revalidate under the [`StalePolicy`](crate::StalePolicy)).
    pub stale_served: u64,
    /// Misses that coalesced onto an in-flight regeneration instead of
    /// starting their own (single-flight followers).
    pub coalesced: u64,
    /// Bytes currently cached.
    pub bytes_current: u64,
    /// High-water mark of cached bytes.
    pub bytes_peak: u64,
}

impl StatsSnapshot {
    /// Hit rate in `[0, 1]`; 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl CacheStats {
    /// Record a hit.
    pub fn hit(&self) {
        self.hits.incr();
    }

    /// Record a miss.
    pub fn miss(&self) {
        self.misses.incr();
    }

    /// Record an insertion of `bytes` new bytes.
    pub fn insert(&self, bytes: u64) {
        self.inserts.incr();
        self.grow(bytes);
    }

    /// Record an in-place update changing the entry size by
    /// `old_bytes → new_bytes`.
    pub fn update(&self, old_bytes: u64, new_bytes: u64) {
        self.updates.incr();
        self.shrink(old_bytes);
        self.grow(new_bytes);
    }

    /// Record an invalidation freeing `bytes`.
    pub fn invalidate(&self, bytes: u64) {
        self.invalidations.incr();
        self.shrink(bytes);
    }

    /// Record an eviction freeing `bytes`.
    pub fn evict(&self, bytes: u64) {
        self.evictions.incr();
        self.shrink(bytes);
    }

    /// Record a lookup answered from a stale tombstone.
    pub fn stale_serve(&self) {
        self.stale_served.incr();
    }

    /// Record a miss that coalesced onto an in-flight regeneration.
    pub fn coalesce(&self) {
        self.coalesced.incr();
    }

    fn grow(&self, bytes: u64) {
        let now = self.bytes_current.add(bytes);
        // Racy max update is fine: peak is advisory and monotone.
        self.bytes_peak.record_max(now);
    }

    fn shrink(&self, bytes: u64) {
        self.bytes_current.sub(bytes);
    }

    /// Register this cache's live cells into `registry` under the
    /// `nagano_cache_*` names, tagged with `labels` (typically
    /// `site=<name>`). The registry shares the cells — subsequent events
    /// show up in exports without copying.
    pub fn bind(&self, registry: &MetricsRegistry, labels: &[(&str, &str)]) {
        registry.bind_counter("nagano_cache_hits_total", labels, &self.hits);
        registry.bind_counter("nagano_cache_misses_total", labels, &self.misses);
        registry.bind_counter("nagano_cache_inserts_total", labels, &self.inserts);
        registry.bind_counter("nagano_cache_updates_total", labels, &self.updates);
        registry.bind_counter(
            "nagano_cache_invalidations_total",
            labels,
            &self.invalidations,
        );
        registry.bind_counter("nagano_cache_evictions_total", labels, &self.evictions);
        registry.bind_counter(
            "nagano_cache_stale_served_total",
            labels,
            &self.stale_served,
        );
        registry.bind_counter("nagano_cache_coalesced_total", labels, &self.coalesced);
        registry.bind_gauge("nagano_cache_bytes_current", labels, &self.bytes_current);
        registry.bind_gauge("nagano_cache_bytes_peak", labels, &self.bytes_peak);
    }

    /// Copy the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            hits: self.hits.get(),
            misses: self.misses.get(),
            inserts: self.inserts.get(),
            updates: self.updates.get(),
            invalidations: self.invalidations.get(),
            evictions: self.evictions.get(),
            stale_served: self.stale_served.get(),
            coalesced: self.coalesced.get(),
            bytes_current: self.bytes_current.get(),
            bytes_peak: self.bytes_peak.get(),
        }
    }

    /// Zero the event counters (byte gauges are left alone: they track
    /// live state, not events).
    pub fn reset_events(&self) {
        self.hits.reset();
        self.misses.reset();
        self.inserts.reset();
        self.updates.reset();
        self.invalidations.reset();
        self.evictions.reset();
        self.stale_served.reset();
        self.coalesced.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate() {
        let s = CacheStats::default();
        s.hit();
        s.hit();
        s.miss();
        s.insert(100);
        s.update(100, 150);
        s.invalidate(150);
        let snap = s.snapshot();
        assert_eq!(snap.hits, 2);
        assert_eq!(snap.misses, 1);
        assert_eq!(snap.inserts, 1);
        assert_eq!(snap.updates, 1);
        assert_eq!(snap.invalidations, 1);
        assert_eq!(snap.bytes_current, 0);
        assert_eq!(snap.bytes_peak, 150);
    }

    #[test]
    fn hit_rate() {
        let s = CacheStats::default();
        assert_eq!(s.snapshot().hit_rate(), 0.0);
        for _ in 0..9 {
            s.hit();
        }
        s.miss();
        assert!((s.snapshot().hit_rate() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn reset_keeps_gauges() {
        let s = CacheStats::default();
        s.insert(500);
        s.hit();
        s.reset_events();
        let snap = s.snapshot();
        assert_eq!(snap.hits, 0);
        assert_eq!(snap.inserts, 0);
        assert_eq!(snap.bytes_current, 500);
    }

    #[test]
    fn concurrent_counting_is_exact() {
        use std::sync::Arc;
        let s = Arc::new(CacheStats::default());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    s.hit();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.snapshot().hits, 80_000);
    }

    #[test]
    fn bind_exposes_live_cells() {
        use nagano_telemetry::{prometheus_text, MetricsRegistry};
        let reg = MetricsRegistry::new();
        let s = CacheStats::default();
        s.bind(&reg, &[("site", "nagano")]);
        s.hit();
        s.insert(64);
        let text = prometheus_text(&reg);
        assert!(text.contains("nagano_cache_hits_total{site=\"nagano\"} 1"));
        assert!(text.contains("nagano_cache_bytes_current{site=\"nagano\"} 64"));
        assert!(text.contains("nagano_cache_bytes_peak{site=\"nagano\"} 64"));
    }
}
