//! The dynamic-page cache (§2 of the paper).
//!
//! Server programs check this cache before generating a page; the trigger
//! monitor keeps it consistent by either **invalidating** stale entries or
//! — the key 1998 innovation — **updating them in place** with freshly
//! rendered bytes, so hot pages are never missing and hit rates approach
//! 100%.
//!
//! Layout:
//! * [`PageCache`] — a sharded concurrent map from page keys to immutable
//!   byte bodies, with statistics and optional capacity bounds.
//! * [`policy`] — replacement policies for the bounded configuration:
//!   LRU, LFU, and GreedyDual-Size (the cost-aware algorithm of the
//!   paper's reference \[1\], Cao & Irani). At the Olympics site "all dynamic
//!   pages could be cached in memory without overflow ... the system never
//!   had to apply a cache replacement algorithm" — the unbounded default —
//!   but the bounded policies let the experiments show what happens when
//!   memory is scarce.
//! * [`CacheFleet`] — the eight per-frame serving caches fed by the
//!   trigger monitor's distributor (Figure 6).
//! * [`FragmentStore`] — inner-HTML bodies of §2's page *fragments*
//!   (result tables, the medal box, headlines), the splice material for
//!   composition-plan serving (DESIGN.md §14). Same sharded zero-copy
//!   machinery as the page cache, keyed by fragment URL.
//! * [`hotness`] — per-page EWMA access frequency, folded from the
//!   members' hit counters once per sim minute; the hybrid propagation
//!   policy uses it to regenerate hot pages and invalidate the cold tail
//!   (DESIGN.md §12).
//! * Serving-path resilience (DESIGN.md §11): per-shard *single-flight*
//!   maps so concurrent misses for one key coalesce into one
//!   regeneration ([`PageCache::join_or_lead`]), and an optional
//!   [`StalePolicy`] that tombstones evicted/invalidated bodies for
//!   bounded-age serve-stale-on-error ([`PageCache::serve_stale`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod fleet;
pub mod fragment;
pub mod hotness;
pub mod policy;
pub mod stats;

pub use cache::{
    CacheConfig, CachedPage, FlightOutcome, FlightToken, HeadBuilder, PageCache, PrebuiltHead,
    StaleCopy, StalePolicy,
};
pub use fleet::CacheFleet;
pub use fragment::{FragmentEntry, FragmentStore, FragmentStoreStats};
pub use hotness::HotnessTracker;
pub use policy::ReplacementPolicy;
pub use stats::{CacheStats, StatsSnapshot};
