//! Replacement policies for the bounded cache configuration.
//!
//! The Olympics deployment sized memory so that "the system never had to
//! apply a cache replacement algorithm", so [`ReplacementPolicy::Unbounded`]
//! is the faithful default. The bounded policies exist for the memory
//! experiment and for downstream users with smaller machines:
//!
//! * **LRU** — classic recency.
//! * **LFU** — frequency with recency tie-break.
//! * **GreedyDual-Size** — the cost-aware policy from Cao & Irani
//!   (reference \[1\] of the paper): entries are ranked by
//!   `L + generation_cost / size`, so pages that are cheap to regenerate or
//!   large are preferred victims. `L` is the inflation term, raised to the
//!   rank of each evicted entry.

use std::cmp::Ordering;

/// Which eviction policy a cache uses when a byte budget is configured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// Never evict (the paper's production configuration).
    #[default]
    Unbounded,
    /// Evict the least recently used entry.
    Lru,
    /// Evict the least frequently used entry (ties broken by recency).
    Lfu,
    /// Evict by GreedyDual-Size rank `L + cost/size`.
    GreedyDualSize,
}

/// A total-ordered f64 for use in priority queues.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F64Ord(pub f64);

impl Eq for F64Ord {}

impl PartialOrd for F64Ord {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for F64Ord {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Eviction rank of one entry. Lower ranks are evicted first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rank {
    /// LRU: last-access tick.
    Recency(u64),
    /// LFU: (frequency, last-access tick).
    Frequency(u64, u64),
    /// GDS: inflated value `L + cost/size`.
    Value(F64Ord),
}

impl ReplacementPolicy {
    /// Compute the rank of an entry under this policy.
    ///
    /// `tick` is the shard's logical access clock, `freq` the entry's hit
    /// count, `cost` its generation cost (milliseconds of CPU), `size` its
    /// byte size, and `inflation` the shard's current GDS `L`.
    pub fn rank(self, tick: u64, freq: u64, cost: f64, size: u64, inflation: f64) -> Rank {
        match self {
            ReplacementPolicy::Unbounded | ReplacementPolicy::Lru => Rank::Recency(tick),
            ReplacementPolicy::Lfu => Rank::Frequency(freq, tick),
            ReplacementPolicy::GreedyDualSize => {
                Rank::Value(F64Ord(inflation + cost / size.max(1) as f64))
            }
        }
    }

    /// Whether this policy ever evicts.
    pub fn is_bounded(self) -> bool {
        !matches!(self, ReplacementPolicy::Unbounded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_orders_by_recency() {
        let p = ReplacementPolicy::Lru;
        let old = p.rank(1, 100, 1.0, 10, 0.0);
        let new = p.rank(2, 1, 1.0, 10, 0.0);
        assert!(old < new);
    }

    #[test]
    fn lfu_orders_by_frequency_then_recency() {
        let p = ReplacementPolicy::Lfu;
        let rare = p.rank(9, 1, 1.0, 10, 0.0);
        let common = p.rank(1, 50, 1.0, 10, 0.0);
        assert!(rare < common);
        let older = p.rank(1, 5, 1.0, 10, 0.0);
        let newer = p.rank(2, 5, 1.0, 10, 0.0);
        assert!(older < newer);
    }

    #[test]
    fn gds_prefers_cheap_and_large_victims() {
        let p = ReplacementPolicy::GreedyDualSize;
        let cheap = p.rank(0, 0, 1.0, 1000, 0.0);
        let expensive = p.rank(0, 0, 100.0, 1000, 0.0);
        assert!(cheap < expensive);
        let large = p.rank(0, 0, 10.0, 100_000, 0.0);
        let small = p.rank(0, 0, 10.0, 100, 0.0);
        assert!(large < small);
    }

    #[test]
    fn gds_inflation_raises_rank() {
        let p = ReplacementPolicy::GreedyDualSize;
        let before = p.rank(0, 0, 10.0, 100, 0.0);
        let after = p.rank(0, 0, 10.0, 100, 5.0);
        assert!(before < after);
    }

    #[test]
    fn gds_handles_zero_size() {
        // size.max(1) guards the division.
        let p = ReplacementPolicy::GreedyDualSize;
        let r = p.rank(0, 0, 10.0, 0, 0.0);
        assert_eq!(r, Rank::Value(F64Ord(10.0)));
    }

    #[test]
    fn f64ord_total_order() {
        let mut v = vec![F64Ord(3.0), F64Ord(1.0), F64Ord(2.0)];
        v.sort();
        assert_eq!(v, vec![F64Ord(1.0), F64Ord(2.0), F64Ord(3.0)]);
    }

    #[test]
    fn bounded_flag() {
        assert!(!ReplacementPolicy::Unbounded.is_bounded());
        assert!(ReplacementPolicy::Lru.is_bounded());
        assert!(ReplacementPolicy::Lfu.is_bounded());
        assert!(ReplacementPolicy::GreedyDualSize.is_bounded());
    }
}
