//! Property-based tests for the page cache against simple reference models.

use bytes::Bytes;
use proptest::prelude::*;
use std::collections::HashMap;

use nagano_cache::{CacheConfig, PageCache, ReplacementPolicy};

#[derive(Debug, Clone)]
enum Op {
    Put(u8, u8), // key, size selector
    Get(u8),
    Invalidate(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..40u8, 1..20u8).prop_map(|(k, s)| Op::Put(k, s)),
        (0..40u8).prop_map(Op::Get),
        (0..40u8).prop_map(Op::Invalidate),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// An unbounded cache behaves exactly like a HashMap.
    #[test]
    fn unbounded_cache_is_a_map(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        let cache = PageCache::new(CacheConfig::unbounded().with_shards(4));
        let mut model: HashMap<String, Vec<u8>> = HashMap::new();
        let mut versions: HashMap<String, u64> = HashMap::new();
        for op in ops {
            match op {
                Op::Put(k, s) => {
                    let key = format!("/p{k}");
                    let data = vec![k; s as usize];
                    let v = cache.put(&key, Bytes::from(data.clone()), 1.0);
                    model.insert(key.clone(), data);
                    let expect = versions.entry(key).or_insert(0);
                    *expect += 1;
                    prop_assert_eq!(v, *expect);
                }
                Op::Get(k) => {
                    let key = format!("/p{k}");
                    let got = cache.get(&key).map(|p| p.body.to_vec());
                    prop_assert_eq!(got, model.get(&key).cloned());
                }
                Op::Invalidate(k) => {
                    let key = format!("/p{k}");
                    let was = cache.invalidate(&key);
                    prop_assert_eq!(was, model.remove(&key).is_some());
                    versions.remove(&key);
                }
            }
            // Byte accounting invariant holds after every operation.
            let model_bytes: u64 = model.values().map(|v| v.len() as u64).sum();
            prop_assert_eq!(cache.bytes(), model_bytes);
            prop_assert_eq!(cache.len(), model.len());
        }
    }

    /// A single-shard LRU cache matches a straightforward ordered-list
    /// reference implementation.
    #[test]
    fn lru_matches_reference(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        const BUDGET: u64 = 100;
        const ENTRY: usize = 10; // fixed entry size keeps the model simple
        let cache = PageCache::new(
            CacheConfig::bounded(BUDGET, ReplacementPolicy::Lru).with_shards(1),
        );
        // Reference: Vec of keys, most recently used last.
        let mut order: Vec<String> = Vec::new();
        for op in ops {
            match op {
                Op::Put(k, _) => {
                    let key = format!("/p{k}");
                    cache.put(&key, Bytes::from(vec![k; ENTRY]), 1.0);
                    order.retain(|x| x != &key);
                    order.push(key);
                    while order.len() * ENTRY > BUDGET as usize {
                        order.remove(0);
                    }
                }
                Op::Get(k) => {
                    let key = format!("/p{k}");
                    let hit = cache.get(&key).is_some();
                    let model_hit = order.contains(&key);
                    prop_assert_eq!(hit, model_hit, "key {}", key);
                    if model_hit {
                        order.retain(|x| x != &key);
                        order.push(key);
                    }
                }
                Op::Invalidate(k) => {
                    let key = format!("/p{k}");
                    let was = cache.invalidate(&key);
                    let model_was = order.contains(&key);
                    order.retain(|x| x != &key);
                    prop_assert_eq!(was, model_was);
                }
            }
            prop_assert_eq!(cache.len(), order.len());
        }
    }

    /// Bounded caches never exceed their byte budget when every entry fits
    /// individually.
    #[test]
    fn bounded_budget_is_respected(
        policy_sel in 0..3u8,
        ops in proptest::collection::vec((0..60u8, 1..8u8), 1..300),
    ) {
        let policy = match policy_sel {
            0 => ReplacementPolicy::Lru,
            1 => ReplacementPolicy::Lfu,
            _ => ReplacementPolicy::GreedyDualSize,
        };
        let cache = PageCache::new(CacheConfig::bounded(64, policy).with_shards(1));
        for (k, s) in ops {
            cache.put(&format!("/p{k}"), Bytes::from(vec![0u8; s as usize]), k as f64);
            prop_assert!(cache.bytes() <= 64, "bytes {} policy {:?}", cache.bytes(), policy);
        }
    }

    /// Stats identity: hits + misses equals the number of gets; the gauge
    /// equals live bytes.
    #[test]
    fn stats_identities(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let cache = PageCache::new(CacheConfig::unbounded().with_shards(2));
        let mut gets = 0u64;
        for op in ops {
            match op {
                Op::Put(k, s) => {
                    cache.put(&format!("/p{k}"), Bytes::from(vec![0u8; s as usize]), 1.0);
                }
                Op::Get(k) => {
                    cache.get(&format!("/p{k}"));
                    gets += 1;
                }
                Op::Invalidate(k) => {
                    cache.invalidate(&format!("/p{k}"));
                }
            }
        }
        let s = cache.stats();
        prop_assert_eq!(s.hits + s.misses, gets);
        prop_assert_eq!(s.bytes_current, cache.bytes());
        prop_assert!(s.bytes_peak >= s.bytes_current);
    }
}
