//! Unified telemetry for the Nagano reproduction.
//!
//! The paper's whole 1998 design was driven by measurement — the 1996
//! access-log analysis shaped the page hierarchy, and the evaluation lives
//! on per-hour hit series and update-freshness latencies. This crate gives
//! every subsystem one shared observability substrate instead of the
//! per-crate ad-hoc snapshot types it replaces:
//!
//! * [`registry`] — a [`MetricsRegistry`] of named, labeled counters,
//!   gauges, and log-bucketed histograms (reusing
//!   [`nagano_simcore::Histogram`] buckets). Counters and gauges are
//!   relaxed atomics shared by `Arc`, so a subsystem keeps its own handle
//!   and the registry sees the same cells. Metric names follow the
//!   `nagano_<subsystem>_<metric>` convention.
//! * [`span`] — structured traces: a per-transaction *propagation trace*
//!   (txn receipt → ODG traversal → regenerate/invalidate decision →
//!   per-site distribute → cache apply) and a per-request *serving trace*
//!   (route decision → site → cache hit/miss → render), recorded into a
//!   bounded ring buffer with deterministic sim-time timestamps so traces
//!   are reproducible under a fixed seed.
//! * [`export`] — Prometheus text format and JSON snapshot writers over a
//!   registry's samples, plus a text-format parser used by round-trip
//!   tests and live `/metrics` scrapes.
//! * [`slo`] — declarative service-level objectives (`99% of <metric> <
//!   30`, `p99 of <metric> < 0.25`) evaluated against the registry, with
//!   multi-window burn-rate alerts over hourly sim-time snapshots.
//!
//! Everything here is `std`-only besides the simcore numerics: no
//! wall-clock reads, no global state, deterministic iteration order
//! (metrics sort by name, then labels).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod registry;
pub mod slo;
pub mod span;

pub use export::{
    json_snapshot, parse_prometheus_line, prom_escape, prom_unescape, prometheus_text,
};
pub use registry::{Counter, Gauge, HistogramHandle, MetricSample, MetricValue, MetricsRegistry};
pub use slo::{slo_json, BurnAlert, Objective, SloEngine, SloOutcome, SloRule};
pub use span::{Span, Trace, TraceBuffer, TraceKind};

/// The full telemetry bundle one system (a serving site, a cluster sim)
/// carries: the metric registry plus the two trace ring buffers.
#[derive(Debug, Default)]
pub struct Telemetry {
    /// Shared metric registry.
    pub registry: MetricsRegistry,
    /// Propagation traces: DB commit → all caches updated.
    pub propagation: TraceBuffer,
    /// Serving traces: route decision → response.
    pub serving: TraceBuffer,
}

impl Telemetry {
    /// A bundle with default ring-buffer capacities (4096 traces each).
    pub fn new() -> Self {
        Telemetry::default()
    }
}
