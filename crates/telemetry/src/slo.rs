//! Declarative service-level objectives with multi-window burn-rate
//! alerts.
//!
//! The paper's implicit freshness contract ("an update is visible at
//! every serving site within seconds") becomes an explicit, evaluable
//! rule here. A [`SloRule`] is parsed from one line of text:
//!
//! ```text
//! fresh-30s: 99% of nagano_cluster_update_to_serve_seconds < 30
//! serve-p99: p99 of nagano_httpd_request_seconds < 0.25
//! ```
//!
//! * `<name>: <pct>% of <metric> < <bound>` — at least `pct`% of the
//!   observations in histogram `<metric>` must fall below `<bound>`
//!   ([`Objective::FractionBelow`]). The complement `1 - pct/100` is the
//!   rule's error budget, which feeds burn-rate alerting.
//! * `<name>: p<q> of <metric> < <max>` — the `q`-th percentile of
//!   `<metric>` must stay below `<max>` ([`Objective::QuantileBelow`]).
//!
//! An [`SloEngine`] owns a rule set, consumes hourly registry snapshots
//! on the sim clock, and tracks burn rate over the standard paired
//! windows (1 h / 6 h at 6× budget → `page`; 6 h / 24 h at 3× budget →
//! `ticket`). Alerts are recorded on the rising edge and land in the
//! deterministic `slo.json` export next to the final pass/fail verdicts.
//! Everything is pure arithmetic over sim-time data: same seed, same
//! bytes.

use nagano_simcore::Histogram;

use crate::export::{finite, json_escape};
use crate::registry::{MetricValue, MetricsRegistry};

/// What a rule asserts about a histogram metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// `p<q> of <metric> < <max>`: the q-th percentile stays under `max`.
    QuantileBelow {
        /// Percentile in `(0, 100)`, e.g. `99.0` or `99.9`.
        q: f64,
        /// Upper bound the percentile must stay below.
        max: f64,
    },
    /// `<pct>% of <metric> < <bound>`: at least `min_fraction` of all
    /// observations fall below `bound`.
    FractionBelow {
        /// Threshold an observation must fall below to count as good.
        bound: f64,
        /// Required good fraction in `(0, 1]`, e.g. `0.99`.
        min_fraction: f64,
    },
}

/// One named objective over one histogram metric.
#[derive(Debug, Clone, PartialEq)]
pub struct SloRule {
    /// Rule name, used in exports and alerts.
    pub name: String,
    /// Histogram metric the rule evaluates (label sets are merged).
    pub metric: String,
    /// The assertion itself.
    pub objective: Objective,
}

impl SloRule {
    /// Parse one rule line; see the module docs for the two forms.
    pub fn parse(line: &str) -> Result<SloRule, String> {
        let (name, rest) = line
            .split_once(':')
            .ok_or_else(|| format!("SLO rule {line:?}: missing `name:` prefix"))?;
        let name = name.trim();
        if name.is_empty() {
            return Err(format!("SLO rule {line:?}: empty rule name"));
        }
        let tokens: Vec<&str> = rest.split_whitespace().collect();
        let [spec, of, metric, lt, threshold] = tokens[..] else {
            return Err(format!(
                "SLO rule {line:?}: expected `<spec> of <metric> < <threshold>`"
            ));
        };
        if of != "of" || lt != "<" {
            return Err(format!(
                "SLO rule {line:?}: expected `<spec> of <metric> < <threshold>`"
            ));
        }
        let threshold: f64 = threshold
            .parse()
            .map_err(|_| format!("SLO rule {line:?}: bad threshold {threshold:?}"))?;
        if !threshold.is_finite() || threshold <= 0.0 {
            return Err(format!(
                "SLO rule {line:?}: threshold must be finite and positive"
            ));
        }
        let objective = if let Some(pct) = spec.strip_suffix('%') {
            let pct: f64 = pct
                .parse()
                .map_err(|_| format!("SLO rule {line:?}: bad percentage {spec:?}"))?;
            if !(0.0 < pct && pct <= 100.0) {
                return Err(format!("SLO rule {line:?}: percentage out of (0, 100]"));
            }
            Objective::FractionBelow {
                bound: threshold,
                min_fraction: pct / 100.0,
            }
        } else if let Some(q) = spec.strip_prefix('p') {
            let q: f64 = q
                .parse()
                .map_err(|_| format!("SLO rule {line:?}: bad percentile {spec:?}"))?;
            if !(0.0 < q && q < 100.0) {
                return Err(format!("SLO rule {line:?}: percentile out of (0, 100)"));
            }
            Objective::QuantileBelow { q, max: threshold }
        } else {
            return Err(format!(
                "SLO rule {line:?}: spec {spec:?} is neither `p<q>` nor `<pct>%`"
            ));
        };
        Ok(SloRule {
            name: name.to_string(),
            metric: metric.to_string(),
            objective,
        })
    }

    /// The allowed bad fraction, for rules that have one
    /// (`FractionBelow`); burn-rate tracking only applies to these.
    pub fn error_budget(&self) -> Option<f64> {
        match self.objective {
            Objective::FractionBelow { min_fraction, .. } => Some(1.0 - min_fraction),
            Objective::QuantileBelow { .. } => None,
        }
    }

    /// Human/export rendering of the objective, e.g. `p99 < 30` or
    /// `99% < 30`.
    pub fn objective_text(&self) -> String {
        match self.objective {
            Objective::QuantileBelow { q, max } => format!("p{q} < {max}"),
            Objective::FractionBelow {
                bound,
                min_fraction,
            } => format!("{}% < {bound}", min_fraction * 100.0),
        }
    }
}

/// One burn-rate alert: the error budget was being consumed `burn_rate`
/// times faster than sustainable over both paired windows.
#[derive(Debug, Clone, PartialEq)]
pub struct BurnAlert {
    /// `page` (fast burn) or `ticket` (slow burn).
    pub severity: &'static str,
    /// The long window that confirmed the burn, in hours.
    pub window_hours: usize,
    /// Hour label (from `observe_hour`) at which the alert fired.
    pub at_hour: u64,
    /// Budget-normalised burn rate over the long window at fire time.
    pub burn_rate: f64,
}

/// The standard paired burn-rate windows: (long, short, factor,
/// severity). Both windows must burn faster than `factor ×` budget for
/// the alert to fire — the short window confirms the burn is current,
/// the long window that it is material.
const BURN_WINDOWS: [(usize, usize, f64, &str); 2] = [(6, 1, 6.0, "page"), (24, 6, 3.0, "ticket")];

/// Tracks hourly good/bad counts for one rule and fires multi-window
/// burn-rate alerts on rising edges.
#[derive(Debug, Clone, Default)]
struct BurnTracker {
    /// Per-hour `(hour_label, good, bad)` in observation order.
    hours: Vec<(u64, u64, u64)>,
    /// Whether each window pair was firing after the last observation.
    firing: [bool; BURN_WINDOWS.len()],
    alerts: Vec<BurnAlert>,
}

impl BurnTracker {
    fn observe(&mut self, hour: u64, good: u64, bad: u64, budget: f64) {
        self.hours.push((hour, good, bad));
        let budget = budget.max(1e-9);
        for (i, (long, short, factor, severity)) in BURN_WINDOWS.iter().enumerate() {
            if self.hours.len() < *long {
                continue;
            }
            let long_burn = self.window_bad_fraction(*long) / budget;
            let short_burn = self.window_bad_fraction(*short) / budget;
            let now_firing = long_burn > *factor && short_burn > *factor;
            if now_firing && !self.firing[i] {
                self.alerts.push(BurnAlert {
                    severity,
                    window_hours: *long,
                    at_hour: hour,
                    burn_rate: long_burn,
                });
            }
            self.firing[i] = now_firing;
        }
    }

    /// Bad fraction over the trailing `window` observed hours.
    fn window_bad_fraction(&self, window: usize) -> f64 {
        let tail = &self.hours[self.hours.len().saturating_sub(window)..];
        let (good, bad) = tail
            .iter()
            .fold((0u64, 0u64), |(g, b), (_, hg, hb)| (g + hg, b + hb));
        if good + bad == 0 {
            0.0
        } else {
            bad as f64 / (good + bad) as f64
        }
    }
}

/// Final verdict for one rule, with any burn-rate alerts that fired
/// along the way.
#[derive(Debug, Clone, PartialEq)]
pub struct SloOutcome {
    /// The rule evaluated.
    pub rule: SloRule,
    /// Observed value: the percentile for `QuantileBelow`, the good
    /// fraction for `FractionBelow`.
    pub observed: f64,
    /// Target the observation is compared against: `max` or
    /// `min_fraction`.
    pub target: f64,
    /// Observations in the underlying histogram (0 ⇒ vacuous pass).
    pub count: u64,
    /// Whether the objective held at end of run.
    pub pass: bool,
    /// Burn-rate alerts, in firing order.
    pub alerts: Vec<BurnAlert>,
}

/// Evaluates a rule set against a [`MetricsRegistry`], consuming hourly
/// snapshots for burn-rate tracking.
#[derive(Debug, Default)]
pub struct SloEngine {
    rules: Vec<SloRule>,
    trackers: Vec<BurnTracker>,
    /// Cumulative `(good, bad)` counts at the previous hourly snapshot,
    /// used to difference the monotone histogram into per-hour counts.
    prev: Vec<(u64, u64)>,
}

impl SloEngine {
    /// An engine over the given rules.
    pub fn new(rules: Vec<SloRule>) -> Self {
        let n = rules.len();
        SloEngine {
            rules,
            trackers: vec![BurnTracker::default(); n],
            prev: vec![(0, 0); n],
        }
    }

    /// Whether the engine has any rules to evaluate.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Feed one hourly snapshot: differences each fraction-type rule's
    /// cumulative good/bad counts into this hour's tally and advances
    /// the burn-rate windows.
    pub fn observe_hour(&mut self, hour: u64, registry: &MetricsRegistry) {
        for (i, rule) in self.rules.iter().enumerate() {
            let Some(budget) = rule.error_budget() else {
                continue;
            };
            let Objective::FractionBelow { bound, .. } = rule.objective else {
                continue;
            };
            let (good_cum, bad_cum) = match metric_histogram(registry, &rule.metric) {
                Some(h) => cumulative_good_bad(&h, bound),
                None => (0, 0),
            };
            let (pg, pb) = self.prev[i];
            let good = good_cum.saturating_sub(pg);
            let bad = bad_cum.saturating_sub(pb);
            self.prev[i] = (good_cum, bad_cum);
            self.trackers[i].observe(hour, good, bad, budget);
        }
    }

    /// Evaluate every rule against the registry's final state.
    pub fn finish(&self, registry: &MetricsRegistry) -> Vec<SloOutcome> {
        self.rules
            .iter()
            .zip(&self.trackers)
            .map(|(rule, tracker)| {
                let hist = metric_histogram(registry, &rule.metric);
                let count = hist.as_ref().map_or(0, Histogram::count);
                let (observed, target, pass) = match (rule.objective, &hist) {
                    (Objective::QuantileBelow { q, max }, Some(h)) => {
                        let v = h.percentile(q);
                        (v, max, v < max)
                    }
                    (Objective::QuantileBelow { max, .. }, None) => (0.0, max, true),
                    (
                        Objective::FractionBelow {
                            bound,
                            min_fraction,
                        },
                        Some(h),
                    ) => {
                        let good = 1.0 - h.fraction_above(bound);
                        (good, min_fraction, good >= min_fraction)
                    }
                    (Objective::FractionBelow { min_fraction, .. }, None) => {
                        (1.0, min_fraction, true)
                    }
                };
                SloOutcome {
                    rule: rule.clone(),
                    observed,
                    target,
                    count,
                    pass,
                    alerts: tracker.alerts.clone(),
                }
            })
            .collect()
    }
}

/// Merge every histogram sample named `name` (across label sets) into
/// one histogram; `None` if the metric is absent or not a histogram.
fn metric_histogram(registry: &MetricsRegistry, name: &str) -> Option<Histogram> {
    let mut merged: Option<Histogram> = None;
    for sample in registry.samples() {
        if sample.name != name {
            continue;
        }
        if let MetricValue::Histogram(h) = &sample.value {
            match &mut merged {
                None => merged = Some(h.clone()),
                Some(m) => m.merge(h),
            }
        }
    }
    merged
}

/// Cumulative `(good, bad)` observation counts relative to `bound`.
fn cumulative_good_bad(h: &Histogram, bound: f64) -> (u64, u64) {
    let count = h.count();
    let bad = (h.fraction_above(bound) * count as f64).round() as u64;
    (count.saturating_sub(bad), bad.min(count))
}

/// Render outcomes as the deterministic `slo.json` document.
pub fn slo_json(outcomes: &[SloOutcome]) -> String {
    let mut out = String::from("{\"slo\":[");
    for (i, o) in outcomes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let kind = match o.rule.objective {
            Objective::QuantileBelow { .. } => "quantile_below",
            Objective::FractionBelow { .. } => "fraction_below",
        };
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"metric\":\"{}\",\"objective\":\"{}\",\
             \"kind\":\"{kind}\",\"observed\":{},\"target\":{},\
             \"count\":{},\"pass\":{},\"alerts\":[",
            json_escape(&o.rule.name),
            json_escape(&o.rule.metric),
            json_escape(&o.rule.objective_text()),
            finite(o.observed),
            finite(o.target),
            o.count,
            o.pass,
        ));
        for (j, a) in o.alerts.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"severity\":\"{}\",\"window_hours\":{},\"at_hour\":{},\
                 \"burn_rate\":{:.4}}}",
                a.severity, a.window_hours, a.at_hour, a.burn_rate,
            ));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_both_rule_forms() {
        let r = SloRule::parse("fresh-30s: 99% of nagano_cluster_update_to_serve_seconds < 30")
            .unwrap();
        assert_eq!(r.name, "fresh-30s");
        assert_eq!(r.metric, "nagano_cluster_update_to_serve_seconds");
        assert_eq!(
            r.objective,
            Objective::FractionBelow {
                bound: 30.0,
                min_fraction: 0.99
            }
        );
        assert_eq!(r.error_budget(), Some(1.0 - 0.99));
        assert_eq!(r.objective_text(), "99% < 30");

        let r = SloRule::parse("serve-p99: p99.9 of nagano_httpd_request_seconds < 0.25").unwrap();
        assert_eq!(r.objective, Objective::QuantileBelow { q: 99.9, max: 0.25 });
        assert_eq!(r.error_budget(), None);
        assert_eq!(r.objective_text(), "p99.9 < 0.25");
    }

    #[test]
    fn rejects_malformed_rules() {
        for bad in [
            "no colon here",
            "n: q99 of m < 1",    // spec neither p<q> nor <pct>%
            "n: p99 of m < nope", // threshold not a number
            "n: p99 of m < -1",   // threshold not positive
            "n: p0 of m < 1",     // percentile out of range
            "n: 101% of m < 1",   // percentage out of range
            "n: p99 of m > 1",    // only `<` supported
            "n: p99 m < 1",       // missing `of`
            ": p99 of m < 1",     // empty name
        ] {
            assert!(SloRule::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    fn registry_with(name: &str, values: &[f64]) -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        let h = reg.histogram(name, &[], 1e-3, 1_000.0);
        for &v in values {
            h.record(v);
        }
        reg
    }

    #[test]
    fn quantile_rule_passes_and_fails() {
        let reg = registry_with("m", &[1.0; 100]);
        let rule = SloRule::parse("r: p99 of m < 2").unwrap();
        let out = SloEngine::new(vec![rule.clone()]).finish(&reg);
        assert!(out[0].pass, "{out:?}");
        assert_eq!(out[0].count, 100);

        let reg = registry_with("m", &[10.0; 100]);
        let out = SloEngine::new(vec![rule]).finish(&reg);
        assert!(!out[0].pass, "{out:?}");
        assert!(out[0].observed > 2.0);
    }

    #[test]
    fn fraction_rule_counts_good_share() {
        // 95 fast + 5 slow: passes a 90% objective, fails a 99% one.
        let mut values = vec![0.5; 95];
        values.extend([100.0; 5]);
        let reg = registry_with("m", &values);
        let lenient = SloRule::parse("ok: 90% of m < 1").unwrap();
        let strict = SloRule::parse("no: 99% of m < 1").unwrap();
        let out = SloEngine::new(vec![lenient, strict]).finish(&reg);
        assert!(out[0].pass, "{out:?}");
        assert!(!out[1].pass, "{out:?}");
        assert!((out[1].observed - 0.95).abs() < 0.01, "{out:?}");
    }

    #[test]
    fn absent_metric_is_a_vacuous_pass() {
        let reg = MetricsRegistry::new();
        let rule = SloRule::parse("r: 99% of missing < 1").unwrap();
        let out = SloEngine::new(vec![rule]).finish(&reg);
        assert!(out[0].pass);
        assert_eq!(out[0].count, 0);
    }

    #[test]
    fn sustained_burn_pages_once_on_the_rising_edge() {
        // Budget 1%: a steady 10% bad rate burns at 10× — over both the
        // 1 h and 6 h windows once six hours accumulate.
        let rule = SloRule::parse("r: 99% of m < 1").unwrap();
        let reg = MetricsRegistry::new();
        let h = reg.histogram("m", &[], 1e-3, 1_000.0);
        let mut engine = SloEngine::new(vec![rule]);
        for hour in 0..8 {
            for _ in 0..90 {
                h.record(0.5);
            }
            for _ in 0..10 {
                h.record(500.0);
            }
            engine.observe_hour(hour, &reg);
        }
        let out = engine.finish(&reg);
        let pages: Vec<_> = out[0]
            .alerts
            .iter()
            .filter(|a| a.severity == "page")
            .collect();
        assert_eq!(pages.len(), 1, "rising edge only: {:?}", out[0].alerts);
        assert_eq!(pages[0].at_hour, 5, "fires once the 6 h window fills");
        assert!(pages[0].burn_rate > 6.0);
        assert!(!out[0].pass);
    }

    #[test]
    fn healthy_service_never_alerts() {
        let rule = SloRule::parse("r: 99% of m < 1").unwrap();
        let reg = MetricsRegistry::new();
        let h = reg.histogram("m", &[], 1e-3, 1_000.0);
        let mut engine = SloEngine::new(vec![rule]);
        for hour in 0..30 {
            for _ in 0..1000 {
                h.record(0.5);
            }
            engine.observe_hour(hour, &reg);
        }
        let out = engine.finish(&reg);
        assert!(out[0].pass);
        assert!(out[0].alerts.is_empty(), "{:?}", out[0].alerts);
    }

    #[test]
    fn slo_json_is_deterministic_and_well_formed() {
        let rule = SloRule::parse("r: 99% of m < 1").unwrap();
        let reg = registry_with("m", &[0.5; 10]);
        let engine = SloEngine::new(vec![rule]);
        let json = slo_json(&engine.finish(&reg));
        assert!(json.starts_with("{\"slo\":["));
        assert!(json.contains("\"name\":\"r\""));
        assert!(json.contains("\"pass\":true"));
        assert!(json.contains("\"alerts\":[]"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json, slo_json(&engine.finish(&reg)));
    }
}
