//! Exporters: Prometheus text format and JSON snapshots.
//!
//! Both walk [`MetricsRegistry::samples`], which is deterministically
//! ordered, so two exports of the same state are byte-identical — the
//! property the reproducibility tests and `EXPERIMENTS.md` diffs rely on.
//! The JSON writer is hand-rolled (no serde dependency): the schema is
//! flat and the values are already escaped/limited here.

use std::fmt::Write as _;

use nagano_simcore::Histogram;

use crate::registry::{Labels, MetricSample, MetricValue, MetricsRegistry};

/// Render every registered metric in the Prometheus text exposition
/// format (`# TYPE` per metric name; histograms expand to `_bucket` /
/// `_sum` / `_count` series with cumulative `le` labels).
pub fn prometheus_text(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    let mut last_name: Option<String> = None;
    for sample in registry.samples() {
        if last_name.as_deref() != Some(sample.name.as_str()) {
            let kind = match sample.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "histogram",
            };
            let _ = writeln!(out, "# TYPE {} {kind}", sample.name);
            last_name = Some(sample.name.clone());
        }
        match &sample.value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                let _ = writeln!(
                    out,
                    "{}{} {v}",
                    sample.name,
                    label_set(&sample.labels, None)
                );
            }
            MetricValue::Histogram(h) => append_prometheus_histogram(&mut out, &sample, h),
        }
    }
    out
}

fn append_prometheus_histogram(out: &mut String, sample: &MetricSample, h: &Histogram) {
    for (bound, cumulative) in h.cumulative_buckets() {
        let _ = writeln!(
            out,
            "{}_bucket{} {cumulative}",
            sample.name,
            label_set(&sample.labels, Some(&format!("{bound}")))
        );
    }
    let _ = writeln!(
        out,
        "{}_bucket{} {}",
        sample.name,
        label_set(&sample.labels, Some("+Inf")),
        h.count()
    );
    let _ = writeln!(
        out,
        "{}_sum{} {}",
        sample.name,
        label_set(&sample.labels, None),
        finite(h.sum())
    );
    let _ = writeln!(
        out,
        "{}_count{} {}",
        sample.name,
        label_set(&sample.labels, None),
        h.count()
    );
}

/// Render `{a="1",b="2"}` (empty string when there are no labels), with an
/// optional trailing `le` label for histogram buckets.
fn label_set(labels: &Labels, le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", prom_escape(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

/// Escape a label value per the Prometheus text exposition format:
/// backslash, double-quote, and line-feed become `\\`, `\"`, and `\n`
/// (backslash first, so escapes never double-escape).
pub fn prom_escape(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Invert [`prom_escape`]: decode a label value read back from the text
/// format. Returns `None` on a malformed sequence (trailing backslash or
/// an unknown escape) — the round-trip proptest pins
/// `prom_unescape(prom_escape(v)) == Some(v)` for arbitrary values.
pub fn prom_unescape(v: &str) -> Option<String> {
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                '\\' => out.push('\\'),
                '"' => out.push('"'),
                'n' => out.push('\n'),
                _ => return None,
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

/// Parse one Prometheus exposition line into `(name, labels, value)`,
/// decoding label-value escapes. Comment and blank lines yield `None`,
/// as does any malformed line — integration tests use this to assert
/// every line a live `/metrics` endpoint serves is well-formed.
pub fn parse_prometheus_line(line: &str) -> Option<(String, Labels, f64)> {
    let line = line.trim_end_matches(['\r']);
    if line.is_empty() || line.starts_with('#') {
        return None;
    }
    let (series, value) = line.rsplit_once(' ')?;
    let value: f64 = match value {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        v => v.parse().ok()?,
    };
    match series.find('{') {
        None => valid_series_name(series).then(|| (series.to_string(), Vec::new(), value)),
        Some(i) => {
            let name = &series[..i];
            if !valid_series_name(name) {
                return None;
            }
            let body = series[i + 1..].strip_suffix('}')?;
            Some((name.to_string(), parse_label_body(body)?, value))
        }
    }
}

fn valid_series_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        && !name.starts_with(|c: char| c.is_ascii_digit())
}

/// Parse `k1="v1",k2="v2"` (without the surrounding braces), decoding
/// value escapes as it goes.
fn parse_label_body(body: &str) -> Option<Labels> {
    let mut labels = Vec::new();
    if body.is_empty() {
        return Some(labels);
    }
    let mut chars = body.chars();
    loop {
        let mut key = String::new();
        loop {
            match chars.next()? {
                '=' => break,
                c if c.is_ascii_alphanumeric() || c == '_' => key.push(c),
                _ => return None,
            }
        }
        if key.is_empty() {
            return None;
        }
        if chars.next()? != '"' {
            return None;
        }
        let mut val = String::new();
        loop {
            match chars.next()? {
                '"' => break,
                '\\' => match chars.next()? {
                    '\\' => val.push('\\'),
                    '"' => val.push('"'),
                    'n' => val.push('\n'),
                    _ => return None,
                },
                c => val.push(c),
            }
        }
        labels.push((key, val));
        match chars.next() {
            None => break,
            Some(',') => continue,
            Some(_) => return None,
        }
    }
    Some(labels)
}

/// Render every registered metric as a JSON document:
/// `{"metrics": [{"name", "labels", "kind", ...}, ...]}`. Counters and
/// gauges carry `"value"`; histograms carry count/sum/mean/min/max and
/// p50/p95/p99/p999.
pub fn json_snapshot(registry: &MetricsRegistry) -> String {
    let mut out = String::from("{\"metrics\":[");
    for (i, sample) in registry.samples().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"labels\":{{{}}}",
            json_escape(&sample.name),
            sample
                .labels
                .iter()
                .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
                .collect::<Vec<_>>()
                .join(",")
        );
        match &sample.value {
            MetricValue::Counter(v) => {
                let _ = write!(out, ",\"kind\":\"counter\",\"value\":{v}");
            }
            MetricValue::Gauge(v) => {
                let _ = write!(out, ",\"kind\":\"gauge\",\"value\":{v}");
            }
            MetricValue::Histogram(h) => {
                let _ = write!(
                    out,
                    ",\"kind\":\"histogram\",\"count\":{},\"sum\":{},\"mean\":{},\
                     \"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"p999\":{}",
                    h.count(),
                    finite(h.sum()),
                    finite(h.mean()),
                    finite(h.min()),
                    finite(h.max()),
                    finite(h.percentile(50.0)),
                    finite(h.percentile(95.0)),
                    finite(h.percentile(99.0)),
                    finite(h.percentile(99.9)),
                );
            }
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Format a float for JSON: non-finite values (empty-histogram min/max)
/// collapse to 0.
pub(crate) fn finite(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_string()
    }
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.counter("nagano_cache_hits_total", &[("site", "tokyo")])
            .add(42);
        reg.gauge("nagano_cache_bytes", &[("site", "tokyo")])
            .set(1024);
        let h = reg.histogram("nagano_trigger_freshness_seconds", &[], 1e-3, 100.0);
        for i in 1..=100 {
            h.record(i as f64 / 10.0); // 0.1 .. 10 s
        }
        reg
    }

    #[test]
    fn prometheus_text_has_types_labels_and_buckets() {
        let text = prometheus_text(&sample_registry());
        assert!(text.contains("# TYPE nagano_cache_hits_total counter"));
        assert!(text.contains("nagano_cache_hits_total{site=\"tokyo\"} 42"));
        assert!(text.contains("# TYPE nagano_cache_bytes gauge"));
        assert!(text.contains("nagano_cache_bytes{site=\"tokyo\"} 1024"));
        assert!(text.contains("# TYPE nagano_trigger_freshness_seconds histogram"));
        assert!(text.contains("nagano_trigger_freshness_seconds_bucket{le=\"+Inf\"} 100"));
        assert!(text.contains("nagano_trigger_freshness_seconds_count 100"));
        // Cumulative bucket lines are monotone in count.
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("nagano_trigger_freshness_seconds_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
    }

    #[test]
    fn json_snapshot_is_valid_and_complete() {
        let json = json_snapshot(&sample_registry());
        assert!(json.starts_with("{\"metrics\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"nagano_cache_hits_total\""));
        assert!(json.contains("\"labels\":{\"site\":\"tokyo\"}"));
        assert!(json.contains("\"kind\":\"histogram\""));
        assert!(json.contains("\"p95\":"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn exports_are_deterministic() {
        let a = sample_registry();
        let b = sample_registry();
        assert_eq!(prometheus_text(&a), prometheus_text(&b));
        assert_eq!(json_snapshot(&a), json_snapshot(&b));
    }

    #[test]
    fn empty_registry_exports_cleanly() {
        let reg = MetricsRegistry::new();
        assert_eq!(prometheus_text(&reg), "");
        assert_eq!(json_snapshot(&reg), "{\"metrics\":[]}");
        // An empty histogram exports zeros, not inf.
        reg.histogram("h", &[], 1e-3, 1.0);
        let json = json_snapshot(&reg);
        assert!(json.contains("\"count\":0"));
        assert!(json.contains("\"max\":0"));
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = MetricsRegistry::new();
        reg.counter("m", &[("path", "/a \"b\"")]).incr();
        let text = prometheus_text(&reg);
        assert!(text.contains("path=\"/a \\\"b\\\"\""));
        let json = json_snapshot(&reg);
        assert!(json.contains("\"path\":\"/a \\\"b\\\"\""));
    }

    #[test]
    fn awkward_label_values_survive_a_full_line_round_trip() {
        // Backslashes, quotes, and newlines are exactly the characters the
        // text format escapes; all three at once must parse back losslessly.
        let nasty = "C:\\logs\\\"day 1\"\nline2";
        let reg = MetricsRegistry::new();
        reg.counter("nagano_httpd_requests_total", &[("path", nasty)])
            .add(3);
        let text = prometheus_text(&reg);
        let parsed: Vec<_> = text.lines().filter_map(parse_prometheus_line).collect();
        assert_eq!(parsed.len(), 1, "{text}");
        let (name, labels, value) = &parsed[0];
        assert_eq!(name, "nagano_httpd_requests_total");
        assert_eq!(labels, &vec![("path".to_string(), nasty.to_string())]);
        assert_eq!(*value, 3.0);
    }

    #[test]
    fn parser_rejects_malformed_lines_and_skips_comments() {
        assert!(parse_prometheus_line("# TYPE m counter").is_none());
        assert!(parse_prometheus_line("").is_none());
        assert!(
            parse_prometheus_line("m{k=\"v\" 1").is_none(),
            "unclosed brace"
        );
        assert!(
            parse_prometheus_line("m{k=\"v} 1").is_none(),
            "unclosed quote"
        );
        assert!(
            parse_prometheus_line("m{k=\"\\q\"} 1").is_none(),
            "bad escape"
        );
        assert!(parse_prometheus_line("m{k=\"v\"} x").is_none(), "bad value");
        assert!(parse_prometheus_line("1m 2").is_none(), "bad name");
        assert_eq!(
            parse_prometheus_line("m_bucket{le=\"+Inf\"} 7"),
            Some((
                "m_bucket".to_string(),
                vec![("le".to_string(), "+Inf".to_string())],
                7.0
            ))
        );
    }

    #[test]
    fn unescape_inverts_escape_on_the_tricky_cases() {
        for v in ["", "plain", "\\", "\\\\", "\"", "\n", "\\n", "a\\\"b\nc"] {
            assert_eq!(prom_unescape(&prom_escape(v)).as_deref(), Some(v), "{v:?}");
        }
        assert!(prom_unescape("trailing\\").is_none());
        assert!(prom_unescape("\\q").is_none());
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn escape_then_unescape_is_identity(v in any::<String>()) {
                prop_assert_eq!(prom_unescape(&prom_escape(&v)), Some(v));
            }

            #[test]
            fn rendered_label_values_parse_back_exactly(v in any::<String>()) {
                // End-to-end: registry → exposition text → parser. Raw
                // carriage returns are the one character the line-based
                // format cannot carry (the spec escapes only \\, \" and
                // \n), so map them to newlines, which *are* escaped.
                let v = v.replace('\r', "\n");
                let reg = MetricsRegistry::new();
                reg.counter("m_total", &[("k", v.as_str())]).incr();
                let text = prometheus_text(&reg);
                let parsed: Vec<_> =
                    text.lines().filter_map(parse_prometheus_line).collect();
                prop_assert_eq!(parsed.len(), 1);
                let (name, labels, value) = parsed.into_iter().next().unwrap();
                prop_assert_eq!(name, "m_total");
                prop_assert_eq!(labels, vec![("k".to_string(), v)]);
                prop_assert_eq!(value, 1.0);
            }
        }
    }
}
