//! The metrics registry: named, labeled counters, gauges, and histograms.
//!
//! Handles are cheap `Arc` clones of the underlying cell, so the hot path
//! never touches the registry: a subsystem keeps its [`Counter`] and bumps
//! a relaxed atomic, while exporters walk the registry for a consistent,
//! deterministically ordered sample set. Histograms wrap
//! [`nagano_simcore::Histogram`] (log-bucketed, ~5% relative error on
//! percentiles) behind a mutex — they are recorded on control paths
//! (trigger processing, freshness), not per-request hot loops.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

use nagano_simcore::Histogram;

/// A monotonically increasing event counter (relaxed atomic, shared by
/// `Arc`: clones observe and mutate the same cell).
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh, unregistered counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Increment by one.
    pub fn incr(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }

    /// Reset to zero (event-counter resets between measurement windows).
    pub fn reset(&self) {
        self.0.store(0, Relaxed);
    }
}

/// An instantaneous level (bytes cached, entries live). Same cell
/// semantics as [`Counter`], plus decrement and racy-max updates.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A fresh, unregistered gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Set the level.
    pub fn set(&self, v: u64) {
        self.0.store(v, Relaxed);
    }

    /// Raise the level by `n`, returning the new value.
    pub fn add(&self, n: u64) -> u64 {
        self.0.fetch_add(n, Relaxed) + n
    }

    /// Lower the level by `n`.
    pub fn sub(&self, n: u64) {
        self.0.fetch_sub(n, Relaxed);
    }

    /// Racy max update (fine for advisory high-water marks: monotone).
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// A shared handle to a log-bucketed histogram.
#[derive(Debug, Clone)]
pub struct HistogramHandle(Arc<Mutex<Histogram>>);

impl HistogramHandle {
    /// Histogram spanning `[lo, hi]` (see [`Histogram::new`]).
    pub fn new(lo: f64, hi: f64) -> Self {
        HistogramHandle(Arc::new(Mutex::new(Histogram::new(lo, hi))))
    }

    /// Histogram suited to latencies in seconds: 1 µs .. 600 s.
    pub fn for_latency() -> Self {
        HistogramHandle::new(1e-6, 600.0)
    }

    /// Record one observation.
    pub fn record(&self, x: f64) {
        self.0.lock().expect("histogram poisoned").record(x);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.0.lock().expect("histogram poisoned").count()
    }

    /// Percentile query, `q` in `[0, 100]`.
    pub fn percentile(&self, q: f64) -> f64 {
        self.0.lock().expect("histogram poisoned").percentile(q)
    }

    /// Exact mean of observations.
    pub fn mean(&self) -> f64 {
        self.0.lock().expect("histogram poisoned").mean()
    }

    /// Exact maximum of observations (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.0.lock().expect("histogram poisoned").max()
    }

    /// A point-in-time copy of the underlying histogram.
    pub fn snapshot(&self) -> Histogram {
        self.0.lock().expect("histogram poisoned").clone()
    }
}

/// Sorted label set: `(key, value)` pairs.
pub type Labels = Vec<(String, String)>;

fn canonical_labels(labels: &[(&str, &str)]) -> Labels {
    let mut out: Labels = labels
        .iter()
        .map(|&(k, v)| (k.to_string(), v.to_string()))
        .collect();
    out.sort();
    out
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(HistogramHandle),
}

/// One exported measurement: name + labels + current value.
#[derive(Debug, Clone)]
pub struct MetricSample {
    /// Metric name (`nagano_<subsystem>_<metric>` convention).
    pub name: String,
    /// Sorted label set.
    pub labels: Labels,
    /// The value at sampling time.
    pub value: MetricValue,
}

/// The sampled value of one metric.
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// Monotone event count.
    Counter(u64),
    /// Instantaneous level.
    Gauge(u64),
    /// Full distribution snapshot.
    Histogram(Histogram),
}

/// A registry of named, labeled metrics with deterministic iteration
/// order (sorted by name, then labels).
///
/// ```
/// use nagano_telemetry::MetricsRegistry;
///
/// let reg = MetricsRegistry::new();
/// let hits = reg.counter("nagano_cache_hits_total", &[("site", "tokyo")]);
/// hits.incr();
/// // The same (name, labels) pair resolves to the same cell.
/// assert_eq!(reg.counter("nagano_cache_hits_total", &[("site", "tokyo")]).get(), 1);
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<(String, Labels), Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Get or create the counter `name{labels}`.
    ///
    /// # Panics
    /// If the key is already registered as a different metric kind.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = (name.to_string(), canonical_labels(labels));
        let mut map = self.inner.lock().expect("registry poisoned");
        match map
            .entry(key)
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Get or create the gauge `name{labels}`.
    ///
    /// # Panics
    /// If the key is already registered as a different metric kind.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = (name.to_string(), canonical_labels(labels));
        let mut map = self.inner.lock().expect("registry poisoned");
        match map
            .entry(key)
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Get or create the histogram `name{labels}` spanning `[lo, hi]`.
    ///
    /// # Panics
    /// If the key is already registered as a different metric kind.
    pub fn histogram(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        lo: f64,
        hi: f64,
    ) -> HistogramHandle {
        let key = (name.to_string(), canonical_labels(labels));
        let mut map = self.inner.lock().expect("registry poisoned");
        match map
            .entry(key)
            .or_insert_with(|| Metric::Histogram(HistogramHandle::new(lo, hi)))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Register an *existing* counter cell under `name{labels}` — the
    /// pattern subsystems use to expose handles they already own (e.g.
    /// `CacheStats` binding its hit counter). Last bind wins.
    pub fn bind_counter(&self, name: &str, labels: &[(&str, &str)], counter: &Counter) {
        let key = (name.to_string(), canonical_labels(labels));
        self.inner
            .lock()
            .expect("registry poisoned")
            .insert(key, Metric::Counter(counter.clone()));
    }

    /// Register an existing gauge cell under `name{labels}`. Last bind wins.
    pub fn bind_gauge(&self, name: &str, labels: &[(&str, &str)], gauge: &Gauge) {
        let key = (name.to_string(), canonical_labels(labels));
        self.inner
            .lock()
            .expect("registry poisoned")
            .insert(key, Metric::Gauge(gauge.clone()));
    }

    /// Register an existing histogram under `name{labels}`. Last bind wins.
    pub fn bind_histogram(&self, name: &str, labels: &[(&str, &str)], hist: &HistogramHandle) {
        let key = (name.to_string(), canonical_labels(labels));
        self.inner
            .lock()
            .expect("registry poisoned")
            .insert(key, Metric::Histogram(hist.clone()));
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("registry poisoned").len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sample every metric, in deterministic (name, labels) order.
    pub fn samples(&self) -> Vec<MetricSample> {
        let map = self.inner.lock().expect("registry poisoned");
        map.iter()
            .map(|((name, labels), metric)| MetricSample {
                name: name.clone(),
                labels: labels.clone(),
                value: match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_cells_are_shared() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("nagano_test_total", &[("site", "tokyo")]);
        let b = reg.counter("nagano_test_total", &[("site", "tokyo")]);
        a.incr();
        b.add(2);
        assert_eq!(a.get(), 3);
        // Different labels are a different cell.
        let c = reg.counter("nagano_test_total", &[("site", "columbus")]);
        assert_eq!(c.get(), 0);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn label_order_is_canonical() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("m", &[("b", "2"), ("a", "1")]);
        let b = reg.counter("m", &[("a", "1"), ("b", "2")]);
        a.incr();
        assert_eq!(b.get(), 1);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn gauge_tracks_levels_and_peaks() {
        let g = Gauge::new();
        assert_eq!(g.add(100), 100);
        g.sub(40);
        assert_eq!(g.get(), 60);
        g.record_max(50);
        assert_eq!(g.get(), 60, "max below current is a no-op");
        g.record_max(99);
        assert_eq!(g.get(), 99);
        g.set(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_handle_records_and_queries() {
        let h = HistogramHandle::for_latency();
        for i in 1..=100 {
            h.record(i as f64 / 100.0); // 10 ms .. 1 s
        }
        assert_eq!(h.count(), 100);
        let p50 = h.percentile(50.0);
        assert!((p50 - 0.5).abs() / 0.5 < 0.08, "p50 {p50}");
        assert!((h.mean() - 0.505).abs() < 1e-9);
        assert_eq!(h.snapshot().count(), 100);
    }

    #[test]
    fn bind_exposes_existing_cells() {
        let reg = MetricsRegistry::new();
        let mine = Counter::new();
        mine.add(5);
        reg.bind_counter("nagano_cache_hits_total", &[], &mine);
        mine.incr();
        let samples = reg.samples();
        assert_eq!(samples.len(), 1);
        match &samples[0].value {
            MetricValue::Counter(v) => assert_eq!(*v, 6),
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn samples_are_deterministically_ordered() {
        let reg = MetricsRegistry::new();
        reg.counter("b_metric", &[]);
        reg.counter("a_metric", &[("site", "z")]);
        reg.counter("a_metric", &[("site", "a")]);
        reg.gauge("c_metric", &[]);
        let names: Vec<String> = reg
            .samples()
            .iter()
            .map(|s| {
                format!(
                    "{}{}",
                    s.name,
                    s.labels
                        .iter()
                        .map(|(k, v)| format!("[{k}={v}]"))
                        .collect::<String>()
                )
            })
            .collect();
        assert_eq!(
            names,
            vec![
                "a_metric[site=a]",
                "a_metric[site=z]",
                "b_metric",
                "c_metric"
            ]
        );
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("m", &[]);
        reg.gauge("m", &[]);
    }

    #[test]
    fn counter_reset() {
        let c = Counter::new();
        c.add(9);
        c.reset();
        assert_eq!(c.get(), 0);
    }
}
