//! Structured traces over simulated time.
//!
//! A [`Trace`] is a tree of named [`Span`]s sharing one causal trace id:
//! the *propagation trace* follows a database commit through ODG
//! traversal, the regenerate/invalidate decision, per-site distribution,
//! cache application, and the first subsequent fresh serve; the *serving
//! trace* follows one request from the MSIRP route decision through the
//! cache lookup to the rendered response. Spans carry an optional
//! `parent` index into the same trace, so the update lineage "txn receipt
//! → distribute → DUP traversal → cache apply → first fresh hit" is a
//! real tree whose root-to-leaf duration *is* the update-to-serve
//! freshness latency. Timestamps are [`SimTime`] — virtual, not
//! wall-clock — so a fixed seed reproduces byte-identical traces.
//!
//! Span names follow the same `nagano_<subsystem>_<name>` convention as
//! metrics (enforced by lint rule T002): `nagano_cluster_txn_receipt`,
//! `nagano_odg_traversal`, `nagano_cache_apply`, ...
//!
//! Completed traces land in a bounded [`TraceBuffer`] ring: old traces
//! fall off the front, memory stays bounded over a 16-day run.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Mutex;

use nagano_simcore::{SimDuration, SimTime};

/// Which pipeline a trace follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// DB commit → all serving caches consistent.
    Propagation,
    /// Client request → response.
    Serving,
}

impl TraceKind {
    /// Lowercase label for rendering.
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::Propagation => "propagation",
            TraceKind::Serving => "serving",
        }
    }
}

/// One timed step inside a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Step name from the pipeline's fixed vocabulary
    /// (`nagano_cluster_distribute`, `nagano_odg_traversal`,
    /// `nagano_cache_apply`, `nagano_cluster_route`, ...).
    pub name: &'static str,
    /// Free-form annotation (`site=tokyo`, `hit`, `url=/medals`).
    pub detail: String,
    /// Index of the parent span within the same trace (`None` for a
    /// root span). Links make each trace a causal tree.
    pub parent: Option<usize>,
    /// When the step began.
    pub start: SimTime,
    /// When the step ended (`>= start`).
    pub end: SimTime,
}

impl Span {
    /// The span's duration.
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

/// A completed or in-flight trace: an id plus its spans in recorded order.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Correlation id: the transaction log sequence number for propagation
    /// traces, the request ordinal for serving traces.
    pub id: u64,
    /// Pipeline kind.
    pub kind: TraceKind,
    /// Spans in recorded order.
    pub spans: Vec<Span>,
}

impl Trace {
    /// Start an empty trace.
    pub fn new(kind: TraceKind, id: u64) -> Self {
        Trace {
            id,
            kind,
            spans: Vec::new(),
        }
    }

    /// Append a root span with no annotation.
    pub fn span(&mut self, name: &'static str, start: SimTime, end: SimTime) -> &mut Self {
        self.add_span(name, String::new(), start, end);
        self
    }

    /// Append an annotated root span.
    pub fn span_with(
        &mut self,
        name: &'static str,
        detail: impl Into<String>,
        start: SimTime,
        end: SimTime,
    ) -> &mut Self {
        self.add_span(name, detail, start, end);
        self
    }

    /// Append a root span and return its index, for use as a `parent`
    /// in later [`Trace::add_child`] calls.
    pub fn add_span(
        &mut self,
        name: &'static str,
        detail: impl Into<String>,
        start: SimTime,
        end: SimTime,
    ) -> usize {
        self.push_span(name, detail.into(), None, start, end)
    }

    /// Append a child span under `parent` (an index returned by a prior
    /// `add_span`/`add_child` on this trace) and return its index.
    pub fn add_child(
        &mut self,
        parent: usize,
        name: &'static str,
        detail: impl Into<String>,
        start: SimTime,
        end: SimTime,
    ) -> usize {
        debug_assert!(parent < self.spans.len(), "span {name} has dangling parent");
        self.push_span(name, detail.into(), Some(parent), start, end)
    }

    fn push_span(
        &mut self,
        name: &'static str,
        detail: String,
        parent: Option<usize>,
        start: SimTime,
        end: SimTime,
    ) -> usize {
        debug_assert!(end >= start, "span {name} ends before it starts");
        self.spans.push(Span {
            name,
            detail,
            parent,
            start,
            end,
        });
        self.spans.len() - 1
    }

    /// Nesting depth of the span at `idx` (0 for roots). Dangling parent
    /// indices are treated as roots rather than panicking.
    pub fn depth(&self, idx: usize) -> usize {
        let mut depth = 0;
        let mut cur = idx;
        while let Some(parent) = self.spans.get(cur).and_then(|s| s.parent) {
            if parent >= cur {
                break; // malformed link; refuse to loop
            }
            depth += 1;
            cur = parent;
        }
        depth
    }

    /// Earliest span start (simulation epoch if the trace is empty).
    pub fn start(&self) -> SimTime {
        self.spans
            .iter()
            .map(|s| s.start)
            .min()
            .unwrap_or(SimTime::ZERO)
    }

    /// Latest span end (simulation epoch if the trace is empty).
    pub fn end(&self) -> SimTime {
        self.spans
            .iter()
            .map(|s| s.end)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// End-to-end duration covered by the spans.
    pub fn duration(&self) -> SimDuration {
        self.end().since(self.start())
    }

    /// Render an ASCII waterfall: one line per span with offsets relative
    /// to the trace start, indented by tree depth.
    pub fn render(&self) -> String {
        let base = self.start();
        let mut out = format!(
            "{} trace #{} — {} spans, {:.6} s\n",
            self.kind.label(),
            self.id,
            self.spans.len(),
            self.duration().as_secs_f64()
        );
        let name_w = self
            .spans
            .iter()
            .enumerate()
            .map(|(i, s)| s.name.len() + 2 * self.depth(i))
            .max()
            .unwrap_or(0);
        for (i, s) in self.spans.iter().enumerate() {
            let from = s.start.since(base).as_secs_f64();
            let to = s.end.since(base).as_secs_f64();
            let indented = format!("{:1$}{2}", "", 2 * self.depth(i), s.name);
            let _ = writeln!(
                out,
                "  +{from:>10.6}s ..+{to:>10.6}s  {indented:<name_w$}  {detail}",
                detail = s.detail
            );
        }
        out
    }

    /// Serialise the trace as one deterministic JSON line (no trailing
    /// newline): id, kind, update-to-serve duration, and every span with
    /// its parent link. The `traces.jsonl` export is one such line per
    /// trace.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"id\":{},\"kind\":\"{}\",\"duration_s\":{:.6},\"spans\":[",
            self.id,
            self.kind.label(),
            self.duration().as_secs_f64()
        );
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let parent = match s.parent {
                Some(p) => p.to_string(),
                None => "null".to_string(),
            };
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"detail\":\"{}\",\"parent\":{parent},\
                 \"start_s\":{:.6},\"end_s\":{:.6}}}",
                crate::export::json_escape(s.name),
                crate::export::json_escape(&s.detail),
                s.start.since(SimTime::ZERO).as_secs_f64(),
                s.end.since(SimTime::ZERO).as_secs_f64(),
            );
        }
        out.push_str("]}");
        out
    }
}

/// Default ring capacity for [`TraceBuffer`].
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// A bounded, thread-safe ring of completed traces.
#[derive(Debug)]
pub struct TraceBuffer {
    inner: Mutex<Ring>,
}

#[derive(Debug)]
struct Ring {
    cap: usize,
    traces: VecDeque<Trace>,
    dropped: u64,
}

impl Default for TraceBuffer {
    fn default() -> Self {
        TraceBuffer::new(DEFAULT_TRACE_CAPACITY)
    }
}

impl TraceBuffer {
    /// A ring holding at most `cap` traces (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "trace buffer needs capacity");
        TraceBuffer {
            inner: Mutex::new(Ring {
                cap,
                traces: VecDeque::with_capacity(cap.min(1024)),
                dropped: 0,
            }),
        }
    }

    /// Record a completed trace, evicting the oldest when full.
    pub fn push(&self, trace: Trace) {
        let mut ring = self.inner.lock().expect("trace buffer poisoned");
        if ring.traces.len() == ring.cap {
            ring.traces.pop_front();
            ring.dropped += 1;
        }
        ring.traces.push_back(trace);
    }

    /// Number of traces currently held.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("trace buffer poisoned")
            .traces
            .len()
    }

    /// Whether the ring holds no traces.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many traces were evicted to respect the bound.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("trace buffer poisoned").dropped
    }

    /// Copy out every held trace, oldest first.
    pub fn traces(&self) -> Vec<Trace> {
        self.inner
            .lock()
            .expect("trace buffer poisoned")
            .traces
            .iter()
            .cloned()
            .collect()
    }

    /// The `n` longest-duration traces, slowest first (ties broken by id
    /// for determinism).
    pub fn slowest(&self, n: usize) -> Vec<Trace> {
        let mut all = self.traces();
        all.sort_by(|a, b| b.duration().cmp(&a.duration()).then(a.id.cmp(&b.id)));
        all.truncate(n);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn trace_accumulates_spans_and_duration() {
        let mut trace = Trace::new(TraceKind::Propagation, 7);
        trace
            .span_with("nagano_cluster_distribute", "site=tokyo", t(10), t(12))
            .span("nagano_odg_traversal", t(12), t(12))
            .span_with("nagano_cache_apply", "pages=5", t(12), t(15));
        assert_eq!(trace.start(), t(10));
        assert_eq!(trace.end(), t(15));
        assert_eq!(trace.duration().as_secs_f64(), 5.0);
        let text = trace.render();
        assert!(text.contains("propagation trace #7"));
        assert!(text.contains("site=tokyo"));
        assert!(text.contains("nagano_cache_apply"));
    }

    #[test]
    fn child_spans_link_into_a_tree() {
        let mut trace = Trace::new(TraceKind::Propagation, 3);
        let root = trace.add_span("nagano_cluster_txn_receipt", "txn=3", t(0), t(0));
        let dist = trace.add_child(root, "nagano_cluster_distribute", "site=Tokyo", t(0), t(2));
        let odg = trace.add_child(dist, "nagano_odg_traversal", "visited=9", t(2), t(2));
        let apply = trace.add_child(odg, "nagano_cache_apply", "regenerated=4", t(2), t(3));
        let leaf = trace.add_child(apply, "nagano_cache_first_fresh_hit", "", t(3), t(9));
        assert_eq!(trace.spans[root].parent, None);
        assert_eq!(trace.spans[leaf].parent, Some(apply));
        assert_eq!(trace.depth(root), 0);
        assert_eq!(trace.depth(leaf), 4);
        // Root-to-leaf duration is the update-to-serve freshness latency.
        assert_eq!(trace.duration().as_secs_f64(), 9.0);
        // Rendering indents children beneath their parents.
        let text = trace.render();
        assert!(text.contains("  nagano_cluster_distribute"));
        assert!(text.contains("        nagano_cache_first_fresh_hit"));
    }

    #[test]
    fn to_json_is_one_well_formed_line_with_parent_links() {
        let mut trace = Trace::new(TraceKind::Propagation, 11);
        let root = trace.add_span("nagano_cluster_txn_receipt", "q=\"x\"", t(1), t(1));
        trace.add_child(root, "nagano_cluster_distribute", "site=Tokyo", t(1), t(4));
        let json = trace.to_json();
        assert!(!json.contains('\n'), "one line per trace");
        assert!(json.starts_with("{\"id\":11,\"kind\":\"propagation\""));
        assert!(json.contains("\"duration_s\":3.000000"));
        assert!(json.contains("\"parent\":null"));
        assert!(json.contains("\"parent\":0"));
        assert!(json.contains("\"detail\":\"q=\\\"x\\\"\""), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // Byte-identical across calls: part of the determinism surface.
        assert_eq!(json, trace.to_json());
    }

    #[test]
    fn empty_trace_is_zero_length() {
        let trace = Trace::new(TraceKind::Serving, 0);
        assert_eq!(trace.duration(), SimDuration::ZERO);
        assert!(trace.render().contains("0 spans"));
    }

    #[test]
    fn ring_evicts_oldest() {
        let buf = TraceBuffer::new(3);
        for i in 0..5 {
            let mut tr = Trace::new(TraceKind::Serving, i);
            tr.span("nagano_cluster_route", t(i), t(i + 1));
            buf.push(tr);
        }
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.dropped(), 2);
        let ids: Vec<u64> = buf.traces().iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![2, 3, 4]);
    }

    #[test]
    fn slowest_sorts_by_duration_then_id() {
        let buf = TraceBuffer::new(10);
        for (id, dur) in [(1u64, 5u64), (2, 9), (3, 5), (4, 1)] {
            let mut tr = Trace::new(TraceKind::Propagation, id);
            tr.span("nagano_cache_apply", t(0), t(dur));
            buf.push(tr);
        }
        let top: Vec<u64> = buf.slowest(3).iter().map(|t| t.id).collect();
        assert_eq!(top, vec![2, 1, 3]);
        assert_eq!(buf.slowest(99).len(), 4);
    }
}
