//! Structured traces over simulated time.
//!
//! A [`Trace`] is an ordered list of named [`Span`]s sharing one logical
//! transaction or request: the *propagation trace* follows a database
//! commit through ODG traversal, the regenerate/invalidate decision,
//! per-site distribution, and cache application; the *serving trace*
//! follows one request from the MSIRP route decision through the cache
//! lookup to the rendered response. Timestamps are [`SimTime`] — virtual,
//! not wall-clock — so a fixed seed reproduces byte-identical traces.
//!
//! Completed traces land in a bounded [`TraceBuffer`] ring: old traces
//! fall off the front, memory stays bounded over a 16-day run.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Mutex;

use nagano_simcore::{SimDuration, SimTime};

/// Which pipeline a trace follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// DB commit → all serving caches consistent.
    Propagation,
    /// Client request → response.
    Serving,
}

impl TraceKind {
    /// Lowercase label for rendering.
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::Propagation => "propagation",
            TraceKind::Serving => "serving",
        }
    }
}

/// One timed step inside a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Step name from the pipeline's fixed vocabulary (`replicate`,
    /// `odg_traversal`, `regenerate`, `cache_apply`, `route`, ...).
    pub name: &'static str,
    /// Free-form annotation (`site=tokyo`, `hit`, `url=/medals`).
    pub detail: String,
    /// When the step began.
    pub start: SimTime,
    /// When the step ended (`>= start`).
    pub end: SimTime,
}

impl Span {
    /// The span's duration.
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

/// A completed or in-flight trace: an id plus its spans in recorded order.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Correlation id: the transaction log sequence number for propagation
    /// traces, the request ordinal for serving traces.
    pub id: u64,
    /// Pipeline kind.
    pub kind: TraceKind,
    /// Spans in recorded order.
    pub spans: Vec<Span>,
}

impl Trace {
    /// Start an empty trace.
    pub fn new(kind: TraceKind, id: u64) -> Self {
        Trace {
            id,
            kind,
            spans: Vec::new(),
        }
    }

    /// Append a span with no annotation.
    pub fn span(&mut self, name: &'static str, start: SimTime, end: SimTime) -> &mut Self {
        self.span_with(name, String::new(), start, end)
    }

    /// Append an annotated span.
    pub fn span_with(
        &mut self,
        name: &'static str,
        detail: impl Into<String>,
        start: SimTime,
        end: SimTime,
    ) -> &mut Self {
        debug_assert!(end >= start, "span {name} ends before it starts");
        self.spans.push(Span {
            name,
            detail: detail.into(),
            start,
            end,
        });
        self
    }

    /// Earliest span start (simulation epoch if the trace is empty).
    pub fn start(&self) -> SimTime {
        self.spans
            .iter()
            .map(|s| s.start)
            .min()
            .unwrap_or(SimTime::ZERO)
    }

    /// Latest span end (simulation epoch if the trace is empty).
    pub fn end(&self) -> SimTime {
        self.spans
            .iter()
            .map(|s| s.end)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// End-to-end duration covered by the spans.
    pub fn duration(&self) -> SimDuration {
        self.end().since(self.start())
    }

    /// Render an ASCII waterfall: one line per span with offsets relative
    /// to the trace start.
    pub fn render(&self) -> String {
        let base = self.start();
        let mut out = format!(
            "{} trace #{} — {} spans, {:.6} s\n",
            self.kind.label(),
            self.id,
            self.spans.len(),
            self.duration().as_secs_f64()
        );
        let name_w = self.spans.iter().map(|s| s.name.len()).max().unwrap_or(0);
        for s in &self.spans {
            let from = s.start.since(base).as_secs_f64();
            let to = s.end.since(base).as_secs_f64();
            let _ = writeln!(
                out,
                "  +{from:>10.6}s ..+{to:>10.6}s  {name:<name_w$}  {detail}",
                name = s.name,
                detail = s.detail
            );
        }
        out
    }
}

/// Default ring capacity for [`TraceBuffer`].
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// A bounded, thread-safe ring of completed traces.
#[derive(Debug)]
pub struct TraceBuffer {
    inner: Mutex<Ring>,
}

#[derive(Debug)]
struct Ring {
    cap: usize,
    traces: VecDeque<Trace>,
    dropped: u64,
}

impl Default for TraceBuffer {
    fn default() -> Self {
        TraceBuffer::new(DEFAULT_TRACE_CAPACITY)
    }
}

impl TraceBuffer {
    /// A ring holding at most `cap` traces (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "trace buffer needs capacity");
        TraceBuffer {
            inner: Mutex::new(Ring {
                cap,
                traces: VecDeque::with_capacity(cap.min(1024)),
                dropped: 0,
            }),
        }
    }

    /// Record a completed trace, evicting the oldest when full.
    pub fn push(&self, trace: Trace) {
        let mut ring = self.inner.lock().expect("trace buffer poisoned");
        if ring.traces.len() == ring.cap {
            ring.traces.pop_front();
            ring.dropped += 1;
        }
        ring.traces.push_back(trace);
    }

    /// Number of traces currently held.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("trace buffer poisoned")
            .traces
            .len()
    }

    /// Whether the ring holds no traces.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many traces were evicted to respect the bound.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("trace buffer poisoned").dropped
    }

    /// Copy out every held trace, oldest first.
    pub fn traces(&self) -> Vec<Trace> {
        self.inner
            .lock()
            .expect("trace buffer poisoned")
            .traces
            .iter()
            .cloned()
            .collect()
    }

    /// The `n` longest-duration traces, slowest first (ties broken by id
    /// for determinism).
    pub fn slowest(&self, n: usize) -> Vec<Trace> {
        let mut all = self.traces();
        all.sort_by(|a, b| b.duration().cmp(&a.duration()).then(a.id.cmp(&b.id)));
        all.truncate(n);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn trace_accumulates_spans_and_duration() {
        let mut trace = Trace::new(TraceKind::Propagation, 7);
        trace
            .span_with("replicate", "site=tokyo", t(10), t(12))
            .span("odg_traversal", t(12), t(12))
            .span_with("regenerate", "pages=5", t(12), t(15));
        assert_eq!(trace.start(), t(10));
        assert_eq!(trace.end(), t(15));
        assert_eq!(trace.duration().as_secs_f64(), 5.0);
        let text = trace.render();
        assert!(text.contains("propagation trace #7"));
        assert!(text.contains("site=tokyo"));
        assert!(text.contains("regenerate"));
    }

    #[test]
    fn empty_trace_is_zero_length() {
        let trace = Trace::new(TraceKind::Serving, 0);
        assert_eq!(trace.duration(), SimDuration::ZERO);
        assert!(trace.render().contains("0 spans"));
    }

    #[test]
    fn ring_evicts_oldest() {
        let buf = TraceBuffer::new(3);
        for i in 0..5 {
            let mut tr = Trace::new(TraceKind::Serving, i);
            tr.span("route", t(i), t(i + 1));
            buf.push(tr);
        }
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.dropped(), 2);
        let ids: Vec<u64> = buf.traces().iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![2, 3, 4]);
    }

    #[test]
    fn slowest_sorts_by_duration_then_id() {
        let buf = TraceBuffer::new(10);
        for (id, dur) in [(1u64, 5u64), (2, 9), (3, 5), (4, 1)] {
            let mut tr = Trace::new(TraceKind::Propagation, id);
            tr.span("regenerate", t(0), t(dur));
            buf.push(tr);
        }
        let top: Vec<u64> = buf.slowest(3).iter().map(|t| t.id).collect();
        assert_eq!(top, vec![2, 1, 3]);
        assert_eq!(buf.slowest(99).len(), 4);
    }
}
