//! Models of the *other* web sites measured in Tables 1–2.
//!
//! The paper compared the Olympics home page against major ISP home pages
//! (Nifty, OZEMAIL, Demon, CompuServe, AOL, MSN, NETCOM, AT&T) fetched
//! over 28.8 kbps modems on Day 14. We obviously cannot fetch 1998's
//! internet, so each comparator is a parameterised model: page size,
//! server-side latency, and path congestion. The Olympics entries in the
//! tables are produced by the *actual simulated site*; these models only
//! stand in for the third-party columns, calibrated so the comparison's
//! shape (Olympics among the fastest; transmit rates in the high-teens to
//! mid-twenties kbps) is reproduced.

use nagano_simcore::{DeterministicRng, LinkClass, LinkModel, SimDuration};

/// A modelled third-party web site.
#[derive(Debug, Clone)]
pub struct RemoteSite {
    /// Display name ("AOL", "Nifty", …).
    pub name: &'static str,
    /// Home-page transfer size in bytes.
    pub page_bytes: u64,
    /// Server-side time before the first byte (loaded 1998 servers
    /// generating dynamic content without caching were slow).
    pub server_ms: f64,
    /// Path congestion multiplier (≥ 1).
    pub congestion: f64,
}

impl RemoteSite {
    /// Measure `n` modem fetches; returns `(mean_response_secs,
    /// mean_transmit_kbps)` — the two rows of Tables 1 and 2.
    pub fn measure(&self, n: usize, rng: &mut DeterministicRng) -> (f64, f64) {
        assert!(n > 0);
        let link = LinkModel::new(LinkClass::Modem28_8)
            .with_congestion(self.congestion)
            .with_jitter(0.10);
        let mut resp = 0.0;
        let mut rate = 0.0;
        for _ in 0..n {
            let est = link.sample(
                self.page_bytes,
                SimDuration::from_secs_f64(self.server_ms / 1_000.0),
                rng,
            );
            resp += est.response_secs;
            rate += est.transmit_kbps;
        }
        (resp / n as f64, rate / n as f64)
    }

    /// The non-US comparators of Table 1 (ISP name → model). Calibrated
    /// to land near the paper's measured means: Nifty 16.2 s, OZEMAIL
    /// 29.4 s, Demon 17.4 s.
    pub fn table1_sites() -> Vec<RemoteSite> {
        vec![
            RemoteSite {
                name: "Nifty Serve (Japan)",
                page_bytes: 44_000,
                server_ms: 250.0,
                congestion: 1.0,
            },
            RemoteSite {
                name: "OZEMAIL (Australia)",
                page_bytes: 55_000,
                server_ms: 1_200.0,
                congestion: 1.40,
            },
            RemoteSite {
                name: "DEMON (UK)",
                page_bytes: 47_000,
                server_ms: 300.0,
                congestion: 1.0,
            },
        ]
    }

    /// The US comparators of Table 2 (CompuServe 19.1 s, AOL 23.9 s,
    /// MSN 20.2 s, NETCOM 19.7 s, AT&T 19.7 s).
    pub fn table2_sites() -> Vec<RemoteSite> {
        vec![
            RemoteSite {
                name: "CompuServe",
                page_bytes: 52_000,
                server_ms: 400.0,
                congestion: 1.0,
            },
            RemoteSite {
                name: "AOL",
                page_bytes: 58_000,
                server_ms: 1_500.0,
                congestion: 1.12,
            },
            RemoteSite {
                name: "MSN",
                page_bytes: 54_000,
                server_ms: 600.0,
                congestion: 1.0,
            },
            RemoteSite {
                name: "NETCOM",
                page_bytes: 53_000,
                server_ms: 500.0,
                congestion: 1.0,
            },
            RemoteSite {
                name: "AT&T",
                page_bytes: 53_000,
                server_ms: 500.0,
                congestion: 1.0,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparators_land_in_paper_bands() {
        let mut rng = DeterministicRng::seed_from_u64(14);
        for site in RemoteSite::table1_sites()
            .into_iter()
            .chain(RemoteSite::table2_sites())
        {
            let (resp, rate) = site.measure(500, &mut rng);
            assert!(
                (14.0..32.0).contains(&resp),
                "{}: response {resp:.1}s",
                site.name
            );
            assert!(
                (14.0..27.0).contains(&rate),
                "{}: rate {rate:.1}kbps",
                site.name
            );
        }
    }

    #[test]
    fn slower_servers_measure_slower() {
        let mut rng = DeterministicRng::seed_from_u64(1);
        let fast = RemoteSite {
            name: "fast",
            page_bytes: 55_000,
            server_ms: 100.0,
            congestion: 1.0,
        };
        let slow = RemoteSite {
            name: "slow",
            page_bytes: 55_000,
            server_ms: 3_000.0,
            congestion: 1.0,
        };
        let (rf, _) = fast.measure(300, &mut rng);
        let (rs, _) = slow.measure(300, &mut rng);
        assert!(rs > rf + 2.0, "fast {rf} slow {rs}");
    }

    #[test]
    fn measurement_is_deterministic_per_seed() {
        let site = RemoteSite::table2_sites().remove(0);
        let a = site.measure(100, &mut DeterministicRng::seed_from_u64(9));
        let b = site.measure(100, &mut DeterministicRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
