//! The static topology: four complexes, thirteen SP2 frames, the MSIRP
//! address table, and the region↔site OSPF cost matrix.
//!
//! Per §4.2 of the paper, **every complex advertises all twelve SIPR
//! addresses**: at each complex four Network Dispatcher boxes sit between
//! the routers and the web servers, each box being the *primary* source of
//! three of the twelve addresses and *secondary* source of two others
//! (secondary advertisements carry a higher OSPF cost). An incoming
//! request carries one of the twelve addresses (round-robin DNS) and flows
//! to the advertising complex with the lowest OSPF cost from the client —
//! normally the geographically closest one. Withdrawing one address at one
//! complex shifts 1/12 (8⅓%) of its traffic elsewhere.

use nagano_workload::Region;
use serde::{Deserialize, Serialize};

/// Identifies one serving complex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SiteId(pub usize);

/// Static description of a complex.
#[derive(Debug, Clone, Copy)]
pub struct SiteSpec {
    /// Complex name.
    pub name: &'static str,
    /// SP2 frames at the complex.
    pub frames: usize,
    /// Serving uniprocessors per frame (Figure 6: eight UPs serve, the
    /// SMP runs the trigger monitor).
    pub nodes_per_frame: usize,
    /// Network Dispatcher boxes at the complex.
    pub nd_boxes: usize,
    /// Replication delay from the Nagano master, in seconds (Figure 5:
    /// Tokyo and Schaumburg fed directly; Columbus and Bethesda chained
    /// off Schaumburg).
    pub replication_delay_secs: u64,
}

/// The four production complexes.
pub const SITES: [SiteSpec; 4] = [
    SiteSpec {
        name: "Schaumburg",
        frames: 4,
        nodes_per_frame: 8,
        nd_boxes: 4,
        replication_delay_secs: 2,
    },
    SiteSpec {
        name: "Columbus",
        frames: 3,
        nodes_per_frame: 8,
        nd_boxes: 4,
        replication_delay_secs: 5,
    },
    SiteSpec {
        name: "Bethesda",
        frames: 3,
        nodes_per_frame: 8,
        nd_boxes: 4,
        replication_delay_secs: 5,
    },
    SiteSpec {
        name: "Tokyo",
        frames: 3,
        nodes_per_frame: 8,
        nd_boxes: 4,
        replication_delay_secs: 2,
    },
];

/// Schaumburg, Illinois.
pub const SCHAUMBURG: SiteId = SiteId(0);
/// Columbus, Ohio.
pub const COLUMBUS: SiteId = SiteId(1);
/// Bethesda, Maryland.
pub const BETHESDA: SiteId = SiteId(2);
/// Tokyo, Japan.
pub const TOKYO: SiteId = SiteId(3);

/// OSPF-style path cost from a client region to a complex. Lower is
/// closer. Regions with several comparably-close complexes (cost within
/// [`TIE_BAND`] of the minimum) spread across them by address — the US
/// east coast saw similar costs to Columbus and Bethesda.
pub fn region_cost(region: Region, site: SiteId) -> u32 {
    // Rows: UsEast, UsWest, Japan, Europe, Oceania, RestOfWorld.
    // Cols: Schaumburg, Columbus, Bethesda, Tokyo.
    const COSTS: [[u32; 4]; 6] = [
        [12, 8, 6, 40],   // US-East → Columbus/Bethesda
        [6, 8, 14, 30],   // US-West → Schaumburg/Columbus
        [35, 38, 40, 2],  // Japan → Tokyo
        [22, 24, 18, 36], // Europe → Bethesda (transatlantic lands east)
        [34, 36, 38, 12], // Oceania → Tokyo
        [24, 26, 24, 22], // Rest-of-world → Tokyo/Schaumburg/Bethesda
    ];
    let r = Region::ALL.iter().position(|&x| x == region).unwrap();
    COSTS[r][site.0]
}

/// Cost band within which complexes count as equally close and share an
/// address's traffic.
pub const TIE_BAND: u32 = 3;

/// Network propagation delay (one way, milliseconds) from a region to a
/// site — the server-side component of response times.
pub fn region_latency_ms(region: Region, site: SiteId) -> f64 {
    region_cost(region, site) as f64 * 2.5
}

/// How one complex currently advertises one MSIRP address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Advert {
    /// Advertised by the address's primary ND box (normal cost).
    Primary,
    /// Advertised by the secondary ND box (cost penalty) — the primary
    /// box is down.
    Secondary,
    /// Both designated boxes are down but another ND box at the complex
    /// re-advertises the address at a steep cost — the last intra-complex
    /// degradation tier before traffic leaves the complex entirely.
    Fallback,
    /// Not advertised (withdrawn, all boxes down, or complex dark).
    None,
}

/// The MSIRP routing plane.
#[derive(Debug, Clone, Default)]
pub struct Msirp;

/// The outcome of routing one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteDecision {
    /// Served by this complex.
    Site(SiteId),
    /// No complex is available (total outage).
    Unroutable,
}

impl Msirp {
    /// The production routing plane.
    pub fn nagano() -> Self {
        Msirp
    }

    /// Number of SIPR addresses.
    pub fn addresses(&self) -> usize {
        12
    }

    /// The ND box that is primary for `addr` (same layout at every
    /// complex: four boxes, three primary addresses each).
    pub fn primary_box(&self, addr: usize) -> usize {
        (addr % 12) % 4
    }

    /// The ND box that is secondary for `addr`.
    pub fn secondary_box(&self, addr: usize) -> usize {
        ((addr % 12) + 1) % 4
    }

    /// Route a request carrying MSIRP address `addr` from `region`, given
    /// each complex's advertisement state for that address.
    ///
    /// The lowest-cost advertising complex wins; secondary advertisements
    /// carry a large penalty (they only matter when every closer primary
    /// is gone); addresses dark everywhere fall back to the nearest
    /// complex that serves at all. Cost ties within [`TIE_BAND`] split by
    /// address, which is what spreads round-robin DNS traffic across
    /// equally-near complexes.
    pub fn route(&self, region: Region, addr: usize, adverts: &[Advert; 4]) -> RouteDecision {
        const SECONDARY_PENALTY: u32 = 1_000;
        const FALLBACK_PENALTY: u32 = 10_000;
        let addr = addr % 12;
        let mut candidates: Vec<(u32, usize)> = Vec::with_capacity(4);
        for (site, advert) in adverts.iter().enumerate() {
            let cost = match advert {
                Advert::Primary => region_cost(region, SiteId(site)),
                Advert::Secondary => region_cost(region, SiteId(site)) + SECONDARY_PENALTY,
                Advert::Fallback => region_cost(region, SiteId(site)) + FALLBACK_PENALTY,
                Advert::None => continue,
            };
            candidates.push((cost, site));
        }
        if candidates.is_empty() {
            // Address dark everywhere: any complex still advertising
            // *anything* would take the traffic; the caller passes
            // Advert::None for dead complexes, so model this as "nearest
            // complex that could advertise at all" via a separate pass.
            for site in 0..4 {
                // A complex that is down for this address may be down in
                // general; the caller encodes that with all-None adverts,
                // so there is nothing to fall back to here.
                let _ = site;
            }
            return RouteDecision::Unroutable;
        }
        candidates.sort_unstable();
        let min_cost = candidates[0].0;
        let band: Vec<usize> = candidates
            .iter()
            .take_while(|&&(c, _)| c <= min_cost.saturating_add(TIE_BAND) && c < FALLBACK_PENALTY)
            .map(|&(_, s)| s)
            .collect();
        let chosen = if band.is_empty() {
            candidates[0].1
        } else {
            band[addr % band.len()]
        };
        RouteDecision::Site(SiteId(chosen))
    }
}

/// Total serving nodes in the production topology (13 frames × 8 UPs).
pub fn total_serving_nodes() -> usize {
    SITES.iter().map(|s| s.frames * s.nodes_per_frame).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL_PRIMARY: [Advert; 4] = [Advert::Primary; 4];

    #[test]
    fn production_dimensions() {
        assert_eq!(SITES.iter().map(|s| s.frames).sum::<usize>(), 13);
        assert_eq!(total_serving_nodes(), 104); // 13 frames × 8 serving UPs
        assert_eq!(SITES[SCHAUMBURG.0].frames, 4);
        assert!(SITES.iter().all(|s| s.nd_boxes == 4));
    }

    #[test]
    fn each_nd_box_is_primary_for_three_addresses() {
        let m = Msirp::nagano();
        for nd in 0..4 {
            let n = (0..12).filter(|&a| m.primary_box(a) == nd).count();
            assert_eq!(n, 3);
        }
        for a in 0..12 {
            assert_ne!(m.primary_box(a), m.secondary_box(a));
        }
    }

    #[test]
    fn geographic_routing_picks_nearest_complex() {
        let m = Msirp::nagano();
        for addr in 0..12 {
            assert_eq!(
                m.route(Region::Japan, addr, &ALL_PRIMARY),
                RouteDecision::Site(TOKYO)
            );
            assert_eq!(
                m.route(Region::Europe, addr, &ALL_PRIMARY),
                RouteDecision::Site(BETHESDA)
            );
            assert_eq!(
                m.route(Region::Oceania, addr, &ALL_PRIMARY),
                RouteDecision::Site(TOKYO)
            );
        }
    }

    #[test]
    fn cost_ties_split_by_address() {
        // US-East: Columbus (8) and Bethesda (6) are within the tie band,
        // so the twelve addresses split between them.
        let m = Msirp::nagano();
        let mut per_site = [0u32; 4];
        for addr in 0..12 {
            if let RouteDecision::Site(s) = m.route(Region::UsEast, addr, &ALL_PRIMARY) {
                per_site[s.0] += 1;
            }
        }
        assert_eq!(per_site[SCHAUMBURG.0], 0);
        assert_eq!(per_site[TOKYO.0], 0);
        assert_eq!(per_site[COLUMBUS.0], 6);
        assert_eq!(per_site[BETHESDA.0], 6);
    }

    #[test]
    fn dead_complex_reroutes_to_next_nearest() {
        let m = Msirp::nagano();
        let adverts = [
            Advert::Primary,
            Advert::Primary,
            Advert::Primary,
            Advert::None,
        ];
        let RouteDecision::Site(s) = m.route(Region::Japan, 0, &adverts) else {
            panic!("must route");
        };
        assert_ne!(s, TOKYO);
        // Japan's next-nearest is Schaumburg (cost 35).
        assert_eq!(s, SCHAUMBURG);
    }

    #[test]
    fn secondary_advert_only_wins_when_primaries_are_gone() {
        let m = Msirp::nagano();
        // Tokyo only has its secondary box for this address: a Japanese
        // client still lands on Tokyo only if no primary complex is
        // closer... with all other complexes primary, the huge secondary
        // penalty sends the client across the ocean.
        let adverts = [
            Advert::Primary,
            Advert::Primary,
            Advert::Primary,
            Advert::Secondary,
        ];
        assert_eq!(
            m.route(Region::Japan, 0, &adverts),
            RouteDecision::Site(SCHAUMBURG)
        );
        // But when Tokyo's secondary is the only advertisement, it wins.
        let only_tokyo = [Advert::None, Advert::None, Advert::None, Advert::Secondary];
        assert_eq!(
            m.route(Region::Japan, 0, &only_tokyo),
            RouteDecision::Site(TOKYO)
        );
    }

    #[test]
    fn total_outage_is_unroutable() {
        let m = Msirp::nagano();
        assert_eq!(
            m.route(Region::Japan, 0, &[Advert::None; 4]),
            RouteDecision::Unroutable
        );
    }

    #[test]
    fn cost_matrix_matches_geography() {
        assert!(region_cost(Region::Japan, TOKYO) < region_cost(Region::Japan, SCHAUMBURG));
        assert!(region_cost(Region::UsEast, BETHESDA) < region_cost(Region::UsEast, TOKYO));
        assert!(region_cost(Region::UsWest, SCHAUMBURG) < region_cost(Region::UsWest, BETHESDA));
        assert!(region_cost(Region::Oceania, TOKYO) < region_cost(Region::Oceania, COLUMBUS));
        assert!(region_latency_ms(Region::Japan, TOKYO) < 10.0);
    }
}
