//! Live cluster state: node/frame/dispatcher/complex health, advisor-based
//! node selection, per-site address advertisement, and failure injection —
//! the machinery of "elegant degradation" (§4.2).

use nagano_simcore::DeterministicRng;
use serde::{Deserialize, Serialize};

use crate::topology::{Advert, Msirp, SiteId, SITES};

/// What failed (or recovered).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureKind {
    /// One serving node (web server process / UP).
    Node {
        /// Complex.
        site: usize,
        /// Frame within the complex.
        frame: usize,
        /// Node within the frame.
        node: usize,
    },
    /// A whole SP2 frame.
    Frame {
        /// Complex.
        site: usize,
        /// Frame within the complex.
        frame: usize,
    },
    /// One of the complex's four Network Dispatcher boxes.
    Dispatcher {
        /// Complex.
        site: usize,
        /// ND box index (0..4).
        nd: usize,
    },
    /// The entire complex (power/network).
    Complex {
        /// Complex.
        site: usize,
    },
}

/// Health state of one complex.
#[derive(Debug, Clone)]
pub struct SiteState {
    /// `nodes[frame][node]` — serving-node health.
    nodes: Vec<Vec<bool>>,
    /// Frame-level health (a dead frame hides its nodes).
    frames: Vec<bool>,
    /// ND box health.
    nd: Vec<bool>,
    /// Addresses the operators withdrew at this complex (traffic
    /// shifting in 8⅓% steps).
    withdrawn: [bool; 12],
    /// Complex-level health.
    complex_up: bool,
    /// Advisor round-robin cursor.
    cursor: usize,
}

impl SiteState {
    /// Fresh, fully healthy complex with the production shape.
    pub fn new(site: SiteId) -> Self {
        let spec = &SITES[site.0];
        SiteState {
            nodes: vec![vec![true; spec.nodes_per_frame]; spec.frames],
            frames: vec![true; spec.frames],
            nd: vec![true; spec.nd_boxes],
            withdrawn: [false; 12],
            complex_up: true,
            cursor: 0,
        }
    }

    /// Whether the complex can accept traffic at all: it is up, has at
    /// least one working ND box, and at least one live serving node.
    pub fn available(&self) -> bool {
        self.complex_up && self.nd.iter().any(|&b| b) && self.alive_node_count() > 0
    }

    /// How this complex advertises `addr` right now.
    pub fn advert(&self, msirp: &Msirp, addr: usize) -> Advert {
        if !self.available() || self.withdrawn[addr % 12] {
            return Advert::None;
        }
        if self.nd[msirp.primary_box(addr)] {
            Advert::Primary
        } else if self.nd[msirp.secondary_box(addr)] {
            Advert::Secondary
        } else if self.nd.iter().any(|&b| b) {
            // Both designated boxes dead: a surviving box re-advertises
            // at high cost so the address never goes dark while the
            // complex can serve at all.
            Advert::Fallback
        } else {
            Advert::None
        }
    }

    /// Withdraw or re-advertise an address at this complex.
    pub fn set_withdrawn(&mut self, addr: usize, withdrawn: bool) {
        self.withdrawn[addr % 12] = withdrawn;
    }

    /// Count of serving nodes the advisors consider healthy.
    pub fn alive_node_count(&self) -> usize {
        if !self.complex_up {
            return 0;
        }
        self.nodes
            .iter()
            .zip(&self.frames)
            .filter(|(_, &f)| f)
            .map(|(frame, _)| frame.iter().filter(|&&n| n).count())
            .sum()
    }

    /// Total configured serving nodes.
    pub fn total_node_count(&self) -> usize {
        self.nodes.iter().map(|f| f.len()).sum()
    }

    /// Pick the next serving node (advisor-maintained round robin over
    /// live nodes). Returns `(frame, node)`.
    pub fn pick_node(&mut self) -> Option<(usize, usize)> {
        let alive = self.alive_node_count();
        if !self.available() || alive == 0 {
            return None;
        }
        self.cursor = (self.cursor + 1) % alive;
        let mut remaining = self.cursor;
        for (fi, frame) in self.nodes.iter().enumerate() {
            if !self.frames[fi] {
                continue;
            }
            for (ni, &up) in frame.iter().enumerate() {
                if up {
                    if remaining == 0 {
                        return Some((fi, ni));
                    }
                    remaining -= 1;
                }
            }
        }
        None
    }

    /// Apply a failure (`up = false`) or restore (`up = true`).
    pub fn apply(&mut self, kind: FailureKind, up: bool) {
        match kind {
            FailureKind::Node { frame, node, .. } => {
                if let Some(f) = self.nodes.get_mut(frame) {
                    if let Some(n) = f.get_mut(node) {
                        *n = up;
                    }
                }
            }
            FailureKind::Frame { frame, .. } => {
                if let Some(f) = self.frames.get_mut(frame) {
                    *f = up;
                }
            }
            FailureKind::Dispatcher { nd, .. } => {
                if let Some(b) = self.nd.get_mut(nd) {
                    *b = up;
                }
            }
            FailureKind::Complex { .. } => self.complex_up = up,
        }
    }
}

/// Health state across all four complexes.
#[derive(Debug, Clone)]
pub struct ClusterState {
    sites: Vec<SiteState>,
    dns_counter: usize,
}

impl Default for ClusterState {
    fn default() -> Self {
        Self::new()
    }
}

impl ClusterState {
    /// All-healthy production cluster.
    pub fn new() -> Self {
        ClusterState {
            sites: (0..4).map(|i| SiteState::new(SiteId(i))).collect(),
            dns_counter: 0,
        }
    }

    /// Access a site.
    pub fn site(&self, id: SiteId) -> &SiteState {
        &self.sites[id.0]
    }

    /// Mutable access to a site.
    pub fn site_mut(&mut self, id: SiteId) -> &mut SiteState {
        &mut self.sites[id.0]
    }

    /// Each complex's advertisement of `addr`.
    pub fn adverts(&self, msirp: &Msirp, addr: usize) -> [Advert; 4] {
        [
            self.sites[0].advert(msirp, addr),
            self.sites[1].advert(msirp, addr),
            self.sites[2].advert(msirp, addr),
            self.sites[3].advert(msirp, addr),
        ]
    }

    /// Site availability vector.
    pub fn availability(&self) -> [bool; 4] {
        [
            self.sites[0].available(),
            self.sites[1].available(),
            self.sites[2].available(),
            self.sites[3].available(),
        ]
    }

    /// Round-robin DNS: the next MSIRP address handed to a client.
    pub fn next_dns_address(&mut self) -> usize {
        self.dns_counter = (self.dns_counter + 1) % 12;
        self.dns_counter
    }

    /// Apply a failure/restore.
    pub fn apply(&mut self, kind: FailureKind, up: bool) {
        let site = match kind {
            FailureKind::Node { site, .. }
            | FailureKind::Frame { site, .. }
            | FailureKind::Dispatcher { site, .. }
            | FailureKind::Complex { site } => site,
        };
        self.sites[site].apply(kind, up);
    }

    /// Pick a random failure target (chaos testing).
    pub fn random_failure_target(&self, rng: &mut DeterministicRng) -> FailureKind {
        let site = rng.index(4);
        match rng.index(4) {
            0 => FailureKind::Node {
                site,
                frame: rng.index(SITES[site].frames),
                node: rng.index(SITES[site].nodes_per_frame),
            },
            1 => FailureKind::Frame {
                site,
                frame: rng.index(SITES[site].frames),
            },
            2 => FailureKind::Dispatcher {
                site,
                nd: rng.index(SITES[site].nd_boxes),
            },
            _ => FailureKind::Complex { site },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TOKYO;

    #[test]
    fn healthy_cluster_shape() {
        let c = ClusterState::new();
        assert_eq!(c.availability(), [true; 4]);
        assert_eq!(c.site(SiteId(0)).alive_node_count(), 32); // 4 frames × 8
        assert_eq!(c.site(TOKYO).alive_node_count(), 24);
        assert_eq!(c.site(TOKYO).total_node_count(), 24);
        let m = Msirp::nagano();
        for addr in 0..12 {
            assert_eq!(c.adverts(&m, addr), [Advert::Primary; 4]);
        }
    }

    #[test]
    fn node_failure_shrinks_the_pool() {
        let mut c = ClusterState::new();
        c.apply(
            FailureKind::Node {
                site: 3,
                frame: 0,
                node: 0,
            },
            false,
        );
        assert_eq!(c.site(TOKYO).alive_node_count(), 23);
        assert!(c.site(TOKYO).available());
        // Advisors never pick the dead node.
        let mut state = c.site(TOKYO).clone();
        for _ in 0..200 {
            let (f, n) = state.pick_node().unwrap();
            assert!(!(f == 0 && n == 0), "picked dead node");
        }
    }

    #[test]
    fn frame_failure_hides_its_nodes() {
        let mut c = ClusterState::new();
        c.apply(FailureKind::Frame { site: 3, frame: 1 }, false);
        assert_eq!(c.site(TOKYO).alive_node_count(), 16);
        assert!(c.site(TOKYO).available());
        c.apply(FailureKind::Frame { site: 3, frame: 1 }, true);
        assert_eq!(c.site(TOKYO).alive_node_count(), 24);
    }

    #[test]
    fn nd_box_failure_degrades_its_addresses_to_secondary() {
        let mut c = ClusterState::new();
        let m = Msirp::nagano();
        c.apply(FailureKind::Dispatcher { site: 3, nd: 0 }, false);
        assert!(c.site(TOKYO).available(), "three boxes remain");
        // Addresses whose primary box is 0 now advertise via secondary.
        for addr in 0..12 {
            let expected = if m.primary_box(addr) == 0 {
                Advert::Secondary
            } else {
                Advert::Primary
            };
            assert_eq!(c.site(TOKYO).advert(&m, addr), expected, "addr {addr}");
        }
    }

    #[test]
    fn all_nd_boxes_down_darkens_the_complex() {
        let mut c = ClusterState::new();
        let m = Msirp::nagano();
        for nd in 0..4 {
            c.apply(FailureKind::Dispatcher { site: 3, nd }, false);
        }
        assert!(!c.site(TOKYO).available());
        assert_eq!(c.site(TOKYO).advert(&m, 0), Advert::None);
        assert_eq!(c.availability(), [true, true, true, false]);
    }

    #[test]
    fn complex_failure_and_restore() {
        let mut c = ClusterState::new();
        c.apply(FailureKind::Complex { site: 0 }, false);
        assert!(!c.site(SiteId(0)).available());
        assert_eq!(c.site(SiteId(0)).alive_node_count(), 0);
        assert!(c.site(SiteId(0)).clone().pick_node().is_none());
        c.apply(FailureKind::Complex { site: 0 }, true);
        assert!(c.site(SiteId(0)).available());
    }

    #[test]
    fn withdrawal_hides_one_address_only() {
        let mut c = ClusterState::new();
        let m = Msirp::nagano();
        c.site_mut(TOKYO).set_withdrawn(5, true);
        assert_eq!(c.site(TOKYO).advert(&m, 5), Advert::None);
        assert_eq!(c.site(TOKYO).advert(&m, 6), Advert::Primary);
        c.site_mut(TOKYO).set_withdrawn(5, false);
        assert_eq!(c.site(TOKYO).advert(&m, 5), Advert::Primary);
    }

    #[test]
    fn pick_node_round_robins_evenly() {
        let mut s = SiteState::new(TOKYO);
        let mut counts = vec![0u32; 24];
        for _ in 0..2400 {
            let (f, n) = s.pick_node().unwrap();
            counts[f * 8 + n] += 1;
        }
        assert!(counts.iter().all(|&c| c == 100), "{counts:?}");
    }

    #[test]
    fn dns_counter_cycles_twelve() {
        let mut c = ClusterState::new();
        let seen: Vec<usize> = (0..24).map(|_| c.next_dns_address()).collect();
        for a in 0..12 {
            assert_eq!(seen.iter().filter(|&&x| x == a).count(), 2);
        }
    }

    #[test]
    fn random_targets_are_well_formed() {
        let c = ClusterState::new();
        let mut rng = DeterministicRng::seed_from_u64(5);
        for _ in 0..100 {
            match c.random_failure_target(&mut rng) {
                FailureKind::Node { site, frame, node } => {
                    assert!(site < 4 && frame < SITES[site].frames && node < 8);
                }
                FailureKind::Frame { site, frame } => {
                    assert!(site < 4 && frame < SITES[site].frames);
                }
                FailureKind::Dispatcher { site, nd } => assert!(site < 4 && nd < 4),
                FailureKind::Complex { site } => assert!(site < 4),
            }
        }
    }
}
