//! Simulation of the Nagano site's global serving architecture (§3–§4).
//!
//! The production system served from four complexes — Schaumburg (4 SP2
//! frames), Columbus (3), Bethesda (3), Tokyo (3), 13 frames / 143
//! processors in all. Requests were routed by **MSIRP** (Multiple Single
//! IP Routing): twelve single-IP-routed addresses cycled by round-robin
//! DNS, each advertised by a primary and a secondary Network Dispatcher
//! with OSPF costs, giving 1/12-granularity traffic shifting and automatic
//! failover through four tiers (server → frame → dispatcher → complex) —
//! what the paper calls *elegant degradation*.
//!
//! * [`topology`] — sites, frames/nodes, region↔site OSPF cost matrix,
//!   the 12-address MSIRP table and route selection.
//! * [`state`] — live cluster state: per-node health, dispatcher health,
//!   advisor-driven node selection, failure injection.
//! * [`sim`] — the 16-day discrete-event driver combining the workload
//!   model, per-site trigger monitors with replication delays, routing,
//!   and measurement (the source of Figures 18, 20–23 and the peak /
//!   availability / freshness experiments).
//! * [`remote`] — parameterised models of the *other* web sites measured
//!   in Tables 1–2 (competitor ISP home pages).
//! * [`faults`] — deterministic data-plane fault plans: lossy / delayed /
//!   reordered / partitioned replication edges and trigger-monitor
//!   crash/recovery, scheduled on the sim clock.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
pub mod remote;
pub mod sim;
pub mod state;
pub mod topology;

pub use faults::{
    random_fault_plan, scripted_chaos_plan, scripted_serving_plan, DataFaultKind,
    DataFaultPlanEntry, EdgeSpec, LinkFault, ServingFaultKind, ServingFaultPlanEntry,
    REPLICATION_EDGES,
};
pub use remote::RemoteSite;
pub use sim::{
    random_soak_plan, ClusterConfig, ClusterReport, ClusterSim, ConvergenceRecord,
    FailurePlanEntry, ServingResilience,
};
pub use state::{ClusterState, FailureKind, SiteState};
pub use topology::{Advert, Msirp, RouteDecision, SiteId, SITES};
