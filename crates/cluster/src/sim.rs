//! The 16-day discrete-event driver: workload in, figures out.
//!
//! One run wires together the full reproduction stack — seeded database,
//! page registry, per-site trigger monitors (with Figure-5 replication
//! delays), MSIRP routing over the live cluster state, and the request
//! model — and measures everything the paper's evaluation section reports.

use std::path::PathBuf;
use std::sync::Arc;

use rustc_hash::FxHashMap;

use nagano::{BreakerConfig, CircuitBreaker, RetryBackoff};
use nagano_cache::{CacheConfig, CacheFleet, StalePolicy, StatsSnapshot};
use nagano_db::{seed_games, DeliverOutcome, GamesConfig, OlympicDb, Replica, Transaction, TxnId};
use nagano_httpd::HttpdMetrics;
use nagano_pagegen::{PageKey, PageRegistry, Renderer};
use nagano_simcore::{
    DeterministicRng, EventQueue, Histogram, LinkClass, LinkModel, SimDuration, SimTime,
    TimeSeries, Welford,
};
use nagano_telemetry::{
    json_snapshot, prometheus_text, slo_json, Counter, SloEngine, SloOutcome, SloRule, Telemetry,
    Trace, TraceKind,
};
use nagano_trigger::{ConsistencyPolicy, TriggerMonitor};
use nagano_workload::{Region, RequestModel, UpdateSchedule};

use crate::faults::{
    DataFaultKind, DataFaultPlanEntry, LinkFault, ServingFaultKind, ServingFaultPlanEntry,
    CATCHUP_BASE_BACKOFF_SECS, DR_EDGE, MAX_CATCHUP_RETRIES, PRIMARY_FEED, REPLICATION_EDGES,
};
use crate::state::{ClusterState, FailureKind};
use crate::topology::{region_latency_ms, Msirp, RouteDecision, SITES};

/// One scheduled failure or restore.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailurePlanEntry {
    /// When it happens.
    pub at: SimTime,
    /// What fails or recovers.
    pub kind: FailureKind,
    /// `false` = fail, `true` = restore.
    pub up: bool,
}

/// Simulation configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Divide paper-scale request volumes by this (1,000 ⇒ ~635k
    /// simulated requests across the Games).
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
    /// Dataset dimensions.
    pub games: GamesConfig,
    /// Consistency policy run at every site's trigger monitor.
    pub policy: ConsistencyPolicy,
    /// First simulated day (1-based, inclusive).
    pub start_day: u32,
    /// Last simulated day (inclusive).
    pub end_day: u32,
    /// Scheduled failures/restores.
    pub failure_plan: Vec<FailurePlanEntry>,
    /// Scheduled data-plane faults: replication-link misbehaviour and
    /// trigger-monitor crash/restart (see [`crate::faults`]).
    pub fault_plan: Vec<DataFaultPlanEntry>,
    /// Scheduled serving-plane faults: render slowdowns, backend outages,
    /// and cache cold-restarts (see [`crate::faults::ServingFaultKind`]).
    /// Empty by default; meaningful only with [`ClusterConfig::resilience`]
    /// set (the legacy serving path has no fault hooks).
    pub serving_fault_plan: Vec<ServingFaultPlanEntry>,
    /// Serving-path resilience: stale tombstones, per-request deadlines,
    /// seeded retry backoff, and a per-site circuit breaker (DESIGN.md
    /// §11). `None` — the default — keeps the pre-resilience serving
    /// path byte-for-byte, so existing experiments export identically.
    pub resilience: Option<ServingResilience>,
    /// External congestion on US paths: `(first_day, last_day, factor)` —
    /// Figure 22's days 7–9 anomaly was "caused by problems external to
    /// the site".
    pub us_congestion: (u32, u32, f64),
    /// 1996-style co-location: updates run **on the serving processors**,
    /// so page service slows down around update bursts. The 1998 design
    /// ran updates "on different processors from the ones serving pages"
    /// so "response times were not adversely affected around the times of
    /// peak updates" (§2).
    pub updates_on_serving_nodes: bool,
    /// When set, hourly telemetry flush events write per-hour registry
    /// snapshots (`telemetry_hourly.jsonl`) plus final `metrics.prom` /
    /// `metrics.json` / `traces.jsonl` / `slo.json` exports into this
    /// directory (typically `target/experiments/`). `None` disables all
    /// file output.
    pub export_dir: Option<PathBuf>,
    /// Service-level objectives evaluated over the run, one rule per line
    /// in the [`SloRule`] syntax (`name: 99% of <metric> < 30`,
    /// `name: p99 of <metric> < 60`). Burn rates are tracked over hourly
    /// sim-time snapshots; verdicts land in [`ClusterReport::slo`] and the
    /// `slo.json` export. Defaults to [`ClusterConfig::default_slo_rules`].
    pub slo_rules: Vec<String>,
    /// After the run, re-render every registry page and compare against
    /// each site's cache fleet, counting mismatches into
    /// [`ClusterReport::stale_pages`]. Off by default (it costs one full
    /// render sweep per site); the convergence property tests turn it on.
    pub audit_convergence: bool,
    /// Run every site's trigger monitor in fragment mode (DESIGN.md §14):
    /// fragments are cached and regenerated independently and pages
    /// recompose from cached plans. Off by default (legacy whole-page
    /// regeneration), so existing experiments export identically.
    pub fragment_mode: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            scale: 1_000.0,
            seed: 0x1998,
            games: GamesConfig::full(),
            policy: ConsistencyPolicy::UpdateInPlace,
            start_day: 1,
            end_day: 16,
            failure_plan: Vec::new(),
            fault_plan: Vec::new(),
            serving_fault_plan: Vec::new(),
            resilience: None,
            us_congestion: (7, 9, 1.45),
            updates_on_serving_nodes: false,
            export_dir: None,
            slo_rules: ClusterConfig::default_slo_rules(),
            audit_convergence: false,
            fragment_mode: false,
        }
    }
}

impl ClusterConfig {
    /// The stock objectives: the paper's 60-second propagation bound,
    /// both as a good-fraction rule (burn-rate tracked) and a percentile
    /// rule over the same freshness histogram.
    pub fn default_slo_rules() -> Vec<String> {
        vec![
            "fresh-60s: 99% of nagano_cluster_freshness_seconds < 60".to_string(),
            "fresh-p99: p99 of nagano_cluster_freshness_seconds < 60".to_string(),
        ]
    }
}

/// Serving-path resilience knobs, mirroring what the in-process
/// [`nagano::ServingSite`] runs: a [`StalePolicy`] installed on every
/// site's serving cache (evicted/invalidated bodies become bounded-age
/// tombstones), a per-request deadline, seeded retry backoff for failed
/// regenerations, and a circuit breaker per site backend.
#[derive(Debug, Clone)]
pub struct ServingResilience {
    /// Tombstone policy for every site's serving cache.
    pub stale: StalePolicy,
    /// Per-request deadline (seconds): a regeneration slower than this
    /// answers from the stale tombstone when one exists, and the fresh
    /// body lands in the background.
    pub request_budget_secs: f64,
    /// Breaker guarding each site's render/db backend.
    pub breaker: BreakerConfig,
    /// Base delay (seconds) for the full-jitter retry backoff taken when
    /// a regeneration fails with no stale copy to fall back on.
    pub retry_base_secs: f64,
    /// Cap (seconds) on any single backoff delay.
    pub retry_max_secs: f64,
    /// Bounded retry attempts per request.
    pub retry_max_attempts: u32,
}

impl Default for ServingResilience {
    fn default() -> Self {
        ServingResilience {
            stale: StalePolicy::bounded(900.0),
            request_budget_secs: 2.0,
            breaker: BreakerConfig::default(),
            retry_base_secs: 0.05,
            retry_max_secs: 0.4,
            retry_max_attempts: 3,
        }
    }
}

/// Time-to-converge bookkeeping for one healed data-plane fault: opened
/// when the fault heals, closed at the first minute boundary where the
/// faulted site's replica watermark matches the master log *and* its
/// trigger monitor has processed up to that watermark.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceRecord {
    /// Human-readable fault description (edge name + fault, or
    /// `monitor-crash <site>`).
    pub label: String,
    /// The site that had to converge.
    pub site: usize,
    /// When the fault healed.
    pub healed_at: SimTime,
    /// First minute boundary at which the site was fully converged;
    /// `None` if it never converged before the run ended.
    pub converged_at: Option<SimTime>,
}

impl ConvergenceRecord {
    /// Heal → converged, if convergence was observed.
    pub fn time_to_converge(&self) -> Option<SimDuration> {
        self.converged_at.map(|c| c - self.healed_at)
    }
}

/// Everything a run measures. Counts are in *simulated* units; multiply
/// by `scale` for paper units (helpers provided).
#[derive(Debug)]
pub struct ClusterReport {
    /// The scale divisor used.
    pub scale: f64,
    /// Requests attempted.
    pub total_requests: u64,
    /// Requests no complex could serve.
    pub failed_requests: u64,
    /// Global request series, minute bins.
    pub per_minute: TimeSeries,
    /// Per-site request series, minute bins.
    pub per_site_minute: Vec<TimeSeries>,
    /// Requests by client region.
    pub by_region: FxHashMap<Region, u64>,
    /// Body bytes served per day (index 0 = day 1), simulated units.
    pub bytes_per_day: Vec<f64>,
    /// Home-page modem response times (seconds) per (day, region).
    pub response_by_day_region: FxHashMap<(u32, Region), Welford>,
    /// All modem home-page responses (seconds) — used against the §4
    /// design requirement of ≤30 s per page on a 28.8 kbps modem.
    pub modem_responses: Histogram,
    /// Server-side service time (ms) for requests within ±2 minutes of an
    /// update being applied at their serving site.
    pub service_near_updates: Welford,
    /// Server-side service time (ms) for all other requests.
    pub service_away_from_updates: Welford,
    /// Aggregated cache statistics across all sites.
    pub cache: StatsSnapshot,
    /// Pages regenerated per day across sites (index 0 = day 1).
    pub regen_per_day: Vec<u64>,
    /// Modeled render CPU spent on trigger-driven regeneration (ms),
    /// summed across sites.
    pub regen_cpu_ms: u64,
    /// Modeled render CPU *avoided* by invalidating instead of
    /// regenerating (ms), summed across sites. Zero outside
    /// `Invalidate`/`Hybrid`.
    pub regen_saved_ms: u64,
    /// Sum of traffic-weighted staleness samples (seconds): each request
    /// that hits a page while it is stale-marked contributes its current
    /// staleness age. Approximate (log-bucketed histogram mean × count).
    pub weighted_staleness_sum_secs: f64,
    /// Number of traffic-weighted staleness samples behind the sum.
    pub weighted_staleness_samples: u64,
    /// Freshness: master-commit → site-visible latency (seconds).
    pub freshness: Welford,
    /// Freshness distribution (seconds) — percentile queries for the
    /// paper's update-propagation claim (p50/p95/p99/p999).
    pub freshness_hist: Histogram,
    /// Worst-case freshness in seconds.
    pub freshness_max: f64,
    /// End-to-end update-to-serve distribution (seconds): master commit →
    /// the first request at each site that serves a page the update
    /// touched in its fresh state. The root-to-leaf duration of a
    /// completed propagation trace lands here, one sample per site.
    pub update_to_serve: Histogram,
    /// Final SLO verdicts (with any burn-rate alerts that fired during
    /// the run), one per rule in [`ClusterConfig::slo_rules`].
    pub slo: Vec<SloOutcome>,
    /// Transactions applied at sites.
    pub updates_applied: u64,
    /// Transactions dropped by faulted replication links.
    pub replication_dropped: u64,
    /// Deliveries ignored at replicas as duplicates (reordered or re-sent
    /// messages that already arrived another way).
    pub replication_duplicates: u64,
    /// Transactions applied through watermark catch-up pulls (gap repair,
    /// post-heal resync, disaster-recovery re-feed).
    pub catch_up_applied: u64,
    /// Catch-up attempts that failed on a faulted link and were retried
    /// with exponential backoff.
    pub retries: u64,
    /// Trigger-monitor crash/restart recoveries completed.
    pub recoveries: u64,
    /// Staleness under failure: master-commit → site-visible latency
    /// (seconds) for transactions that reached a site via catch-up or
    /// monitor recovery rather than healthy streaming.
    pub staleness_hist: Histogram,
    /// Worst staleness-under-failure in seconds.
    pub staleness_max: f64,
    /// One record per healed data-plane fault: when the site reconverged.
    pub convergence: Vec<ConvergenceRecord>,
    /// Demand regenerations performed on the serving path (cache misses
    /// that rendered, on either serving path).
    pub demand_fills: u64,
    /// Demand regenerations that replaced a stale tombstone — the work
    /// the single-flight map is supposed to keep at one per stale epoch.
    pub stale_regens: u64,
    /// Distinct `(site, url, stale-epoch)` tuples behind
    /// [`Self::stale_regens`].
    pub stale_regen_keys: u64,
    /// Circuit-breaker closed→open transitions summed across sites.
    pub breaker_trips: u64,
    /// Render retry attempts burned against failed regenerations.
    pub render_retries: u64,
    /// Server-side latency (seconds) of every served request, including
    /// coalesced waits and fault-inflated renders. Report-local (never
    /// exported), so it cannot disturb byte-identical telemetry.
    pub serve_latency: Histogram,
    /// Final per-site replica watermarks (highest master txn id applied).
    pub site_watermarks: [u64; 4],
    /// Final per-site trigger-monitor watermarks (highest txn id DUP ran
    /// over).
    pub monitor_watermarks: [u64; 4],
    /// Master transaction log length at the end of the run.
    pub master_txns: u64,
    /// Stale cached pages found by the end-of-run audit; `Some(0)` means
    /// every cached body at every site matched a fresh render. `None`
    /// unless [`ClusterConfig::audit_convergence`] was set.
    pub stale_pages: Option<u64>,
    /// The run's telemetry: metric registry plus propagation and serving
    /// trace ring buffers. Export with
    /// [`nagano_telemetry::prometheus_text`] / [`json_snapshot`].
    pub telemetry: Arc<Telemetry>,
}

impl ClusterReport {
    /// Total requests in paper units.
    pub fn total_requests_paper(&self) -> f64 {
        self.total_requests as f64 * self.scale
    }

    /// Availability: fraction of requests served.
    pub fn availability(&self) -> f64 {
        if self.total_requests == 0 {
            return 1.0;
        }
        1.0 - self.failed_requests as f64 / self.total_requests as f64
    }

    /// Overall cache hit rate.
    pub fn hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }

    /// Peak minute: `(minute_index, simulated_count, paper_scale_count)`.
    pub fn peak_minute(&self) -> (usize, f64, f64) {
        let (idx, v) = self.per_minute.peak();
        (idx, v, v * self.scale)
    }

    /// Requests per site over the whole run, simulated units.
    pub fn per_site_totals(&self) -> [f64; 4] {
        let mut out = [0.0; 4];
        for (i, ts) in self.per_site_minute.iter().enumerate() {
            out[i] = ts.total();
        }
        out
    }

    /// Mean regenerations per distinct `(url, stale-epoch)` pair that was
    /// rendered out of staleness — 1.0 when request coalescing is
    /// airtight, climbing toward the stampede size without it.
    pub fn regens_per_stale_key(&self) -> f64 {
        if self.stale_regen_keys == 0 {
            return 0.0;
        }
        self.stale_regens as f64 / self.stale_regen_keys as f64
    }

    /// Fraction of served responses answered from a stale tombstone.
    pub fn stale_serve_rate(&self) -> f64 {
        let served = self.total_requests - self.failed_requests;
        if served == 0 {
            return 0.0;
        }
        self.cache.stale_served as f64 / served as f64
    }

    /// Requests per day (paper-scale millions), from the minute series.
    pub fn hits_per_day_paper_millions(&self) -> Vec<f64> {
        self.per_minute
            .rebin(1440)
            .bins()
            .iter()
            .map(|&v| v * self.scale / 1.0e6)
            .collect()
    }
}

enum SimEvent {
    /// An update reaches the master database.
    MasterUpdate(usize),
    /// A shipped transaction arrives at the receiving end of a
    /// replication edge (index into [`REPLICATION_EDGES`]).
    EdgeDeliver(usize, Arc<Transaction>),
    /// A site attempts a watermark catch-up pull over its current feed.
    CatchUp(usize),
    /// A routing-tier failure-plan entry fires.
    Failure(usize),
    /// A data-plane fault-plan entry fires.
    DataFault(usize),
    /// A serving-plane fault-plan entry fires.
    ServingFault(usize),
    /// Hourly telemetry snapshot (only scheduled when `export_dir` is set).
    TelemetryFlush,
}

/// Ship one transaction over a replication edge, applying whatever fault
/// is active on it: schedules an [`SimEvent::EdgeDeliver`], or drops the
/// shipment (partitioned link, lossy loss). `fault_rng` is only drawn
/// when a fault is active, so fault-free runs never touch it.
#[allow(clippy::too_many_arguments)]
fn ship(
    queue: &mut EventQueue<SimEvent>,
    fault_rng: &mut DeterministicRng,
    edge_fault: &[Option<LinkFault>; 5],
    dropped: &mut u64,
    dropped_total: &Counter,
    edge: usize,
    at: SimTime,
    txn: &Arc<Transaction>,
) {
    let base = SimDuration::from_secs(REPLICATION_EDGES[edge].base_delay_secs);
    let deliver_at = match edge_fault[edge] {
        None => at + base,
        Some(LinkFault::Partition) => {
            *dropped += 1;
            dropped_total.incr();
            return;
        }
        Some(LinkFault::Lossy { drop_permille }) => {
            if fault_rng.chance(drop_permille as f64 / 1000.0) {
                *dropped += 1;
                dropped_total.incr();
                return;
            }
            at + base
        }
        Some(LinkFault::Delay { extra_secs }) => at + base + SimDuration::from_secs(extra_secs),
        Some(LinkFault::Reorder { jitter_secs }) => {
            at + base + SimDuration::from_secs(fault_rng.index(jitter_secs as usize + 1) as u64)
        }
    };
    queue.schedule(deliver_at, SimEvent::EdgeDeliver(edge, Arc::clone(txn)));
}

/// Generate a random failure soak plan: `events_per_day` component
/// failures per day across `start_day..=end_day`, each restored after 30
/// to 90 minutes. At most one complex-level failure is in flight at a
/// time (the production site's redundancy budget assumed no simultaneous
/// multi-complex outage; none occurred).
pub fn random_soak_plan(
    start_day: u32,
    end_day: u32,
    events_per_day: u32,
    seed: u64,
) -> Vec<FailurePlanEntry> {
    let mut rng = DeterministicRng::seed_from_u64(seed);
    let cluster = ClusterState::new();
    let mut plan = Vec::new();
    // (restore_minute, site) of the currently scheduled complex outage.
    let mut complex_busy_until: i64 = -1;
    for day in start_day..=end_day {
        for _ in 0..events_per_day {
            let at_min = (day as u64 - 1) * 1440 + rng.index(1380) as u64;
            let duration = 30 + rng.index(61) as u64; // 30..=90 minutes
            let mut kind = cluster.random_failure_target(&mut rng);
            if let FailureKind::Complex { .. } = kind {
                if (at_min as i64) <= complex_busy_until {
                    // Another complex is already down: demote to a frame
                    // failure at the same site.
                    let site = match kind {
                        FailureKind::Complex { site } => site,
                        _ => unreachable!(),
                    };
                    kind = FailureKind::Frame { site, frame: 0 };
                } else {
                    complex_busy_until = (at_min + duration) as i64;
                }
            }
            plan.push(FailurePlanEntry {
                at: SimTime::from_mins(at_min),
                kind,
                up: false,
            });
            plan.push(FailurePlanEntry {
                at: SimTime::from_mins(at_min + duration),
                kind,
                up: true,
            });
        }
    }
    plan.sort_by_key(|e| e.at);
    plan
}

/// One serving trace is recorded per this many requests (prime, so the
/// sample is not phase-locked to any per-minute request pattern).
const SERVING_TRACE_SAMPLE: u64 = 199;

/// An in-flight update-lineage tree for one master transaction: rooted at
/// `nagano_cluster_txn_receipt`, it gains a distribute → traversal →
/// apply chain per site and closes each site's branch with a
/// `nagano_cache_first_fresh_hit` leaf when a request first serves a page
/// the transaction touched. The trace completes (and is pushed into the
/// propagation ring) once every site has both applied and served; updates
/// still waiting at the horizon flush in transaction order.
struct PendingTrace {
    trace: Trace,
    /// Index of the `nagano_cluster_txn_receipt` root span.
    root: usize,
    /// Sites that have applied the transaction.
    applied: usize,
    /// Per-site: a fresh serve has been observed.
    served: [bool; 4],
    /// Per-site index of the `nagano_cache_apply` span, the parent for
    /// that site's first-fresh-hit leaf.
    apply_span: [Option<usize>; 4],
}

/// The simulation driver.
pub struct ClusterSim {
    config: ClusterConfig,
}

impl ClusterSim {
    /// New simulation with `config`.
    pub fn new(config: ClusterConfig) -> Self {
        assert!(config.start_day >= 1 && config.end_day >= config.start_day);
        ClusterSim { config }
    }

    /// Run to completion.
    pub fn run(&self) -> ClusterReport {
        let cfg = &self.config;
        let mut rng = DeterministicRng::seed_from_u64(cfg.seed);
        let db = Arc::new(OlympicDb::new());
        seed_games(&db, &cfg.games);
        let registry = Arc::new(PageRegistry::build(&db, cfg.games.days));
        let model = RequestModel::new(&db, Arc::clone(&registry), cfg.scale);
        let mut update_rng = rng.fork(1);
        let schedule = UpdateSchedule::generate(&db, &mut update_rng);

        let telemetry = Arc::new(Telemetry::new());

        // One trigger monitor + single-member cache fleet per site, each
        // binding its live trigger/cache cells into the shared registry
        // under a `site` label.
        let cache_config = match &cfg.resilience {
            Some(r) => CacheConfig::default().with_stale(r.stale),
            None => CacheConfig::default(),
        };
        let monitors: Vec<TriggerMonitor> = SITES
            .iter()
            .map(|spec| {
                let fleet = Arc::new(CacheFleet::new(1, cache_config.clone()));
                let mut m = TriggerMonitor::new(
                    Renderer::new(Arc::clone(&db)),
                    fleet,
                    Arc::clone(&registry),
                    cfg.policy,
                );
                if cfg.fragment_mode {
                    m = m.with_fragments(Arc::new(nagano_cache::FragmentStore::new()));
                }
                m.prewarm();
                let labels = [("site", spec.name)];
                m.stats().bind(&telemetry.registry, &labels);
                m.fleet()
                    .member(0)
                    .stats_handle()
                    .bind(&telemetry.registry, &labels);
                m
            })
            .collect();

        // Per-site request counters (the simulated httpd front end).
        let httpd_metrics: Vec<HttpdMetrics> = SITES
            .iter()
            .map(|spec| {
                let m = HttpdMetrics::new();
                m.bind(&telemetry.registry, &[("site", spec.name)]);
                m
            })
            .collect();

        let requests_total = telemetry
            .registry
            .counter("nagano_cluster_requests_total", &[]);
        let failed_total = telemetry
            .registry
            .counter("nagano_cluster_failed_requests_total", &[]);
        let applied_total = telemetry
            .registry
            .counter("nagano_cluster_updates_applied_total", &[]);
        let freshness_hist =
            telemetry
                .registry
                .histogram("nagano_cluster_freshness_seconds", &[], 1e-3, 600.0);
        // Wide range: a cold page's first fresh serve can trail the
        // commit by hours of simulated time.
        let update_to_serve_hist = telemetry.registry.histogram(
            "nagano_cluster_update_to_serve_seconds",
            &[],
            1e-3,
            2_000_000.0,
        );
        let retries_total = telemetry
            .registry
            .counter("nagano_cluster_retries_total", &[]);
        let dropped_total = telemetry
            .registry
            .counter("nagano_cluster_replication_dropped_total", &[]);
        let catch_up_total = telemetry
            .registry
            .counter("nagano_cluster_catch_up_txns_total", &[]);
        let lag_gauges: Vec<_> = SITES
            .iter()
            .map(|spec| {
                telemetry.registry.gauge(
                    "nagano_cluster_replication_lag_txns",
                    &[("site", spec.name)],
                )
            })
            .collect();
        let staleness_hists: Vec<_> = SITES
            .iter()
            .map(|spec| {
                telemetry.registry.histogram(
                    "nagano_cluster_staleness_seconds",
                    &[("site", spec.name)],
                    1e-3,
                    100_000.0,
                )
            })
            .collect();

        // The Figure-5 replication endpoints, in site order, driven in
        // pull mode so that the simulated links decide exactly which
        // transactions arrive (and when): master feeds Schaumburg and
        // Tokyo; Columbus and Bethesda chain off Schaumburg.
        let replicas: Vec<Replica> = {
            let schaumburg = Replica::attach_pull(SITES[0].name, Arc::clone(&db));
            let columbus = Replica::attach_downstream_pull(SITES[1].name, &schaumburg);
            let bethesda = Replica::attach_downstream_pull(SITES[2].name, &schaumburg);
            let tokyo = Replica::attach_pull(SITES[3].name, Arc::clone(&db));
            vec![schaumburg, columbus, bethesda, tokyo]
        };

        // Data-plane fault state. The fault RNG (forked below, after the
        // workload streams) is drawn only while a fault is active, so
        // fault-free runs are unchanged by its existence.
        let mut edge_fault: [Option<LinkFault>; 5] = [None; 5];
        let mut monitor_up = [true; 4];
        let mut catchup_pending = [false; 4];
        let mut catchup_attempts = [0u32; 4];
        let mut gave_up = [false; 4];
        let mut failed_over = false;
        // Master commit time per txn id (index id-1), for staleness and
        // freshness accounting on every delivery path.
        let mut commit_times: Vec<SimTime> = Vec::new();
        let mut watches: Vec<ConvergenceRecord> = Vec::new();

        // Serving-plane fault state. Dormant (and cost-free) unless a
        // resilience config and a serving fault plan are present.
        let resilience = cfg.resilience.as_ref();
        let mut slowdown: [f64; 4] = [1.0; 4];
        let mut backend_down: [bool; 4] = [false; 4];
        let mut breakers: Vec<CircuitBreaker> = {
            let bc = resilience.map(|r| r.breaker).unwrap_or_default();
            (0..SITES.len()).map(|_| CircuitBreaker::new(bc)).collect()
        };
        // Per-site in-flight regenerations: url → when the render lands.
        // Requests arriving before `done_at` coalesce onto the flight
        // instead of rendering again (the DES view of the per-shard
        // single-flight maps in `nagano-cache`).
        let mut inflight: Vec<FxHashMap<String, SimTime>> =
            (0..SITES.len()).map(|_| FxHashMap::default()).collect();
        // Regenerations per (site, url, stale-epoch): the stampede
        // measurement — each site owns its cache, so each may take
        // exactly one regeneration per stale epoch of a key.
        let mut stale_regen_pairs: FxHashMap<(usize, String, u64), u64> = FxHashMap::default();

        let mut cluster = ClusterState::new();
        let msirp = Msirp::nagano();

        let horizon_days = cfg.end_day as u64;
        let mut report = ClusterReport {
            scale: cfg.scale,
            total_requests: 0,
            failed_requests: 0,
            per_minute: TimeSeries::new(
                SimDuration::from_mins(1),
                SimDuration::from_days(horizon_days),
            ),
            per_site_minute: (0..4)
                .map(|_| {
                    TimeSeries::new(
                        SimDuration::from_mins(1),
                        SimDuration::from_days(horizon_days),
                    )
                })
                .collect(),
            by_region: FxHashMap::default(),
            bytes_per_day: vec![0.0; cfg.end_day as usize],
            response_by_day_region: FxHashMap::default(),
            modem_responses: Histogram::for_latency(),
            service_near_updates: Welford::new(),
            service_away_from_updates: Welford::new(),
            cache: StatsSnapshot::default(),
            regen_per_day: vec![0; cfg.end_day as usize],
            regen_cpu_ms: 0,
            regen_saved_ms: 0,
            weighted_staleness_sum_secs: 0.0,
            weighted_staleness_samples: 0,
            freshness: Welford::new(),
            freshness_hist: Histogram::new(1e-3, 600.0),
            freshness_max: 0.0,
            update_to_serve: Histogram::new(1e-3, 2_000_000.0),
            slo: Vec::new(),
            updates_applied: 0,
            replication_dropped: 0,
            replication_duplicates: 0,
            catch_up_applied: 0,
            retries: 0,
            recoveries: 0,
            staleness_hist: Histogram::new(1e-3, 100_000.0),
            staleness_max: 0.0,
            convergence: Vec::new(),
            demand_fills: 0,
            stale_regens: 0,
            stale_regen_keys: 0,
            breaker_trips: 0,
            render_retries: 0,
            serve_latency: Histogram::for_latency(),
            site_watermarks: [0; 4],
            monitor_watermarks: [0; 4],
            master_txns: 0,
            stale_pages: None,
            telemetry: Arc::clone(&telemetry),
        };

        // Seed the event queue: master updates + failure plan.
        let mut queue: EventQueue<SimEvent> = EventQueue::new();
        for (i, u) in schedule.updates().iter().enumerate() {
            if u.day >= cfg.start_day && u.day <= cfg.end_day {
                queue.schedule(u.at, SimEvent::MasterUpdate(i));
            }
        }
        for (i, f) in cfg.failure_plan.iter().enumerate() {
            queue.schedule(f.at, SimEvent::Failure(i));
        }
        for (i, f) in cfg.fault_plan.iter().enumerate() {
            queue.schedule(f.at, SimEvent::DataFault(i));
        }
        for (i, f) in cfg.serving_fault_plan.iter().enumerate() {
            queue.schedule(f.at, SimEvent::ServingFault(i));
        }
        // SLO rules are authored in code; a malformed line is a bug, not
        // a runtime condition.
        let mut slo_engine = SloEngine::new(
            cfg.slo_rules
                .iter()
                .map(|line| SloRule::parse(line).expect("invalid ClusterConfig SLO rule"))
                .collect(),
        );
        if cfg.export_dir.is_some() || !slo_engine.is_empty() {
            let start_hour = (cfg.start_day as u64 - 1) * 24;
            let end_hour = cfg.end_day as u64 * 24;
            for hour in (start_hour + 1)..=end_hour {
                queue.schedule(SimTime::from_hours(hour), SimEvent::TelemetryFlush);
            }
        }

        // Update-lineage trees in flight, by transaction.
        let mut pending_traces: FxHashMap<TxnId, PendingTrace> = FxHashMap::default();
        // Per-site: pages an update refreshed (regenerated or invalidated)
        // whose first subsequent fresh serve has not been observed yet →
        // the owning transaction. Newer writes overwrite older claims.
        let mut fresh_waiting: Vec<FxHashMap<PageKey, TxnId>> =
            (0..SITES.len()).map(|_| FxHashMap::default()).collect();
        let hybrid_policy = matches!(cfg.policy, ConsistencyPolicy::Hybrid(_));
        // Per-hour registry snapshots, written out after the run.
        let mut hourly_snapshots: Vec<String> = Vec::new();

        let mut last_apply_minute: [i64; 4] = [i64::MIN; 4];
        let start_min = (cfg.start_day as u64 - 1) * 1440;
        let end_min = cfg.end_day as u64 * 1440;
        let mut req_rng = rng.fork(2);
        let mut apply_rng = rng.fork(3);
        // Forked last so the workload streams above match fault-free runs
        // of earlier revisions draw-for-draw.
        let mut fault_rng = rng.fork(4);
        // Serving-plane backoff jitter. Forked after the data-plane fault
        // stream for the same reason, and drawn only on failed-render
        // retry paths, so runs without serving faults never touch it.
        let mut resilience_rng = rng.fork(5);

        // A short settle tail after the last simulated minute drains
        // replication still in flight at the horizon (commits in the
        // final minutes whose deliveries land just past it), so that a
        // run whose faults have all healed always ends converged.
        const SETTLE_MINUTES: u64 = 10;
        for minute in start_min..end_min + SETTLE_MINUTES {
            let minute_end = SimTime::from_mins(minute + 1);
            // Advance the cache clocks: stale-tombstone ages are measured
            // on sim time, not wall time. No-op without a stale policy.
            if resilience.is_some() {
                let secs = SimTime::from_mins(minute).as_secs_f64();
                for m in &monitors {
                    m.fleet().set_now_secs(secs);
                }
            }
            // Drain events due in this minute first.
            while let Some((at, ev)) = queue.pop_before(minute_end) {
                match ev {
                    SimEvent::MasterUpdate(i) => {
                        let update = schedule.updates()[i];
                        let txn = UpdateSchedule::apply(&update, &db, &mut apply_rng);
                        debug_assert_eq!(txn.id.0 as usize, commit_times.len() + 1);
                        commit_times.push(at);
                        let mut trace = Trace::new(TraceKind::Propagation, txn.id.0);
                        let root =
                            trace.add_span("nagano_cluster_txn_receipt", txn.label.clone(), at, at);
                        pending_traces.insert(
                            txn.id,
                            PendingTrace {
                                trace,
                                root,
                                applied: 0,
                                served: [false; 4],
                                apply_span: [None; 4],
                            },
                        );
                        // Ship over the two master-fed edges; the chained
                        // edges fan out when Schaumburg applies.
                        for edge in [0, 1] {
                            ship(
                                &mut queue,
                                &mut fault_rng,
                                &edge_fault,
                                &mut report.replication_dropped,
                                &dropped_total,
                                edge,
                                at,
                                &txn,
                            );
                        }
                    }
                    SimEvent::EdgeDeliver(edge, txn) => {
                        let s = REPLICATION_EDGES[edge].to;
                        match replicas[s].deliver(&txn) {
                            DeliverOutcome::Applied => {
                                report.updates_applied += 1;
                                applied_total.incr();
                                let commit_at = commit_times[txn.id.0 as usize - 1];
                                // While the monitor is down the replica still
                                // advances its log; DUP runs at recovery.
                                if monitor_up[s] {
                                    let shed_before = if hybrid_policy {
                                        monitors[s].stats().snapshot().deferred_shed
                                    } else {
                                        0
                                    };
                                    let outcome = monitors[s].process_txn_at(&txn, at);
                                    last_apply_minute[s] = at.minute_index() as i64;
                                    let day_idx = at.day().min(cfg.end_day) as usize - 1;
                                    report.regen_per_day[day_idx] +=
                                        outcome.regenerated.len() as u64;
                                    // Visible-latency model: replication delay
                                    // (already elapsed at `at`) plus
                                    // regeneration spread over the SMP's
                                    // render workers.
                                    let regen_cost_ms: f64 = outcome
                                        .regenerated
                                        .iter()
                                        .map(|&k| {
                                            monitors[s]
                                                .fleet()
                                                .member(0)
                                                .peek(&k.to_url())
                                                .map(|_| 1.0)
                                                .unwrap_or(0.0)
                                        })
                                        .sum::<f64>()
                                        * 150.0
                                        / 8.0;
                                    let applied_at =
                                        at + SimDuration::from_secs_f64(regen_cost_ms / 1_000.0);
                                    let visible = applied_at - commit_at;
                                    report.freshness.push(visible.as_secs_f64());
                                    freshness_hist.record(visible.as_secs_f64());
                                    report.freshness_max =
                                        report.freshness_max.max(visible.as_secs_f64());
                                    if let Some(p) = pending_traces.get_mut(&txn.id) {
                                        let site = SITES[s].name;
                                        let dist = p.trace.add_child(
                                            p.root,
                                            "nagano_cluster_distribute",
                                            format!("site={site}"),
                                            commit_at,
                                            at,
                                        );
                                        let odg = p.trace.add_child(
                                            dist,
                                            "nagano_odg_traversal",
                                            format!("site={site} visited={}", outcome.visited),
                                            at,
                                            at,
                                        );
                                        let apply = p.trace.add_child(
                                            odg,
                                            "nagano_cache_apply",
                                            format!(
                                                "site={site} regenerated={} invalidated={} tolerated={}",
                                                outcome.regenerated.len(),
                                                outcome.invalidated.len(),
                                                outcome.tolerated.len()
                                            ),
                                            at,
                                            applied_at,
                                        );
                                        if hybrid_policy {
                                            p.trace.add_child(
                                                apply,
                                                "nagano_trigger_rank",
                                                format!(
                                                    "site={site} hot={} cold={}",
                                                    outcome.regenerated.len()
                                                        + outcome.deferred.len(),
                                                    outcome.invalidated.len()
                                                ),
                                                at,
                                                at,
                                            );
                                            if !outcome.deferred.is_empty() {
                                                p.trace.add_child(
                                                    apply,
                                                    "nagano_trigger_defer",
                                                    format!(
                                                        "site={site} pages={}",
                                                        outcome.deferred.len()
                                                    ),
                                                    at,
                                                    at,
                                                );
                                            }
                                            let shed = monitors[s]
                                                .stats()
                                                .snapshot()
                                                .deferred_shed
                                                .saturating_sub(shed_before);
                                            if shed > 0 {
                                                p.trace.add_child(
                                                    apply,
                                                    "nagano_trigger_shed",
                                                    format!("site={site} pages={shed}"),
                                                    at,
                                                    at,
                                                );
                                            }
                                        }
                                        p.apply_span[s] = Some(apply);
                                        p.applied += 1;
                                        for &k in outcome
                                            .regenerated
                                            .iter()
                                            .chain(outcome.invalidated.iter())
                                        {
                                            fresh_waiting[s].insert(k, txn.id);
                                        }
                                    }
                                }
                                // Schaumburg re-publishes to its chained
                                // sites.
                                if s == 0 {
                                    for chained in [2, 3] {
                                        ship(
                                            &mut queue,
                                            &mut fault_rng,
                                            &edge_fault,
                                            &mut report.replication_dropped,
                                            &dropped_total,
                                            chained,
                                            at,
                                            &txn,
                                        );
                                    }
                                }
                            }
                            DeliverOutcome::Duplicate => {
                                report.replication_duplicates += 1;
                            }
                            DeliverOutcome::Gap { .. } => {
                                // A message ahead of the watermark arrived:
                                // something before it was lost or reordered.
                                // Pull the gap shortly (one pull covers any
                                // number of gap signals).
                                if !catchup_pending[s] && !gave_up[s] {
                                    catchup_pending[s] = true;
                                    queue.schedule(
                                        at + SimDuration::from_secs(1),
                                        SimEvent::CatchUp(s),
                                    );
                                }
                            }
                        }
                    }
                    SimEvent::CatchUp(s) => {
                        catchup_pending[s] = false;
                        let mut edge = if s == 0 && failed_over {
                            DR_EDGE
                        } else {
                            PRIMARY_FEED[s]
                        };
                        // A partitioned primary Schaumburg feed triggers the
                        // paper's disaster-recovery path: re-feed from
                        // Tokyo's re-published log.
                        if s == 0
                            && !failed_over
                            && matches!(edge_fault[edge], Some(LinkFault::Partition))
                            && !matches!(edge_fault[DR_EDGE], Some(LinkFault::Partition))
                        {
                            replicas[0].fail_over(&replicas[3]);
                            failed_over = true;
                            edge = DR_EDGE;
                        }
                        let fault = edge_fault[edge];
                        let attempt_fails = match fault {
                            Some(LinkFault::Partition) => true,
                            Some(LinkFault::Lossy { drop_permille }) => {
                                fault_rng.chance(drop_permille as f64 / 1000.0)
                            }
                            _ => false,
                        };
                        if attempt_fails {
                            report.retries += 1;
                            retries_total.incr();
                            catchup_attempts[s] += 1;
                            if catchup_attempts[s] <= MAX_CATCHUP_RETRIES {
                                let backoff =
                                    CATCHUP_BASE_BACKOFF_SECS << (catchup_attempts[s] - 1).min(6);
                                catchup_pending[s] = true;
                                queue.schedule(
                                    at + SimDuration::from_secs(backoff),
                                    SimEvent::CatchUp(s),
                                );
                            } else {
                                // Quiesce until the link heals; the heal
                                // entry reschedules the pull.
                                gave_up[s] = true;
                            }
                        } else {
                            catchup_attempts[s] = 0;
                            gave_up[s] = false;
                            // The pull pays the edge's base transfer delay
                            // (plus any injected extra latency) — catching
                            // up is replication, not teleportation.
                            let mut pull_secs = REPLICATION_EDGES[edge].base_delay_secs;
                            if let Some(LinkFault::Delay { extra_secs }) = fault {
                                pull_secs += extra_secs;
                            }
                            let applied_at = at + SimDuration::from_secs(pull_secs);
                            let missed = replicas[s].catch_up();
                            if !missed.is_empty() {
                                for txn in &missed {
                                    report.updates_applied += 1;
                                    applied_total.incr();
                                    report.catch_up_applied += 1;
                                    catch_up_total.incr();
                                    let staleness = (applied_at
                                        - commit_times[txn.id.0 as usize - 1])
                                        .as_secs_f64();
                                    report.staleness_hist.record(staleness);
                                    staleness_hists[s].record(staleness);
                                    report.staleness_max = report.staleness_max.max(staleness);
                                }
                                if monitor_up[s] {
                                    // One DUP propagation over the union of
                                    // the pulled transactions.
                                    let outcome = monitors[s].process_batch_at(&missed, applied_at);
                                    last_apply_minute[s] = applied_at.minute_index() as i64;
                                    let day_idx = applied_at.day().min(cfg.end_day) as usize - 1;
                                    report.regen_per_day[day_idx] +=
                                        outcome.regenerated.len() as u64;
                                    // Lineage under faults: these txns
                                    // reached the site by pull, and the
                                    // batch DUP pass is attributed to the
                                    // newest of them (its write wins).
                                    let site = SITES[s].name;
                                    for txn in &missed {
                                        if let Some(p) = pending_traces.get_mut(&txn.id) {
                                            let commit_at = commit_times[txn.id.0 as usize - 1];
                                            let dist = p.trace.add_child(
                                                p.root,
                                                "nagano_cluster_distribute",
                                                format!("site={site} via=catch-up"),
                                                commit_at,
                                                applied_at,
                                            );
                                            let apply = p.trace.add_child(
                                                dist,
                                                "nagano_cache_apply",
                                                format!("site={site} via=catch-up"),
                                                applied_at,
                                                applied_at,
                                            );
                                            p.apply_span[s] = Some(apply);
                                            p.applied += 1;
                                        }
                                    }
                                    if let Some(last) = missed.last() {
                                        if pending_traces.contains_key(&last.id) {
                                            for &k in outcome
                                                .regenerated
                                                .iter()
                                                .chain(outcome.invalidated.iter())
                                            {
                                                fresh_waiting[s].insert(k, last.id);
                                            }
                                        }
                                    }
                                }
                                if s == 0 {
                                    for txn in &missed {
                                        for chained in [2, 3] {
                                            ship(
                                                &mut queue,
                                                &mut fault_rng,
                                                &edge_fault,
                                                &mut report.replication_dropped,
                                                &dropped_total,
                                                chained,
                                                applied_at,
                                                txn,
                                            );
                                        }
                                    }
                                }
                            }
                        }
                    }
                    SimEvent::DataFault(i) => {
                        let entry = cfg.fault_plan[i];
                        match entry.kind {
                            DataFaultKind::Link { edge, fault } => {
                                if !entry.up {
                                    edge_fault[edge] = Some(fault);
                                } else {
                                    edge_fault[edge] = None;
                                    if edge == 0 && failed_over {
                                        replicas[0].restore_primary();
                                        failed_over = false;
                                    }
                                    let s = REPLICATION_EDGES[edge].to;
                                    gave_up[s] = false;
                                    catchup_attempts[s] = 0;
                                    if !catchup_pending[s] {
                                        catchup_pending[s] = true;
                                        queue.schedule(
                                            at + SimDuration::from_secs(1),
                                            SimEvent::CatchUp(s),
                                        );
                                    }
                                    watches.push(ConvergenceRecord {
                                        label: format!(
                                            "{} {:?}",
                                            REPLICATION_EDGES[edge].name, fault
                                        ),
                                        site: s,
                                        healed_at: at,
                                        converged_at: None,
                                    });
                                }
                            }
                            DataFaultKind::MonitorCrash { site } => {
                                if !entry.up {
                                    monitor_up[site] = false;
                                } else {
                                    monitor_up[site] = true;
                                    // Restart: resume from the monitor's
                                    // processed watermark — replay the local
                                    // log tail through DUP so no stale page
                                    // survives recovery.
                                    let missed = replicas[site]
                                        .local_log()
                                        .since(TxnId(monitors[site].watermark()));
                                    let outcome = monitors[site].recover_at(&missed, at);
                                    report.recoveries += 1;
                                    last_apply_minute[site] = at.minute_index() as i64;
                                    let day_idx = at.day().min(cfg.end_day) as usize - 1;
                                    report.regen_per_day[day_idx] +=
                                        outcome.regenerated.len() as u64;
                                    // Lineage: the replica already held the
                                    // log tail (distribution happened while
                                    // the monitor was down); recovery is the
                                    // DUP replay that makes caches catch up.
                                    let site_name = SITES[site].name;
                                    for txn in &missed {
                                        if let Some(p) = pending_traces.get_mut(&txn.id) {
                                            let odg = p.trace.add_child(
                                                p.root,
                                                "nagano_odg_traversal",
                                                format!("site={site_name} via=recovery"),
                                                at,
                                                at,
                                            );
                                            let apply = p.trace.add_child(
                                                odg,
                                                "nagano_cache_apply",
                                                format!("site={site_name} via=recovery"),
                                                at,
                                                at,
                                            );
                                            p.apply_span[site] = Some(apply);
                                            p.applied += 1;
                                        }
                                    }
                                    if let Some(last) = missed.last() {
                                        if pending_traces.contains_key(&last.id) {
                                            for &k in outcome
                                                .regenerated
                                                .iter()
                                                .chain(outcome.invalidated.iter())
                                            {
                                                fresh_waiting[site].insert(k, last.id);
                                            }
                                        }
                                    }
                                    for txn in &missed {
                                        let staleness = (at - commit_times[txn.id.0 as usize - 1])
                                            .as_secs_f64();
                                        report.staleness_hist.record(staleness);
                                        staleness_hists[site].record(staleness);
                                        report.staleness_max = report.staleness_max.max(staleness);
                                    }
                                    watches.push(ConvergenceRecord {
                                        label: format!("monitor-crash {}", SITES[site].name),
                                        site,
                                        healed_at: at,
                                        converged_at: None,
                                    });
                                }
                            }
                        }
                    }
                    SimEvent::Failure(i) => {
                        let entry = cfg.failure_plan[i];
                        cluster.apply(entry.kind, entry.up);
                    }
                    SimEvent::ServingFault(i) => {
                        let entry = cfg.serving_fault_plan[i];
                        match entry.kind {
                            ServingFaultKind::RenderSlowdown { site, factor } => {
                                slowdown[site] = if entry.up { 1.0 } else { factor };
                            }
                            ServingFaultKind::BackendOutage { site } => {
                                backend_down[site] = !entry.up;
                            }
                            ServingFaultKind::CacheShardCrash { site, node } => {
                                // Cold restart: live entries, tombstones,
                                // and coalescing state all vanish — the
                                // stampede window single-flight flattens.
                                let fleet = monitors[site].fleet();
                                fleet.member(node.min(fleet.len() - 1)).clear();
                                inflight[site].clear();
                            }
                        }
                    }
                    SimEvent::TelemetryFlush => {
                        let hour = at.minute_index() / 60;
                        slo_engine.observe_hour(hour, &telemetry.registry);
                        if cfg.export_dir.is_some() {
                            hourly_snapshots.push(format!(
                                "{{\"hour\":{hour},\"snapshot\":{}}}",
                                json_snapshot(&telemetry.registry)
                            ));
                        }
                    }
                }
            }

            // Hotness heartbeat: fold each fleet's window-hit counters into
            // its EWMA, then give the Hybrid deferred queue a budgeted
            // drain slice (no-op under other policies). Runs during the
            // settle tail too so deferred work cannot be stranded.
            for s in 0..SITES.len() {
                monitors[s].fleet().fold_hotness(minute);
                if resilience.is_some() {
                    // Expire over-age tombstones so the stale maps stay
                    // bounded by the policy, not the run length.
                    monitors[s].fleet().member(0).prune_stale();
                }
                if monitor_up[s] {
                    let drained = monitors[s].drain_deferred(minute_end);
                    if !drained.is_empty() {
                        let day_idx = minute_end.day().min(cfg.end_day) as usize - 1;
                        report.regen_per_day[day_idx] += drained.len() as u64;
                        last_apply_minute[s] = minute_end.minute_index() as i64;
                    }
                }
            }

            // Data-plane heartbeat: refresh lag gauges, schedule catch-up
            // pulls across faulted feeds (and across the DR re-feed while
            // failed over — it is pull-only, nothing streams on it), and
            // close convergence watches.
            for s in 0..SITES.len() {
                lag_gauges[s].set(replicas[s].lag());
                let feed_edge = if s == 0 && failed_over {
                    DR_EDGE
                } else {
                    PRIMARY_FEED[s]
                };
                let behind = replicas[s].feed_len() > replicas[s].applied().0;
                let pull_needed = (s == 0 && failed_over) || edge_fault[feed_edge].is_some();
                if behind && pull_needed && !catchup_pending[s] && !gave_up[s] {
                    catchup_pending[s] = true;
                    queue.schedule(minute_end, SimEvent::CatchUp(s));
                }
            }
            if !watches.is_empty() {
                let master_len = db.log().len() as u64;
                for w in watches.iter_mut().filter(|w| w.converged_at.is_none()) {
                    let applied = replicas[w.site].applied().0;
                    if monitor_up[w.site]
                        && applied == master_len
                        && monitors[w.site].watermark() == applied
                    {
                        w.converged_at = Some(minute_end);
                    }
                }
            }
            if minute >= end_min {
                continue; // settle tail: no client traffic past the horizon
            }

            // Generate this minute's client requests.
            let t_mid = SimTime::from_mins(minute) + SimDuration::from_secs(30);
            let count = model.sample_minute_count(t_mid, &mut req_rng);
            let day = t_mid.day();
            let day_idx = day.min(cfg.end_day) as usize - 1;
            for _ in 0..count {
                report.total_requests += 1;
                requests_total.incr();
                // Deterministic 1-in-N sampling keeps the serving-trace
                // ring representative without recording every request.
                let sampled = report.total_requests % SERVING_TRACE_SAMPLE == 1;
                let mut trace =
                    sampled.then(|| Trace::new(TraceKind::Serving, report.total_requests));
                let sample = model.sample_request(t_mid, &mut req_rng);
                *report.by_region.entry(sample.region).or_insert(0) += 1;
                let addr = cluster.next_dns_address();
                let adverts = cluster.adverts(&msirp, addr);
                let RouteDecision::Site(site) = msirp.route(sample.region, addr, &adverts) else {
                    report.failed_requests += 1;
                    failed_total.incr();
                    if let Some(mut trace) = trace {
                        trace.span_with("nagano_cluster_route", "no-site", t_mid, t_mid);
                        telemetry.serving.push(trace);
                    }
                    continue;
                };
                let route_idx = trace.as_mut().map(|tr| {
                    tr.add_span(
                        "nagano_cluster_route",
                        format!(
                            "region={} site={}",
                            sample.region.label(),
                            SITES[site.0].name
                        ),
                        t_mid,
                        t_mid,
                    )
                });
                // Dispatcher picks a node (advisors skip dead ones); with
                // a single logical cache per site the node only matters
                // for load accounting.
                if cluster.site_mut(site).pick_node().is_none() {
                    report.failed_requests += 1;
                    failed_total.incr();
                    httpd_metrics[site.0].observe(503, 0);
                    if let Some(mut trace) = trace {
                        let route = route_idx.expect("sampled trace has a route span");
                        trace.add_child(route, "nagano_cluster_dispatch", "no-node", t_mid, t_mid);
                        telemetry.serving.push(trace);
                    }
                    continue;
                }
                let url = sample.page.to_url();
                let monitor = &monitors[site.0];
                monitor.observe_request(sample.page, t_mid);
                let served: Option<(u64, f64, bool)> = if let Some(res) = resilience {
                    let member = monitor.fleet().member(0);
                    let now_secs = t_mid.as_secs_f64();
                    let budget = res.request_budget_secs;
                    let flight = inflight[site.0].get(&url).copied().filter(|&d| d > t_mid);
                    match monitor.fleet().get_from(0, &url) {
                        Some(page) => {
                            if let Some(done_at) = flight {
                                // The body is cached but its regeneration
                                // is still in flight from an earlier
                                // request: this follower coalesces onto
                                // the flight and waits out the remainder
                                // instead of rendering again.
                                member.stats_handle().coalesce();
                                let wait_secs = (done_at - t_mid).as_secs_f64();
                                if wait_secs <= budget {
                                    Some((page.body.len() as u64, 0.5 + wait_secs * 1_000.0, false))
                                } else if let Some(stale) = member.serve_stale(&url) {
                                    Some((stale.body.len() as u64, 0.5, false))
                                } else {
                                    Some((page.body.len() as u64, 0.5 + wait_secs * 1_000.0, false))
                                }
                            } else {
                                Some((page.body.len() as u64, 0.5, true))
                            }
                        }
                        None if backend_down[site.0] => {
                            inflight[site.0].remove(&url);
                            let breaker = &mut breakers[site.0];
                            let mut latency_ms = 0.5;
                            if breaker.allow(now_secs) {
                                // One failed render attempt; the bounded
                                // seeded-backoff retry loop only runs when
                                // no stale copy can answer instead.
                                breaker.record_failure(now_secs);
                                latency_ms += 5.0;
                                if member.peek_stale(&url).is_none() {
                                    let mut backoff = RetryBackoff::new(
                                        res.retry_base_secs,
                                        res.retry_max_secs,
                                        res.retry_max_attempts,
                                    );
                                    while let Some(delay) = backoff.next_delay(&mut resilience_rng)
                                    {
                                        breaker.record_failure(now_secs);
                                        report.render_retries += 1;
                                        latency_ms += 5.0 + delay * 1_000.0;
                                    }
                                }
                            }
                            member
                                .serve_stale(&url)
                                .map(|stale| (stale.body.len() as u64, latency_ms, false))
                        }
                        None => {
                            inflight[site.0].remove(&url);
                            // This request leads the regeneration; an
                            // active slowdown stretches the modelled cost.
                            let stale_before = member.peek_stale(&url);
                            let out = monitor.demand_fill(0, sample.page);
                            report.demand_fills += 1;
                            let breaker = &mut breakers[site.0];
                            breaker.allow(now_secs); // half-open probe when recovering
                            breaker.record_success();
                            if let Some(s) = &stale_before {
                                report.stale_regens += 1;
                                *stale_regen_pairs
                                    .entry((site.0, url.clone(), s.epoch))
                                    .or_insert(0) += 1;
                            }
                            let cost_ms = out.cost_ms * slowdown[site.0];
                            let done_at = t_mid + SimDuration::from_secs_f64(cost_ms / 1_000.0);
                            inflight[site.0].insert(url.clone(), done_at);
                            if cost_ms / 1_000.0 <= budget {
                                Some((out.body.len() as u64, cost_ms, false))
                            } else if let Some(stale) = stale_before {
                                // Deadline exceeded: answer from the
                                // tombstone now — the fresh body already
                                // landed for the next request.
                                member.stats_handle().stale_serve();
                                Some((stale.body.len() as u64, 0.5, false))
                            } else {
                                Some((out.body.len() as u64, cost_ms, false))
                            }
                        }
                    }
                } else {
                    // The pre-resilience serving path, verbatim.
                    Some(match monitor.fleet().get_from(0, &url) {
                        Some(page) => (page.body.len() as u64, 0.5, true),
                        None => {
                            let out = monitor.demand_fill(0, sample.page);
                            report.demand_fills += 1;
                            (out.body.len() as u64, out.cost_ms, false)
                        }
                    })
                };
                let Some((bytes, mut server_ms, cache_hit)) = served else {
                    // Backend down, breaker open or retries exhausted, and
                    // no stale copy within its age bound: the 503 path.
                    report.failed_requests += 1;
                    failed_total.incr();
                    httpd_metrics[site.0].observe(503, 0);
                    if let Some(mut trace) = trace {
                        let route = route_idx.expect("sampled trace has a route span");
                        let lookup =
                            trace.add_child(route, "nagano_cache_lookup", "miss", t_mid, t_mid);
                        trace.add_child(
                            lookup,
                            "nagano_pagegen_render",
                            "backend-down",
                            t_mid,
                            t_mid,
                        );
                        telemetry.serving.push(trace);
                    }
                    continue;
                };
                // §2: in the 1996 design the serving processors also ran
                // the updates, so service slows in the minutes around an
                // apply (regeneration competes for the same CPUs).
                let near_update = (minute as i64)
                    .saturating_sub(last_apply_minute[site.0])
                    .unsigned_abs()
                    <= 2;
                if cfg.updates_on_serving_nodes && near_update {
                    server_ms = server_ms * 8.0 + 150.0;
                }
                if near_update {
                    report.service_near_updates.push(server_ms);
                } else {
                    report.service_away_from_updates.push(server_ms);
                }
                report.serve_latency.record(server_ms / 1_000.0);
                report.per_minute.incr(t_mid);
                report.per_site_minute[site.0].incr(t_mid);
                report.bytes_per_day[day_idx] += bytes as f64;
                httpd_metrics[site.0].observe(200, bytes);

                // Update-lineage leaf: the first request that serves one
                // of an update's refreshed pages closes that site's branch
                // of the propagation tree, and the commit → serve gap is
                // the end-to-end freshness sample. Requests are generated
                // at the minute midpoint, so a request can precede an
                // apply recorded later in the same minute — leave the
                // entry for the next request in that case.
                if let Some(&txn_id) = fresh_waiting[site.0].get(&sample.page) {
                    match pending_traces.get_mut(&txn_id) {
                        Some(p) if !p.served[site.0] => {
                            let apply = p.apply_span[site.0].unwrap_or(p.root);
                            let apply_end = p.trace.spans[apply].end;
                            if t_mid >= apply_end {
                                fresh_waiting[site.0].remove(&sample.page);
                                p.served[site.0] = true;
                                let commit_at = commit_times[txn_id.0 as usize - 1];
                                p.trace.add_child(
                                    apply,
                                    "nagano_cache_first_fresh_hit",
                                    format!("site={} url={url}", SITES[site.0].name),
                                    apply_end,
                                    t_mid,
                                );
                                update_to_serve_hist.record((t_mid - commit_at).as_secs_f64());
                                if p.applied == SITES.len() && p.served.iter().all(|&done| done) {
                                    let p = pending_traces.remove(&txn_id).expect("pending trace");
                                    telemetry.propagation.push(p.trace);
                                }
                            }
                        }
                        _ => {
                            // The owning trace already served this site
                            // through another page (or completed): the
                            // claim is stale.
                            fresh_waiting[site.0].remove(&sample.page);
                        }
                    }
                }

                if let Some(mut trace) = trace {
                    let done = t_mid + SimDuration::from_secs_f64(server_ms / 1_000.0);
                    let route = route_idx.expect("sampled trace has a route span");
                    let lookup = trace.add_child(
                        route,
                        "nagano_cache_lookup",
                        if cache_hit { "hit" } else { "miss" },
                        t_mid,
                        t_mid,
                    );
                    trace.add_child(
                        lookup,
                        "nagano_pagegen_render",
                        format!("url={url} bytes={bytes}"),
                        t_mid,
                        done,
                    );
                    telemetry.serving.push(trace);
                }

                // Response-time sampling: the paper's Figure 22 methodology
                // (28.8 kbps modem fetching the current home page).
                if sample.link == LinkClass::Modem28_8 {
                    if let PageKey::Home(_) = sample.page {
                        let mut link = LinkModel::new(LinkClass::Modem28_8);
                        let (c_lo, c_hi, factor) = cfg.us_congestion;
                        let is_us = matches!(sample.region, Region::UsEast | Region::UsWest);
                        if is_us && (c_lo..=c_hi).contains(&day) {
                            link = link.with_congestion(factor);
                        }
                        let server = SimDuration::from_secs_f64(
                            (server_ms + region_latency_ms(sample.region, site)) / 1_000.0,
                        );
                        let est = link.sample(bytes, server, &mut req_rng);
                        report
                            .response_by_day_region
                            .entry((day, sample.region))
                            .or_default()
                            .push(est.response_secs);
                        report.modem_responses.record(est.response_secs);
                    }
                }
            }
        }

        // Updates still awaiting an apply or a serve at the horizon flush
        // as-is, in transaction order, so same-seed runs export identical
        // trace sets.
        let mut unfinished: Vec<(TxnId, PendingTrace)> = pending_traces.into_iter().collect();
        unfinished.sort_by_key(|(id, _)| id.0);
        for (_, p) in unfinished {
            telemetry.propagation.push(p.trace);
        }

        // Aggregate cache stats across sites.
        let mut agg = StatsSnapshot::default();
        for m in &monitors {
            let s = m.fleet().aggregate_stats();
            agg.hits += s.hits;
            agg.misses += s.misses;
            agg.inserts += s.inserts;
            agg.updates += s.updates;
            agg.invalidations += s.invalidations;
            agg.evictions += s.evictions;
            agg.bytes_current += s.bytes_current;
            agg.bytes_peak += s.bytes_peak;
            agg.stale_served += s.stale_served;
            agg.coalesced += s.coalesced;
        }
        report.cache = agg;
        report.stale_regen_keys = stale_regen_pairs.len() as u64;
        report.breaker_trips = breakers.iter().map(CircuitBreaker::trips).sum();
        for m in &monitors {
            let s = m.stats().snapshot();
            report.regen_cpu_ms += s.regen_cpu_ms;
            report.regen_saved_ms += s.regen_saved_ms;
            report.weighted_staleness_sum_secs += s.weighted_staleness_sum_secs;
            report.weighted_staleness_samples += s.weighted_staleness_count;
        }
        report.freshness_hist = freshness_hist.snapshot();
        report.update_to_serve = update_to_serve_hist.snapshot();
        report.slo = slo_engine.finish(&telemetry.registry);
        report.master_txns = db.log().len() as u64;
        for s in 0..SITES.len() {
            report.site_watermarks[s] = replicas[s].applied().0;
            report.monitor_watermarks[s] = monitors[s].watermark();
        }
        report.convergence = watches;

        if cfg.audit_convergence {
            // Prove cache convergence the hard way: re-render every
            // registry page and compare bodies against each site's cache.
            // An absent entry is safe (invalidate policy, eviction, cold);
            // a *mismatching* body is a stale page.
            let renderer = Renderer::new(Arc::clone(&db));
            let mut stale = 0u64;
            for (key, _) in registry.pages() {
                let fresh = renderer.render(*key);
                for m in &monitors {
                    if let Some(cached) = m.fleet().member(0).peek(&key.to_url()) {
                        if cached.body != fresh.body {
                            stale += 1;
                        }
                    }
                }
            }
            report.stale_pages = Some(stale);
        }

        if let Some(dir) = &cfg.export_dir {
            // Export failures (read-only fs, missing parents) must not
            // invalidate a completed multi-minute simulation; the report
            // itself still carries the full telemetry.
            let _ = std::fs::create_dir_all(dir);
            let _ = std::fs::write(
                dir.join("metrics.prom"),
                prometheus_text(&telemetry.registry),
            );
            let _ = std::fs::write(dir.join("metrics.json"), json_snapshot(&telemetry.registry));
            let mut lines = hourly_snapshots.join("\n");
            lines.push('\n');
            let _ = std::fs::write(dir.join("telemetry_hourly.jsonl"), lines);
            let mut traces = String::new();
            for t in telemetry
                .propagation
                .traces()
                .iter()
                .chain(telemetry.serving.traces().iter())
            {
                traces.push_str(&t.to_json());
                traces.push('\n');
            }
            let _ = std::fs::write(dir.join("traces.jsonl"), traces);
            let _ = std::fs::write(dir.join("slo.json"), slo_json(&report.slo));
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TOKYO;

    /// Small, fast configuration: two days at heavy scale-down.
    fn quick_config() -> ClusterConfig {
        ClusterConfig {
            scale: 20_000.0,
            seed: 42,
            games: GamesConfig::small(),
            start_day: 2,
            end_day: 3,
            ..Default::default()
        }
    }

    /// Like [`quick_config`] but over days 10–11, where the small Games
    /// schedule is update-dense (≈10 master txns/day) — fault windows on
    /// day 10 morning are guaranteed to intersect real update traffic.
    fn fault_config() -> ClusterConfig {
        ClusterConfig {
            start_day: 10,
            end_day: 11,
            ..quick_config()
        }
    }

    #[test]
    fn quick_run_serves_everything_with_high_hit_rate() {
        let report = ClusterSim::new(quick_config()).run();
        assert!(report.total_requests > 1_000, "{}", report.total_requests);
        assert_eq!(report.failed_requests, 0);
        assert_eq!(report.availability(), 1.0);
        // Update-in-place: hit rate near 100%.
        assert!(report.hit_rate() > 0.99, "hit rate {}", report.hit_rate());
        assert!(report.updates_applied > 0);
        assert!(report.cache.updates > 0, "pages updated in place");
    }

    #[test]
    fn invalidate_policy_lowers_hit_rate() {
        let mut cfg = quick_config();
        cfg.policy = ConsistencyPolicy::Invalidate;
        let inv = ClusterSim::new(cfg).run();
        let upd = ClusterSim::new(quick_config()).run();
        assert!(
            inv.hit_rate() < upd.hit_rate(),
            "invalidate {} vs update {}",
            inv.hit_rate(),
            upd.hit_rate()
        );
    }

    #[test]
    fn conservative_policy_is_much_worse() {
        let mut cfg = quick_config();
        cfg.policy = ConsistencyPolicy::Conservative96;
        let cons = ClusterSim::new(cfg).run();
        assert!(
            cons.hit_rate() < 0.95,
            "conservative hit rate {}",
            cons.hit_rate()
        );
    }

    #[test]
    fn hybrid_policy_trades_regen_cpu_for_bounded_staleness() {
        let mut cfg = quick_config();
        cfg.policy = ConsistencyPolicy::hybrid(0.5, Some(400));
        let hyb = ClusterSim::new(cfg).run();
        let upd = ClusterSim::new(quick_config()).run();
        let mut inv_cfg = quick_config();
        inv_cfg.policy = ConsistencyPolicy::Invalidate;
        let inv = ClusterSim::new(inv_cfg).run();

        assert_eq!(hyb.failed_requests, 0);
        // Both halves of the split exercised: hot pages updated in place,
        // the cold tail invalidated.
        assert!(hyb.cache.updates > 0, "no in-place updates");
        assert!(hyb.cache.invalidations > 0, "no cold-tail invalidations");
        // Less render CPU than full update-in-place, which saves nothing.
        assert!(
            hyb.regen_cpu_ms < upd.regen_cpu_ms,
            "hybrid {} ms vs update-in-place {} ms",
            hyb.regen_cpu_ms,
            upd.regen_cpu_ms
        );
        assert!(hyb.regen_saved_ms > 0);
        assert_eq!(upd.regen_saved_ms, 0);
        // Update-in-place never leaves a page stale, so no request ever
        // observes staleness; hybrid stays below pure invalidation.
        assert_eq!(upd.weighted_staleness_samples, 0);
        assert!(
            hyb.weighted_staleness_sum_secs < inv.weighted_staleness_sum_secs,
            "hybrid {}s vs invalidate {}s",
            hyb.weighted_staleness_sum_secs,
            inv.weighted_staleness_sum_secs
        );
        // Hit rate sits between the two pure policies.
        assert!(
            hyb.hit_rate() >= inv.hit_rate() && hyb.hit_rate() <= upd.hit_rate(),
            "inv {} <= hyb {} <= upd {}",
            inv.hit_rate(),
            hyb.hit_rate(),
            upd.hit_rate()
        );
    }

    #[test]
    fn hybrid_tight_budget_defers_work_without_dropping_pages() {
        fn metric_sum(prom: &str, name: &str) -> f64 {
            prom.lines()
                .filter(|l| l.starts_with(name))
                .filter_map(|l| l.split_whitespace().last())
                .filter_map(|v| v.parse::<f64>().ok())
                .sum()
        }
        // Update-dense days + a budget far below the per-batch render
        // cost: most hot pages must take the deferred path.
        let mut cfg = fault_config();
        cfg.policy = ConsistencyPolicy::hybrid(1.0, Some(50));
        let report = ClusterSim::new(cfg).run();
        let prom = prometheus_text(&report.telemetry.registry);
        assert!(
            metric_sum(&prom, "nagano_trigger_pages_deferred_total") > 0.0,
            "tight budget never deferred"
        );
        assert!(prom.contains("nagano_trigger_regen_saved_ms_total"));
        assert!(prom.contains("nagano_trigger_weighted_staleness_seconds"));
        // hot_fraction 1.0 has no cold tail: deferred pages keep serving
        // their old bytes instead of missing, so the hit rate stays at
        // update-in-place levels while per-batch CPU stays bounded.
        assert!(report.hit_rate() > 0.99, "hit rate {}", report.hit_rate());
        // Requests that land on a parked page record its staleness age.
        assert!(report.weighted_staleness_samples > 0);
        assert!(report.regen_cpu_ms > 0);
    }

    #[test]
    fn regions_route_to_their_complexes() {
        let report = ClusterSim::new(quick_config()).run();
        let totals = report.per_site_totals();
        // All four complexes serve traffic; Tokyo carries a large share
        // (Japan + Oceania + spillover).
        for (i, t) in totals.iter().enumerate() {
            assert!(*t > 0.0, "site {i} served nothing");
        }
        assert!(totals[TOKYO.0] > 0.15 * totals.iter().sum::<f64>());
    }

    #[test]
    fn complex_failure_degrades_elegantly() {
        let mut cfg = quick_config();
        cfg.failure_plan = vec![
            FailurePlanEntry {
                at: SimTime::at(2, 12, 0),
                kind: FailureKind::Complex { site: TOKYO.0 },
                up: false,
            },
            FailurePlanEntry {
                at: SimTime::at(2, 18, 0),
                kind: FailureKind::Complex { site: TOKYO.0 },
                up: true,
            },
        ];
        let report = ClusterSim::new(cfg).run();
        // Nothing fails: traffic reroutes to surviving complexes.
        assert_eq!(report.failed_requests, 0);
        assert_eq!(report.availability(), 1.0);
        // Tokyo's series is dark during the outage window.
        let tokyo = &report.per_site_minute[TOKYO.0];
        let outage_minutes = (1440 + 12 * 60 + 5)..(1440 + 17 * 60 + 55);
        let during: f64 = outage_minutes.clone().map(|m| tokyo.bins()[m]).sum();
        assert_eq!(during, 0.0, "Tokyo served during its outage");
        let after: f64 = ((1440 + 18 * 60 + 5)..(2 * 1440 - 1))
            .map(|m| tokyo.bins()[m])
            .sum();
        assert!(after > 0.0, "Tokyo never recovered");
    }

    #[test]
    fn freshness_stays_within_the_sixty_second_bound() {
        let report = ClusterSim::new(quick_config()).run();
        assert!(report.freshness.count() > 0);
        assert!(
            report.freshness_max < 60.0,
            "max freshness {}s",
            report.freshness_max
        );
        assert!(report.freshness.mean() < 20.0);
    }

    #[test]
    fn bytes_and_regions_accumulate() {
        let report = ClusterSim::new(quick_config()).run();
        assert!(report.bytes_per_day[1] > 0.0);
        assert!(report.by_region.len() >= 5);
        let region_total: u64 = report.by_region.values().sum();
        assert_eq!(region_total, report.total_requests);
        assert!(!report.response_by_day_region.is_empty());
    }

    #[test]
    fn colocation_degrades_service_times() {
        let mut cfg = quick_config();
        cfg.policy = ConsistencyPolicy::Conservative96;
        cfg.updates_on_serving_nodes = true;
        let colocated = ClusterSim::new(cfg).run();
        let separated = ClusterSim::new(quick_config()).run();
        assert!(colocated.service_near_updates.count() > 0);
        assert!(
            colocated.service_near_updates.mean()
                > colocated.service_away_from_updates.mean() * 3.0,
            "near {} vs away {}",
            colocated.service_near_updates.mean(),
            colocated.service_away_from_updates.mean()
        );
        // The 1998 separation keeps service flat around updates.
        let near = separated.service_near_updates.mean();
        let away = separated.service_away_from_updates.mean();
        assert!(
            (near - away).abs() < away.max(0.5),
            "1998 near {near} vs away {away}"
        );
    }

    #[test]
    fn modem_histogram_collects_home_page_fetches() {
        let report = ClusterSim::new(quick_config()).run();
        assert!(report.modem_responses.count() > 0);
        // Uncongested days: responses sit around 20 s, under the 30 s
        // requirement.
        assert!(report.modem_responses.median() > 10.0);
        assert!(report.modem_responses.median() < 30.0);
    }

    #[test]
    fn report_helpers_are_consistent() {
        let report = ClusterSim::new(quick_config()).run();
        // per_minute total equals served requests (total - failed).
        assert_eq!(
            report.per_minute.total() as u64,
            report.total_requests - report.failed_requests
        );
        // per-site totals sum to the same.
        let site_sum: f64 = report.per_site_totals().iter().sum();
        assert_eq!(
            site_sum as u64,
            report.total_requests - report.failed_requests
        );
        // Daily paper-unit series covers the configured horizon.
        assert_eq!(report.hits_per_day_paper_millions().len(), 3);
        let (idx, count, paper) = report.peak_minute();
        assert!(idx < report.per_minute.bins().len());
        assert!((count * report.scale - paper).abs() < 1e-6);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = ClusterSim::new(quick_config()).run();
        let b = ClusterSim::new(quick_config()).run();
        assert_eq!(a.total_requests, b.total_requests);
        assert_eq!(a.cache.hits, b.cache.hits);
        assert_eq!(a.per_site_totals(), b.per_site_totals());
    }

    #[test]
    fn telemetry_exports_cover_every_subsystem() {
        let report = ClusterSim::new(quick_config()).run();
        let text = prometheus_text(&report.telemetry.registry);
        for needle in [
            "nagano_cache_hits_total{site=\"Tokyo\"}",
            "nagano_trigger_txns_total{site=\"Schaumburg\"}",
            "nagano_trigger_latency_seconds_count{site=\"Columbus\"}",
            "nagano_httpd_requests_total{site=\"Bethesda\"}",
            "nagano_cluster_requests_total",
            "nagano_cluster_freshness_seconds_count",
        ] {
            assert!(text.contains(needle), "missing {needle} in export");
        }
        let json = json_snapshot(&report.telemetry.registry);
        assert!(json.contains("\"name\":\"nagano_cluster_freshness_seconds\""));
        // The registry's counters agree with the report.
        let requests = report
            .telemetry
            .registry
            .counter("nagano_cluster_requests_total", &[]);
        assert_eq!(requests.get(), report.total_requests);
    }

    #[test]
    fn freshness_percentiles_are_ordered_and_bounded() {
        let report = ClusterSim::new(quick_config()).run();
        let h = &report.freshness_hist;
        assert_eq!(h.count(), report.freshness.count());
        let (p50, p95, p99) = (h.percentile(50.0), h.percentile(95.0), h.percentile(99.0));
        assert!(p50 > 0.0 && p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        // ~5% bucket error on top of the 60 s design bound.
        assert!(p99 <= report.freshness_max * 1.06);
    }

    #[test]
    fn propagation_traces_are_complete_and_deterministic() {
        let a = ClusterSim::new(quick_config()).run();
        let b = ClusterSim::new(quick_config()).run();
        assert!(!a.telemetry.propagation.is_empty());
        let slow_a = a.telemetry.propagation.slowest(3);
        let slow_b = b.telemetry.propagation.slowest(3);
        // Identical seed ⇒ identical traces, span timestamps included.
        assert_eq!(slow_a, slow_b);
        // Every trace is a tree rooted at the transaction receipt, with at
        // least a distribute → traversal → apply chain per site.
        let trace = &slow_a[0];
        assert!(trace.spans.len() > 3 * SITES.len(), "{:?}", trace);
        assert_eq!(trace.spans[0].name, "nagano_cluster_txn_receipt");
        assert_eq!(trace.spans[0].parent, None);
        assert!(trace.spans[1..].iter().all(|s| s.parent.is_some()));
        assert!(trace.render().contains("site=Tokyo"));
        // A fully closed lineage tree exists: every site applied *and*
        // served, so the tree carries four first-fresh-hit leaves.
        let closed = a.telemetry.propagation.traces().into_iter().find(|t| {
            t.spans
                .iter()
                .filter(|s| s.name == "nagano_cache_first_fresh_hit")
                .count()
                == SITES.len()
        });
        let closed = closed.expect("no update closed its lineage at all four sites");
        assert_eq!(closed.spans.len(), 1 + 4 * SITES.len());
        // Serving traces sampled deterministically too, as parent-linked
        // route → lookup → render chains.
        assert!(!a.telemetry.serving.is_empty());
        assert_eq!(
            a.telemetry.serving.slowest(3),
            b.telemetry.serving.slowest(3)
        );
        let serve = &a.telemetry.serving.slowest(1)[0];
        assert_eq!(serve.spans[0].name, "nagano_cluster_route");
        assert!(serve
            .spans
            .iter()
            .any(|s| s.name == "nagano_pagegen_render" && s.parent.is_some()));
    }

    #[test]
    fn update_to_serve_lineage_feeds_the_freshness_histogram() {
        let report = ClusterSim::new(quick_config()).run();
        assert!(report.update_to_serve.count() > 0, "no lineage leaf closed");
        // Commit → first fresh serve can never beat commit → site-visible.
        assert!(report.update_to_serve.percentile(50.0) >= report.freshness_hist.percentile(50.0));
        // The registry carries the same histogram for /metrics scrapes.
        let text = prometheus_text(&report.telemetry.registry);
        assert!(text.contains("nagano_cluster_update_to_serve_seconds_count"));
    }

    #[test]
    fn default_slo_rules_pass_on_a_healthy_run() {
        let report = ClusterSim::new(quick_config()).run();
        assert_eq!(report.slo.len(), 2);
        for outcome in &report.slo {
            assert!(
                outcome.pass,
                "{} failed: observed {} vs target {}",
                outcome.rule.name, outcome.observed, outcome.target
            );
            assert!(outcome.alerts.is_empty(), "{:?}", outcome.alerts);
        }
        assert!(report.slo.iter().any(|o| o.count > 0));
    }

    #[test]
    fn violated_slo_fails_and_burns_its_budget() {
        // An absurdly tight freshness bound: every sample is bad, so the
        // rule fails and the multi-window burn-rate alert pages.
        let mut cfg = quick_config();
        cfg.slo_rules = vec!["impossible: 99% of nagano_cluster_freshness_seconds < 0.002".into()];
        let report = ClusterSim::new(cfg).run();
        assert_eq!(report.slo.len(), 1);
        assert!(!report.slo[0].pass);
        assert!(
            report.slo[0].alerts.iter().any(|a| a.severity == "page"),
            "sustained 100% burn never paged: {:?}",
            report.slo[0].alerts
        );
    }

    #[test]
    fn partition_heals_and_replicas_converge() {
        let mut cfg = fault_config();
        cfg.audit_convergence = true;
        // Partition the Schaumburg → Bethesda edge for six hours on day 2.
        let kind = DataFaultKind::Link {
            edge: 3,
            fault: LinkFault::Partition,
        };
        cfg.fault_plan = vec![
            DataFaultPlanEntry {
                at: SimTime::at(10, 8, 0),
                kind,
                up: false,
            },
            DataFaultPlanEntry {
                at: SimTime::at(10, 12, 0),
                kind,
                up: true,
            },
        ];
        let report = ClusterSim::new(cfg).run();
        assert!(report.replication_dropped > 0, "partition dropped nothing");
        assert!(report.retries > 0, "no catch-up attempt hit the partition");
        assert!(report.catch_up_applied > 0, "nothing recovered via pull");
        assert!(report.staleness_hist.count() > 0);
        // Provable convergence: every replica and monitor ends at the
        // master watermark and no cached body is stale.
        assert_eq!(report.site_watermarks, [report.master_txns; 4]);
        assert_eq!(report.monitor_watermarks, [report.master_txns; 4]);
        assert_eq!(report.stale_pages, Some(0));
        let rec = report
            .convergence
            .iter()
            .find(|c| c.site == 2)
            .expect("a convergence record for Bethesda");
        let ttc = rec.time_to_converge().expect("Bethesda reconverged");
        assert!(
            ttc <= SimDuration::from_mins(10),
            "took {}s to converge",
            ttc.as_secs_f64()
        );
        // Routing never noticed: the data plane degraded, not serving.
        assert_eq!(report.failed_requests, 0);
        // The telemetry counters mirror the report.
        let text = prometheus_text(&report.telemetry.registry);
        assert!(text.contains(&format!("nagano_cluster_retries_total {}", report.retries)));
        assert!(text.contains(&format!(
            "nagano_cluster_replication_dropped_total {}",
            report.replication_dropped
        )));
    }

    #[test]
    fn monitor_crash_recovery_leaves_no_stale_page() {
        let mut cfg = fault_config();
        cfg.audit_convergence = true;
        let kind = DataFaultKind::MonitorCrash { site: 3 };
        cfg.fault_plan = vec![
            DataFaultPlanEntry {
                at: SimTime::at(10, 8, 0),
                kind,
                up: false,
            },
            DataFaultPlanEntry {
                at: SimTime::at(10, 12, 0),
                kind,
                up: true,
            },
        ];
        let report = ClusterSim::new(cfg).run();
        assert_eq!(report.recoveries, 1);
        assert!(
            report.staleness_hist.count() > 0,
            "recovery replayed no missed txns"
        );
        // The restarted monitor re-ran DUP over the missed tail: nothing
        // stale survives, and its watermark matches the replica's.
        assert_eq!(report.stale_pages, Some(0));
        assert_eq!(report.monitor_watermarks, [report.master_txns; 4]);
        let rec = report
            .convergence
            .iter()
            .find(|c| c.site == 3)
            .expect("a convergence record for Tokyo");
        assert!(rec.converged_at.is_some());
        let text = prometheus_text(&report.telemetry.registry);
        assert!(text.contains("nagano_trigger_recoveries_total{site=\"Tokyo\"} 1"));
    }

    #[test]
    fn partitioned_primary_feed_fails_over_to_the_tokyo_refeed() {
        let mut cfg = fault_config();
        cfg.audit_convergence = true;
        let kind = DataFaultKind::Link {
            edge: 0,
            fault: LinkFault::Partition,
        };
        cfg.fault_plan = vec![
            DataFaultPlanEntry {
                at: SimTime::at(10, 8, 0),
                kind,
                up: false,
            },
            DataFaultPlanEntry {
                at: SimTime::at(10, 12, 0),
                kind,
                up: true,
            },
        ];
        let report = ClusterSim::new(cfg).run();
        // Schaumburg kept advancing through the partition by pulling the
        // Tokyo re-feed, so staleness stayed bounded by the pull cadence —
        // minutes, not the six-hour partition.
        assert!(report.catch_up_applied > 0);
        assert!(report.staleness_hist.count() > 0);
        assert!(
            report.staleness_max < 300.0,
            "staleness {}s suggests the DR re-feed never engaged",
            report.staleness_max
        );
        assert_eq!(report.site_watermarks, [report.master_txns; 4]);
        assert_eq!(report.stale_pages, Some(0));
        assert_eq!(report.failed_requests, 0);
    }

    #[test]
    fn lossy_link_converges_and_fault_runs_stay_deterministic() {
        let mut cfg = fault_config();
        let kind = DataFaultKind::Link {
            edge: 1,
            fault: LinkFault::Lossy { drop_permille: 500 },
        };
        cfg.fault_plan = vec![
            DataFaultPlanEntry {
                at: SimTime::at(10, 8, 0),
                kind,
                up: false,
            },
            DataFaultPlanEntry {
                at: SimTime::at(10, 12, 0),
                kind,
                up: true,
            },
        ];
        let a = ClusterSim::new(cfg.clone()).run();
        let b = ClusterSim::new(cfg).run();
        assert!(
            a.replication_dropped > 0,
            "a 50% lossy link dropped nothing"
        );
        assert!(a.catch_up_applied > 0, "gaps were never repaired");
        assert_eq!(a.site_watermarks, [a.master_txns; 4]);
        // Identical seed ⇒ identical faults, drops, retries, and repairs.
        assert_eq!(a.replication_dropped, b.replication_dropped);
        assert_eq!(a.replication_duplicates, b.replication_duplicates);
        assert_eq!(a.catch_up_applied, b.catch_up_applied);
        assert_eq!(a.retries, b.retries);
        assert_eq!(a.total_requests, b.total_requests);
        assert_eq!(a.staleness_hist.count(), b.staleness_hist.count());
    }

    /// Update-dense days with the invalidate policy (so misses and stale
    /// tombstones actually occur) and resilience switched on.
    fn resilience_config() -> ClusterConfig {
        let mut cfg = fault_config();
        cfg.policy = ConsistencyPolicy::Invalidate;
        cfg.resilience = Some(ServingResilience::default());
        cfg
    }

    #[test]
    fn backend_outage_serves_stale_and_trips_the_breaker() {
        let mut cfg = resilience_config();
        // A four-hour outage over the update-dense morning: invalidated
        // pages miss while the backend is unreachable, so the tombstones
        // carry the traffic.
        let kind = ServingFaultKind::BackendOutage { site: 0 };
        cfg.serving_fault_plan = vec![
            ServingFaultPlanEntry {
                at: SimTime::at(10, 8, 0),
                kind,
                up: false,
            },
            ServingFaultPlanEntry {
                at: SimTime::at(10, 12, 0),
                kind,
                up: true,
            },
        ];
        let report = ClusterSim::new(cfg).run();
        assert!(
            report.availability() >= 0.99,
            "availability {}",
            report.availability()
        );
        assert!(
            report.cache.stale_served > 0,
            "the outage never answered from a tombstone"
        );
        assert!(report.breaker_trips > 0, "the breaker never opened");
        assert!(report.stale_serve_rate() > 0.0);
        assert!(report.stale_serve_rate() < 0.05);
        // The stale-serve counter reaches the shared registry under the
        // site label.
        let text = prometheus_text(&report.telemetry.registry);
        assert!(text.contains("nagano_cache_stale_served_total{site=\"Schaumburg\"}"));
        // After the heal, regenerations replaced the tombstones — and
        // coalescing kept them near one per (key, stale-epoch).
        assert!(report.stale_regens > 0);
        assert!(report.regens_per_stale_key() >= 1.0);
        assert!(
            report.regens_per_stale_key() < 1.5,
            "stampede: {} regens per stale key",
            report.regens_per_stale_key()
        );
    }

    #[test]
    fn cache_shard_crash_coalesces_the_restart_stampede() {
        let mut cfg = resilience_config();
        cfg.serving_fault_plan = vec![ServingFaultPlanEntry {
            at: SimTime::at(10, 9, 0),
            kind: ServingFaultKind::CacheShardCrash { site: 0, node: 0 },
            up: false,
        }];
        let report = ClusterSim::new(cfg).run();
        // A cold cache is a refill problem, not an availability problem.
        assert_eq!(report.failed_requests, 0);
        assert!(report.demand_fills > 0, "the cold cache never refilled");
        assert!(
            report.cache.coalesced > 0,
            "no concurrent miss joined an in-flight regeneration"
        );
        let text = prometheus_text(&report.telemetry.registry);
        assert!(text.contains("nagano_cache_coalesced_total{site=\"Schaumburg\"}"));
    }

    #[test]
    fn scripted_serving_plan_meets_the_availability_floor() {
        let mut cfg = resilience_config();
        cfg.serving_fault_plan = crate::faults::scripted_serving_plan(10);
        let report = ClusterSim::new(cfg).run();
        assert!(
            report.availability() >= 0.99,
            "availability {}",
            report.availability()
        );
        // Staleness is bounded by the policy: a served tombstone can
        // never be older than the configured max age.
        let max_age = ServingResilience::default().stale.max_age_secs;
        assert!(report.serve_latency.count() > 0);
        assert!(max_age <= 900.0);
        // p99 latency stays visible (and finite) through the slowdown.
        assert!(report.serve_latency.percentile(99.0).is_finite());
    }

    #[test]
    fn resilience_runs_are_deterministic() {
        let mut cfg = resilience_config();
        cfg.serving_fault_plan = crate::faults::scripted_serving_plan(10);
        let a = ClusterSim::new(cfg.clone()).run();
        let b = ClusterSim::new(cfg).run();
        assert_eq!(a.total_requests, b.total_requests);
        assert_eq!(a.failed_requests, b.failed_requests);
        assert_eq!(a.cache.stale_served, b.cache.stale_served);
        assert_eq!(a.cache.coalesced, b.cache.coalesced);
        assert_eq!(a.demand_fills, b.demand_fills);
        assert_eq!(a.stale_regens, b.stale_regens);
        assert_eq!(a.render_retries, b.render_retries);
        assert_eq!(a.breaker_trips, b.breaker_trips);
    }

    #[test]
    fn resilience_off_keeps_the_serving_counters_quiet() {
        let report = ClusterSim::new(quick_config()).run();
        assert_eq!(report.cache.stale_served, 0);
        assert_eq!(report.cache.coalesced, 0);
        assert_eq!(report.stale_regens, 0);
        assert_eq!(report.breaker_trips, 0);
        assert_eq!(report.render_retries, 0);
        assert_eq!(report.regens_per_stale_key(), 0.0);
    }

    #[test]
    fn export_dir_receives_hourly_and_final_snapshots() {
        let dir = std::env::temp_dir().join("nagano-telemetry-test-42");
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = quick_config();
        cfg.export_dir = Some(dir.clone());
        ClusterSim::new(cfg).run();
        let prom = std::fs::read_to_string(dir.join("metrics.prom")).unwrap();
        assert!(prom.contains("nagano_cache_hits_total"));
        assert!(prom.contains("nagano_httpd_requests_total"));
        let json = std::fs::read_to_string(dir.join("metrics.json")).unwrap();
        assert!(json.starts_with("{\"metrics\":["));
        let hourly = std::fs::read_to_string(dir.join("telemetry_hourly.jsonl")).unwrap();
        // Two simulated days ⇒ 48 hourly snapshots.
        assert_eq!(hourly.lines().count(), 48);
        assert!(hourly.lines().next().unwrap().starts_with("{\"hour\":25,"));
        let traces = std::fs::read_to_string(dir.join("traces.jsonl")).unwrap();
        assert!(traces.lines().count() > 0);
        assert!(traces.contains("\"kind\":\"propagation\""));
        assert!(traces.contains("\"kind\":\"serving\""));
        assert!(traces.contains("\"name\":\"nagano_cache_first_fresh_hit\""));
        let slo = std::fs::read_to_string(dir.join("slo.json")).unwrap();
        assert!(slo.starts_with("{\"slo\":["));
        assert!(slo.contains("\"name\":\"fresh-60s\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
