//! The 16-day discrete-event driver: workload in, figures out.
//!
//! One run wires together the full reproduction stack — seeded database,
//! page registry, per-site trigger monitors (with Figure-5 replication
//! delays), MSIRP routing over the live cluster state, and the request
//! model — and measures everything the paper's evaluation section reports.

use std::path::PathBuf;
use std::sync::Arc;

use rustc_hash::FxHashMap;

use nagano_cache::{CacheConfig, CacheFleet, StatsSnapshot};
use nagano_db::{seed_games, GamesConfig, OlympicDb, Transaction, TxnId};
use nagano_httpd::HttpdMetrics;
use nagano_pagegen::{PageKey, PageRegistry, Renderer};
use nagano_simcore::{
    DeterministicRng, EventQueue, Histogram, LinkClass, LinkModel, SimDuration, SimTime,
    TimeSeries, Welford,
};
use nagano_telemetry::{json_snapshot, prometheus_text, Telemetry, Trace, TraceKind};
use nagano_trigger::{ConsistencyPolicy, TriggerMonitor};
use nagano_workload::{Region, RequestModel, UpdateSchedule};

use crate::state::{ClusterState, FailureKind};
use crate::topology::{region_latency_ms, Msirp, RouteDecision, SITES};

/// One scheduled failure or restore.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailurePlanEntry {
    /// When it happens.
    pub at: SimTime,
    /// What fails or recovers.
    pub kind: FailureKind,
    /// `false` = fail, `true` = restore.
    pub up: bool,
}

/// Simulation configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Divide paper-scale request volumes by this (1,000 ⇒ ~635k
    /// simulated requests across the Games).
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
    /// Dataset dimensions.
    pub games: GamesConfig,
    /// Consistency policy run at every site's trigger monitor.
    pub policy: ConsistencyPolicy,
    /// First simulated day (1-based, inclusive).
    pub start_day: u32,
    /// Last simulated day (inclusive).
    pub end_day: u32,
    /// Scheduled failures/restores.
    pub failure_plan: Vec<FailurePlanEntry>,
    /// External congestion on US paths: `(first_day, last_day, factor)` —
    /// Figure 22's days 7–9 anomaly was "caused by problems external to
    /// the site".
    pub us_congestion: (u32, u32, f64),
    /// 1996-style co-location: updates run **on the serving processors**,
    /// so page service slows down around update bursts. The 1998 design
    /// ran updates "on different processors from the ones serving pages"
    /// so "response times were not adversely affected around the times of
    /// peak updates" (§2).
    pub updates_on_serving_nodes: bool,
    /// When set, hourly telemetry flush events write per-hour registry
    /// snapshots (`telemetry_hourly.jsonl`) plus final `metrics.prom` /
    /// `metrics.json` exports into this directory (typically
    /// `target/experiments/`). `None` disables all file output.
    pub export_dir: Option<PathBuf>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            scale: 1_000.0,
            seed: 0x1998,
            games: GamesConfig::full(),
            policy: ConsistencyPolicy::UpdateInPlace,
            start_day: 1,
            end_day: 16,
            failure_plan: Vec::new(),
            us_congestion: (7, 9, 1.45),
            updates_on_serving_nodes: false,
            export_dir: None,
        }
    }
}

/// Everything a run measures. Counts are in *simulated* units; multiply
/// by `scale` for paper units (helpers provided).
#[derive(Debug)]
pub struct ClusterReport {
    /// The scale divisor used.
    pub scale: f64,
    /// Requests attempted.
    pub total_requests: u64,
    /// Requests no complex could serve.
    pub failed_requests: u64,
    /// Global request series, minute bins.
    pub per_minute: TimeSeries,
    /// Per-site request series, minute bins.
    pub per_site_minute: Vec<TimeSeries>,
    /// Requests by client region.
    pub by_region: FxHashMap<Region, u64>,
    /// Body bytes served per day (index 0 = day 1), simulated units.
    pub bytes_per_day: Vec<f64>,
    /// Home-page modem response times (seconds) per (day, region).
    pub response_by_day_region: FxHashMap<(u32, Region), Welford>,
    /// All modem home-page responses (seconds) — used against the §4
    /// design requirement of ≤30 s per page on a 28.8 kbps modem.
    pub modem_responses: Histogram,
    /// Server-side service time (ms) for requests within ±2 minutes of an
    /// update being applied at their serving site.
    pub service_near_updates: Welford,
    /// Server-side service time (ms) for all other requests.
    pub service_away_from_updates: Welford,
    /// Aggregated cache statistics across all sites.
    pub cache: StatsSnapshot,
    /// Pages regenerated per day across sites (index 0 = day 1).
    pub regen_per_day: Vec<u64>,
    /// Freshness: master-commit → site-visible latency (seconds).
    pub freshness: Welford,
    /// Freshness distribution (seconds) — percentile queries for the
    /// paper's update-propagation claim (p50/p95/p99/p999).
    pub freshness_hist: Histogram,
    /// Worst-case freshness in seconds.
    pub freshness_max: f64,
    /// Transactions applied at sites.
    pub updates_applied: u64,
    /// The run's telemetry: metric registry plus propagation and serving
    /// trace ring buffers. Export with
    /// [`nagano_telemetry::prometheus_text`] / [`json_snapshot`].
    pub telemetry: Arc<Telemetry>,
}

impl ClusterReport {
    /// Total requests in paper units.
    pub fn total_requests_paper(&self) -> f64 {
        self.total_requests as f64 * self.scale
    }

    /// Availability: fraction of requests served.
    pub fn availability(&self) -> f64 {
        if self.total_requests == 0 {
            return 1.0;
        }
        1.0 - self.failed_requests as f64 / self.total_requests as f64
    }

    /// Overall cache hit rate.
    pub fn hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }

    /// Peak minute: `(minute_index, simulated_count, paper_scale_count)`.
    pub fn peak_minute(&self) -> (usize, f64, f64) {
        let (idx, v) = self.per_minute.peak();
        (idx, v, v * self.scale)
    }

    /// Requests per site over the whole run, simulated units.
    pub fn per_site_totals(&self) -> [f64; 4] {
        let mut out = [0.0; 4];
        for (i, ts) in self.per_site_minute.iter().enumerate() {
            out[i] = ts.total();
        }
        out
    }

    /// Requests per day (paper-scale millions), from the minute series.
    pub fn hits_per_day_paper_millions(&self) -> Vec<f64> {
        self.per_minute
            .rebin(1440)
            .bins()
            .iter()
            .map(|&v| v * self.scale / 1.0e6)
            .collect()
    }
}

enum SimEvent {
    /// An update reaches the master database.
    MasterUpdate(usize),
    /// A replicated transaction becomes processable at a site.
    SiteApply(usize, Arc<Transaction>),
    /// A failure-plan entry fires.
    Failure(usize),
    /// Hourly telemetry snapshot (only scheduled when `export_dir` is set).
    TelemetryFlush,
}

/// Generate a random failure soak plan: `events_per_day` component
/// failures per day across `start_day..=end_day`, each restored after 30
/// to 90 minutes. At most one complex-level failure is in flight at a
/// time (the production site's redundancy budget assumed no simultaneous
/// multi-complex outage; none occurred).
pub fn random_soak_plan(
    start_day: u32,
    end_day: u32,
    events_per_day: u32,
    seed: u64,
) -> Vec<FailurePlanEntry> {
    let mut rng = DeterministicRng::seed_from_u64(seed);
    let cluster = ClusterState::new();
    let mut plan = Vec::new();
    // (restore_minute, site) of the currently scheduled complex outage.
    let mut complex_busy_until: i64 = -1;
    for day in start_day..=end_day {
        for _ in 0..events_per_day {
            let at_min = (day as u64 - 1) * 1440 + rng.index(1380) as u64;
            let duration = 30 + rng.index(61) as u64; // 30..=90 minutes
            let mut kind = cluster.random_failure_target(&mut rng);
            if let FailureKind::Complex { .. } = kind {
                if (at_min as i64) <= complex_busy_until {
                    // Another complex is already down: demote to a frame
                    // failure at the same site.
                    let site = match kind {
                        FailureKind::Complex { site } => site,
                        _ => unreachable!(),
                    };
                    kind = FailureKind::Frame { site, frame: 0 };
                } else {
                    complex_busy_until = (at_min + duration) as i64;
                }
            }
            plan.push(FailurePlanEntry {
                at: SimTime::from_mins(at_min),
                kind,
                up: false,
            });
            plan.push(FailurePlanEntry {
                at: SimTime::from_mins(at_min + duration),
                kind,
                up: true,
            });
        }
    }
    plan.sort_by_key(|e| e.at);
    plan
}

/// One serving trace is recorded per this many requests (prime, so the
/// sample is not phase-locked to any per-minute request pattern).
const SERVING_TRACE_SAMPLE: u64 = 199;

/// The simulation driver.
pub struct ClusterSim {
    config: ClusterConfig,
}

impl ClusterSim {
    /// New simulation with `config`.
    pub fn new(config: ClusterConfig) -> Self {
        assert!(config.start_day >= 1 && config.end_day >= config.start_day);
        ClusterSim { config }
    }

    /// Run to completion.
    pub fn run(&self) -> ClusterReport {
        let cfg = &self.config;
        let mut rng = DeterministicRng::seed_from_u64(cfg.seed);
        let db = Arc::new(OlympicDb::new());
        seed_games(&db, &cfg.games);
        let registry = Arc::new(PageRegistry::build(&db, cfg.games.days));
        let model = RequestModel::new(&db, Arc::clone(&registry), cfg.scale);
        let mut update_rng = rng.fork(1);
        let schedule = UpdateSchedule::generate(&db, &mut update_rng);

        let telemetry = Arc::new(Telemetry::new());

        // One trigger monitor + single-member cache fleet per site, each
        // binding its live trigger/cache cells into the shared registry
        // under a `site` label.
        let monitors: Vec<TriggerMonitor> = SITES
            .iter()
            .map(|spec| {
                let fleet = Arc::new(CacheFleet::new(1, CacheConfig::default()));
                let m = TriggerMonitor::new(
                    Renderer::new(Arc::clone(&db)),
                    fleet,
                    Arc::clone(&registry),
                    cfg.policy,
                );
                m.prewarm();
                let labels = [("site", spec.name)];
                m.stats().bind(&telemetry.registry, &labels);
                m.fleet()
                    .member(0)
                    .stats_handle()
                    .bind(&telemetry.registry, &labels);
                m
            })
            .collect();

        // Per-site request counters (the simulated httpd front end).
        let httpd_metrics: Vec<HttpdMetrics> = SITES
            .iter()
            .map(|spec| {
                let m = HttpdMetrics::new();
                m.bind(&telemetry.registry, &[("site", spec.name)]);
                m
            })
            .collect();

        let requests_total = telemetry
            .registry
            .counter("nagano_cluster_requests_total", &[]);
        let failed_total = telemetry
            .registry
            .counter("nagano_cluster_failed_requests_total", &[]);
        let applied_total = telemetry
            .registry
            .counter("nagano_cluster_updates_applied_total", &[]);
        let freshness_hist =
            telemetry
                .registry
                .histogram("nagano_cluster_freshness_seconds", &[], 1e-3, 600.0);

        let mut cluster = ClusterState::new();
        let msirp = Msirp::nagano();

        let horizon_days = cfg.end_day as u64;
        let mut report = ClusterReport {
            scale: cfg.scale,
            total_requests: 0,
            failed_requests: 0,
            per_minute: TimeSeries::new(
                SimDuration::from_mins(1),
                SimDuration::from_days(horizon_days),
            ),
            per_site_minute: (0..4)
                .map(|_| {
                    TimeSeries::new(
                        SimDuration::from_mins(1),
                        SimDuration::from_days(horizon_days),
                    )
                })
                .collect(),
            by_region: FxHashMap::default(),
            bytes_per_day: vec![0.0; cfg.end_day as usize],
            response_by_day_region: FxHashMap::default(),
            modem_responses: Histogram::for_latency(),
            service_near_updates: Welford::new(),
            service_away_from_updates: Welford::new(),
            cache: StatsSnapshot::default(),
            regen_per_day: vec![0; cfg.end_day as usize],
            freshness: Welford::new(),
            freshness_hist: Histogram::new(1e-3, 600.0),
            freshness_max: 0.0,
            updates_applied: 0,
            telemetry: Arc::clone(&telemetry),
        };

        // Seed the event queue: master updates + failure plan.
        let mut queue: EventQueue<SimEvent> = EventQueue::new();
        for (i, u) in schedule.updates().iter().enumerate() {
            if u.day >= cfg.start_day && u.day <= cfg.end_day {
                queue.schedule(u.at, SimEvent::MasterUpdate(i));
            }
        }
        for (i, f) in cfg.failure_plan.iter().enumerate() {
            queue.schedule(f.at, SimEvent::Failure(i));
        }
        if cfg.export_dir.is_some() {
            let start_hour = (cfg.start_day as u64 - 1) * 24;
            let end_hour = cfg.end_day as u64 * 24;
            for hour in (start_hour + 1)..=end_hour {
                queue.schedule(SimTime::from_hours(hour), SimEvent::TelemetryFlush);
            }
        }

        // Propagation traces in flight: txn id → (trace, sites applied).
        let mut pending_traces: FxHashMap<TxnId, (Trace, usize)> = FxHashMap::default();
        // Per-hour registry snapshots, written out after the run.
        let mut hourly_snapshots: Vec<String> = Vec::new();

        let mut last_apply_minute: [i64; 4] = [i64::MIN; 4];
        let start_min = (cfg.start_day as u64 - 1) * 1440;
        let end_min = cfg.end_day as u64 * 1440;
        let mut req_rng = rng.fork(2);
        let mut apply_rng = rng.fork(3);

        for minute in start_min..end_min {
            let minute_end = SimTime::from_mins(minute + 1);
            // Drain events due in this minute first.
            while let Some((at, ev)) = queue.pop_before(minute_end) {
                match ev {
                    SimEvent::MasterUpdate(i) => {
                        let update = schedule.updates()[i];
                        let txn = UpdateSchedule::apply(&update, &db, &mut apply_rng);
                        let mut trace = Trace::new(TraceKind::Propagation, txn.id.0);
                        trace.span_with("txn_receipt", txn.label.clone(), at, at);
                        pending_traces.insert(txn.id, (trace, 0));
                        for (s, spec) in SITES.iter().enumerate() {
                            queue.schedule(
                                at + SimDuration::from_secs(spec.replication_delay_secs),
                                SimEvent::SiteApply(s, Arc::clone(&txn)),
                            );
                        }
                    }
                    SimEvent::SiteApply(s, txn) => {
                        let outcome = monitors[s].process_txn(&txn);
                        last_apply_minute[s] = at.minute_index() as i64;
                        report.updates_applied += 1;
                        applied_total.incr();
                        let day_idx = at.day().min(cfg.end_day) as usize - 1;
                        report.regen_per_day[day_idx] += outcome.regenerated.len() as u64;
                        // Visible-latency model: replication delay (already
                        // elapsed at `at`) plus regeneration spread over the
                        // SMP's render workers.
                        let regen_cost_ms: f64 = outcome
                            .regenerated
                            .iter()
                            .map(|&k| {
                                monitors[s]
                                    .fleet()
                                    .member(0)
                                    .peek(&k.to_url())
                                    .map(|_| 1.0)
                                    .unwrap_or(0.0)
                            })
                            .sum::<f64>()
                            * 150.0
                            / 8.0;
                        let commit_at =
                            at - SimDuration::from_secs(SITES[s].replication_delay_secs);
                        let applied_at = at + SimDuration::from_secs_f64(regen_cost_ms / 1_000.0);
                        let visible = applied_at - commit_at;
                        report.freshness.push(visible.as_secs_f64());
                        freshness_hist.record(visible.as_secs_f64());
                        report.freshness_max = report.freshness_max.max(visible.as_secs_f64());
                        if let Some((trace, applied)) = pending_traces.get_mut(&txn.id) {
                            let site = SITES[s].name;
                            trace
                                .span_with("distribute", format!("site={site}"), commit_at, at)
                                .span_with(
                                    "odg_traversal",
                                    format!("site={site} visited={}", outcome.visited),
                                    at,
                                    at,
                                )
                                .span_with(
                                    "cache_apply",
                                    format!(
                                        "site={site} regenerated={} invalidated={} tolerated={}",
                                        outcome.regenerated.len(),
                                        outcome.invalidated.len(),
                                        outcome.tolerated.len()
                                    ),
                                    at,
                                    applied_at,
                                );
                            *applied += 1;
                            if *applied == SITES.len() {
                                let (trace, _) =
                                    pending_traces.remove(&txn.id).expect("trace present");
                                telemetry.propagation.push(trace);
                            }
                        }
                    }
                    SimEvent::Failure(i) => {
                        let entry = cfg.failure_plan[i];
                        cluster.apply(entry.kind, entry.up);
                    }
                    SimEvent::TelemetryFlush => {
                        let hour = at.minute_index() / 60;
                        hourly_snapshots.push(format!(
                            "{{\"hour\":{hour},\"snapshot\":{}}}",
                            json_snapshot(&telemetry.registry)
                        ));
                    }
                }
            }

            // Generate this minute's client requests.
            let t_mid = SimTime::from_mins(minute) + SimDuration::from_secs(30);
            let count = model.sample_minute_count(t_mid, &mut req_rng);
            let day = t_mid.day();
            let day_idx = day.min(cfg.end_day) as usize - 1;
            for _ in 0..count {
                report.total_requests += 1;
                requests_total.incr();
                // Deterministic 1-in-N sampling keeps the serving-trace
                // ring representative without recording every request.
                let sampled = report.total_requests % SERVING_TRACE_SAMPLE == 1;
                let mut trace =
                    sampled.then(|| Trace::new(TraceKind::Serving, report.total_requests));
                let sample = model.sample_request(t_mid, &mut req_rng);
                *report.by_region.entry(sample.region).or_insert(0) += 1;
                let addr = cluster.next_dns_address();
                let adverts = cluster.adverts(&msirp, addr);
                let RouteDecision::Site(site) = msirp.route(sample.region, addr, &adverts) else {
                    report.failed_requests += 1;
                    failed_total.incr();
                    if let Some(mut trace) = trace {
                        trace.span_with("route", "no-site", t_mid, t_mid);
                        telemetry.serving.push(trace);
                    }
                    continue;
                };
                if let Some(trace) = trace.as_mut() {
                    trace.span_with(
                        "route",
                        format!(
                            "region={} site={}",
                            sample.region.label(),
                            SITES[site.0].name
                        ),
                        t_mid,
                        t_mid,
                    );
                }
                // Dispatcher picks a node (advisors skip dead ones); with
                // a single logical cache per site the node only matters
                // for load accounting.
                if cluster.site_mut(site).pick_node().is_none() {
                    report.failed_requests += 1;
                    failed_total.incr();
                    httpd_metrics[site.0].observe(503, 0);
                    if let Some(mut trace) = trace {
                        trace.span_with("dispatch", "no-node", t_mid, t_mid);
                        telemetry.serving.push(trace);
                    }
                    continue;
                }
                let url = sample.page.to_url();
                let monitor = &monitors[site.0];
                let (bytes, mut server_ms, cache_hit) = match monitor.fleet().get_from(0, &url) {
                    Some(page) => (page.body.len() as u64, 0.5, true),
                    None => {
                        let out = monitor.demand_fill(0, sample.page);
                        (out.body.len() as u64, out.cost_ms, false)
                    }
                };
                // §2: in the 1996 design the serving processors also ran
                // the updates, so service slows in the minutes around an
                // apply (regeneration competes for the same CPUs).
                let near_update = (minute as i64)
                    .saturating_sub(last_apply_minute[site.0])
                    .unsigned_abs()
                    <= 2;
                if cfg.updates_on_serving_nodes && near_update {
                    server_ms = server_ms * 8.0 + 150.0;
                }
                if near_update {
                    report.service_near_updates.push(server_ms);
                } else {
                    report.service_away_from_updates.push(server_ms);
                }
                report.per_minute.incr(t_mid);
                report.per_site_minute[site.0].incr(t_mid);
                report.bytes_per_day[day_idx] += bytes as f64;
                httpd_metrics[site.0].observe(200, bytes);
                if let Some(mut trace) = trace {
                    let done = t_mid + SimDuration::from_secs_f64(server_ms / 1_000.0);
                    trace
                        .span_with(
                            "cache_lookup",
                            if cache_hit { "hit" } else { "miss" },
                            t_mid,
                            t_mid,
                        )
                        .span_with("render", format!("url={url} bytes={bytes}"), t_mid, done);
                    telemetry.serving.push(trace);
                }

                // Response-time sampling: the paper's Figure 22 methodology
                // (28.8 kbps modem fetching the current home page).
                if sample.link == LinkClass::Modem28_8 {
                    if let PageKey::Home(_) = sample.page {
                        let mut link = LinkModel::new(LinkClass::Modem28_8);
                        let (c_lo, c_hi, factor) = cfg.us_congestion;
                        let is_us = matches!(sample.region, Region::UsEast | Region::UsWest);
                        if is_us && (c_lo..=c_hi).contains(&day) {
                            link = link.with_congestion(factor);
                        }
                        let server = SimDuration::from_secs_f64(
                            (server_ms + region_latency_ms(sample.region, site)) / 1_000.0,
                        );
                        let est = link.sample(bytes, server, &mut req_rng);
                        report
                            .response_by_day_region
                            .entry((day, sample.region))
                            .or_default()
                            .push(est.response_secs);
                        report.modem_responses.record(est.response_secs);
                    }
                }
            }
        }

        // Aggregate cache stats across sites.
        let mut agg = StatsSnapshot::default();
        for m in &monitors {
            let s = m.fleet().aggregate_stats();
            agg.hits += s.hits;
            agg.misses += s.misses;
            agg.inserts += s.inserts;
            agg.updates += s.updates;
            agg.invalidations += s.invalidations;
            agg.evictions += s.evictions;
            agg.bytes_current += s.bytes_current;
            agg.bytes_peak += s.bytes_peak;
        }
        report.cache = agg;
        report.freshness_hist = freshness_hist.snapshot();

        if let Some(dir) = &cfg.export_dir {
            // Export failures (read-only fs, missing parents) must not
            // invalidate a completed multi-minute simulation; the report
            // itself still carries the full telemetry.
            let _ = std::fs::create_dir_all(dir);
            let _ = std::fs::write(
                dir.join("metrics.prom"),
                prometheus_text(&telemetry.registry),
            );
            let _ = std::fs::write(dir.join("metrics.json"), json_snapshot(&telemetry.registry));
            let mut lines = hourly_snapshots.join("\n");
            lines.push('\n');
            let _ = std::fs::write(dir.join("telemetry_hourly.jsonl"), lines);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TOKYO;

    /// Small, fast configuration: two days at heavy scale-down.
    fn quick_config() -> ClusterConfig {
        ClusterConfig {
            scale: 20_000.0,
            seed: 42,
            games: GamesConfig::small(),
            start_day: 2,
            end_day: 3,
            ..Default::default()
        }
    }

    #[test]
    fn quick_run_serves_everything_with_high_hit_rate() {
        let report = ClusterSim::new(quick_config()).run();
        assert!(report.total_requests > 1_000, "{}", report.total_requests);
        assert_eq!(report.failed_requests, 0);
        assert_eq!(report.availability(), 1.0);
        // Update-in-place: hit rate near 100%.
        assert!(report.hit_rate() > 0.99, "hit rate {}", report.hit_rate());
        assert!(report.updates_applied > 0);
        assert!(report.cache.updates > 0, "pages updated in place");
    }

    #[test]
    fn invalidate_policy_lowers_hit_rate() {
        let mut cfg = quick_config();
        cfg.policy = ConsistencyPolicy::Invalidate;
        let inv = ClusterSim::new(cfg).run();
        let upd = ClusterSim::new(quick_config()).run();
        assert!(
            inv.hit_rate() < upd.hit_rate(),
            "invalidate {} vs update {}",
            inv.hit_rate(),
            upd.hit_rate()
        );
    }

    #[test]
    fn conservative_policy_is_much_worse() {
        let mut cfg = quick_config();
        cfg.policy = ConsistencyPolicy::Conservative96;
        let cons = ClusterSim::new(cfg).run();
        assert!(
            cons.hit_rate() < 0.95,
            "conservative hit rate {}",
            cons.hit_rate()
        );
    }

    #[test]
    fn regions_route_to_their_complexes() {
        let report = ClusterSim::new(quick_config()).run();
        let totals = report.per_site_totals();
        // All four complexes serve traffic; Tokyo carries a large share
        // (Japan + Oceania + spillover).
        for (i, t) in totals.iter().enumerate() {
            assert!(*t > 0.0, "site {i} served nothing");
        }
        assert!(totals[TOKYO.0] > 0.15 * totals.iter().sum::<f64>());
    }

    #[test]
    fn complex_failure_degrades_elegantly() {
        let mut cfg = quick_config();
        cfg.failure_plan = vec![
            FailurePlanEntry {
                at: SimTime::at(2, 12, 0),
                kind: FailureKind::Complex { site: TOKYO.0 },
                up: false,
            },
            FailurePlanEntry {
                at: SimTime::at(2, 18, 0),
                kind: FailureKind::Complex { site: TOKYO.0 },
                up: true,
            },
        ];
        let report = ClusterSim::new(cfg).run();
        // Nothing fails: traffic reroutes to surviving complexes.
        assert_eq!(report.failed_requests, 0);
        assert_eq!(report.availability(), 1.0);
        // Tokyo's series is dark during the outage window.
        let tokyo = &report.per_site_minute[TOKYO.0];
        let outage_minutes = (1440 + 12 * 60 + 5)..(1440 + 17 * 60 + 55);
        let during: f64 = outage_minutes.clone().map(|m| tokyo.bins()[m]).sum();
        assert_eq!(during, 0.0, "Tokyo served during its outage");
        let after: f64 = ((1440 + 18 * 60 + 5)..(2 * 1440 - 1))
            .map(|m| tokyo.bins()[m])
            .sum();
        assert!(after > 0.0, "Tokyo never recovered");
    }

    #[test]
    fn freshness_stays_within_the_sixty_second_bound() {
        let report = ClusterSim::new(quick_config()).run();
        assert!(report.freshness.count() > 0);
        assert!(
            report.freshness_max < 60.0,
            "max freshness {}s",
            report.freshness_max
        );
        assert!(report.freshness.mean() < 20.0);
    }

    #[test]
    fn bytes_and_regions_accumulate() {
        let report = ClusterSim::new(quick_config()).run();
        assert!(report.bytes_per_day[1] > 0.0);
        assert!(report.by_region.len() >= 5);
        let region_total: u64 = report.by_region.values().sum();
        assert_eq!(region_total, report.total_requests);
        assert!(!report.response_by_day_region.is_empty());
    }

    #[test]
    fn colocation_degrades_service_times() {
        let mut cfg = quick_config();
        cfg.policy = ConsistencyPolicy::Conservative96;
        cfg.updates_on_serving_nodes = true;
        let colocated = ClusterSim::new(cfg).run();
        let separated = ClusterSim::new(quick_config()).run();
        assert!(colocated.service_near_updates.count() > 0);
        assert!(
            colocated.service_near_updates.mean()
                > colocated.service_away_from_updates.mean() * 3.0,
            "near {} vs away {}",
            colocated.service_near_updates.mean(),
            colocated.service_away_from_updates.mean()
        );
        // The 1998 separation keeps service flat around updates.
        let near = separated.service_near_updates.mean();
        let away = separated.service_away_from_updates.mean();
        assert!(
            (near - away).abs() < away.max(0.5),
            "1998 near {near} vs away {away}"
        );
    }

    #[test]
    fn modem_histogram_collects_home_page_fetches() {
        let report = ClusterSim::new(quick_config()).run();
        assert!(report.modem_responses.count() > 0);
        // Uncongested days: responses sit around 20 s, under the 30 s
        // requirement.
        assert!(report.modem_responses.median() > 10.0);
        assert!(report.modem_responses.median() < 30.0);
    }

    #[test]
    fn report_helpers_are_consistent() {
        let report = ClusterSim::new(quick_config()).run();
        // per_minute total equals served requests (total - failed).
        assert_eq!(
            report.per_minute.total() as u64,
            report.total_requests - report.failed_requests
        );
        // per-site totals sum to the same.
        let site_sum: f64 = report.per_site_totals().iter().sum();
        assert_eq!(
            site_sum as u64,
            report.total_requests - report.failed_requests
        );
        // Daily paper-unit series covers the configured horizon.
        assert_eq!(report.hits_per_day_paper_millions().len(), 3);
        let (idx, count, paper) = report.peak_minute();
        assert!(idx < report.per_minute.bins().len());
        assert!((count * report.scale - paper).abs() < 1e-6);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = ClusterSim::new(quick_config()).run();
        let b = ClusterSim::new(quick_config()).run();
        assert_eq!(a.total_requests, b.total_requests);
        assert_eq!(a.cache.hits, b.cache.hits);
        assert_eq!(a.per_site_totals(), b.per_site_totals());
    }

    #[test]
    fn telemetry_exports_cover_every_subsystem() {
        let report = ClusterSim::new(quick_config()).run();
        let text = prometheus_text(&report.telemetry.registry);
        for needle in [
            "nagano_cache_hits_total{site=\"Tokyo\"}",
            "nagano_trigger_txns_total{site=\"Schaumburg\"}",
            "nagano_trigger_latency_seconds_count{site=\"Columbus\"}",
            "nagano_httpd_requests_total{site=\"Bethesda\"}",
            "nagano_cluster_requests_total",
            "nagano_cluster_freshness_seconds_count",
        ] {
            assert!(text.contains(needle), "missing {needle} in export");
        }
        let json = json_snapshot(&report.telemetry.registry);
        assert!(json.contains("\"name\":\"nagano_cluster_freshness_seconds\""));
        // The registry's counters agree with the report.
        let requests = report
            .telemetry
            .registry
            .counter("nagano_cluster_requests_total", &[]);
        assert_eq!(requests.get(), report.total_requests);
    }

    #[test]
    fn freshness_percentiles_are_ordered_and_bounded() {
        let report = ClusterSim::new(quick_config()).run();
        let h = &report.freshness_hist;
        assert_eq!(h.count(), report.freshness.count());
        let (p50, p95, p99) = (h.percentile(50.0), h.percentile(95.0), h.percentile(99.0));
        assert!(p50 > 0.0 && p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        // ~5% bucket error on top of the 60 s design bound.
        assert!(p99 <= report.freshness_max * 1.06);
    }

    #[test]
    fn propagation_traces_are_complete_and_deterministic() {
        let a = ClusterSim::new(quick_config()).run();
        let b = ClusterSim::new(quick_config()).run();
        assert!(!a.telemetry.propagation.is_empty());
        let slow_a = a.telemetry.propagation.slowest(3);
        let slow_b = b.telemetry.propagation.slowest(3);
        // Identical seed ⇒ identical traces, span timestamps included.
        assert_eq!(slow_a, slow_b);
        // A complete trace: txn receipt plus distribute/odg/apply per site.
        let trace = &slow_a[0];
        assert_eq!(trace.spans.len(), 1 + 3 * SITES.len());
        assert_eq!(trace.spans[0].name, "txn_receipt");
        assert!(trace.render().contains("site=Tokyo"));
        // Serving traces sampled deterministically too.
        assert!(!a.telemetry.serving.is_empty());
        assert_eq!(
            a.telemetry.serving.slowest(3),
            b.telemetry.serving.slowest(3)
        );
    }

    #[test]
    fn export_dir_receives_hourly_and_final_snapshots() {
        let dir = std::env::temp_dir().join("nagano-telemetry-test-42");
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = quick_config();
        cfg.export_dir = Some(dir.clone());
        ClusterSim::new(cfg).run();
        let prom = std::fs::read_to_string(dir.join("metrics.prom")).unwrap();
        assert!(prom.contains("nagano_cache_hits_total"));
        assert!(prom.contains("nagano_httpd_requests_total"));
        let json = std::fs::read_to_string(dir.join("metrics.json")).unwrap();
        assert!(json.starts_with("{\"metrics\":["));
        let hourly = std::fs::read_to_string(dir.join("telemetry_hourly.jsonl")).unwrap();
        // Two simulated days ⇒ 48 hourly snapshots.
        assert_eq!(hourly.lines().count(), 48);
        assert!(hourly.lines().next().unwrap().starts_with("{\"hour\":25,"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
