//! Deterministic data-plane fault injection: the replication edges of
//! Figure 5 and the per-site trigger monitors, faulted on the sim clock.
//!
//! The routing tier already degrades elegantly ([`crate::state`]); this
//! module stresses the *propagation* tier. A [`DataFaultPlan`] is a
//! seeded, sim-clock-scheduled list of link faults (drop / delay /
//! reorder / full partition) on each replication edge plus crash/restart
//! faults on per-site trigger monitors. The simulation applies them and
//! every component behind the fault recovers from its watermark:
//! replicas pull the gap with `TxnLog::since`, Schaumburg fails over to
//! the Tokyo re-feed when its primary feed is partitioned, and a
//! restarted monitor re-runs DUP over the transactions it missed.

use nagano_simcore::{DeterministicRng, SimTime};

/// How a replication link misbehaves while a fault is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFault {
    /// Each shipped transaction is independently dropped with probability
    /// `drop_permille / 1000`; catch-up pulls fail at the same rate.
    Lossy {
        /// Drop probability in permille (200 = 20%).
        drop_permille: u16,
    },
    /// Every shipment (and catch-up pull) takes `extra_secs` longer than
    /// the edge's base delay.
    Delay {
        /// Added latency in seconds.
        extra_secs: u64,
    },
    /// Each shipment's delay is stretched by a uniform `0..=jitter_secs`,
    /// so transactions can arrive out of order (the replica's in-order
    /// gate turns that into gap + duplicate traffic).
    Reorder {
        /// Maximum added jitter in seconds.
        jitter_secs: u64,
    },
    /// Nothing gets through until the fault heals.
    Partition,
}

/// What a data-plane fault entry targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataFaultKind {
    /// A fault on one replication edge (index into [`REPLICATION_EDGES`]).
    Link {
        /// Edge index.
        edge: usize,
        /// The misbehaviour while down (ignored on the heal entry).
        fault: LinkFault,
    },
    /// The site's trigger monitor crashes (down) or restarts (up). While
    /// down, the replica keeps applying transactions to its local log but
    /// no DUP runs, so the site's caches go stale until recovery replays
    /// the log tail past the monitor's watermark.
    MonitorCrash {
        /// Site index (see [`crate::topology::SITES`]).
        site: usize,
    },
}

/// One scheduled data-plane fault or heal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataFaultPlanEntry {
    /// When it happens.
    pub at: SimTime,
    /// What faults or heals.
    pub kind: DataFaultKind,
    /// `false` = fault starts, `true` = fault heals.
    pub up: bool,
}

/// One directed replication edge of the Figure-5 topology.
#[derive(Debug, Clone, Copy)]
pub struct EdgeSpec {
    /// Human-readable name (used in fault-tier reports).
    pub name: &'static str,
    /// Feeding site index, or `None` for the Nagano master.
    pub from: Option<usize>,
    /// Fed site index.
    pub to: usize,
    /// Healthy one-way shipping delay in seconds. The chained delays
    /// reproduce the per-site replication delays of
    /// [`crate::topology::SITES`] exactly (Schaumburg/Tokyo at +2 s,
    /// Columbus/Bethesda at +2+3 = +5 s).
    pub base_delay_secs: u64,
}

/// The five replication edges: master feeds Schaumburg and Tokyo,
/// Columbus and Bethesda chain off Schaumburg, and Tokyo can re-feed
/// Schaumburg for disaster recovery (pull-only; exercised when the
/// primary Nagano → Schaumburg edge is partitioned).
pub const REPLICATION_EDGES: [EdgeSpec; 5] = [
    EdgeSpec {
        name: "nagano->schaumburg",
        from: None,
        to: 0,
        base_delay_secs: 2,
    },
    EdgeSpec {
        name: "nagano->tokyo",
        from: None,
        to: 3,
        base_delay_secs: 2,
    },
    EdgeSpec {
        name: "schaumburg->columbus",
        from: Some(0),
        to: 1,
        base_delay_secs: 3,
    },
    EdgeSpec {
        name: "schaumburg->bethesda",
        from: Some(0),
        to: 2,
        base_delay_secs: 3,
    },
    EdgeSpec {
        name: "tokyo->schaumburg (DR re-feed)",
        from: Some(3),
        to: 0,
        base_delay_secs: 4,
    },
];

/// Each site's primary feed edge (index into [`REPLICATION_EDGES`]),
/// indexed by site.
pub const PRIMARY_FEED: [usize; 4] = [0, 2, 3, 1];

/// The Tokyo → Schaumburg disaster-recovery edge (pull-only; never used
/// for streaming while the primary feed is healthy).
pub const DR_EDGE: usize = 4;

/// Catch-up retry schedule over a faulted link: first retry after
/// [`CATCHUP_BASE_BACKOFF_SECS`], doubling each attempt, for at most
/// [`MAX_CATCHUP_RETRIES`] attempts; after that the replica goes
/// quiescent until the link heals (the heal reschedules it).
pub const CATCHUP_BASE_BACKOFF_SECS: u64 = 5;
/// See [`CATCHUP_BASE_BACKOFF_SECS`].
pub const MAX_CATCHUP_RETRIES: u32 = 8;

/// The scripted 3-day chaos schedule behind the `chaos` experiment: two
/// faults per day, escalating tiers — lossy and slow links on day one,
/// reordering and a trigger-monitor crash on day two, full partitions
/// (including the one that forces the Tokyo → Schaumburg disaster
/// recovery) on day three.
pub fn scripted_chaos_plan(start_day: u32) -> Vec<DataFaultPlanEntry> {
    let d = |offset: u32, h: u32, m: u32| SimTime::at(start_day + offset, h, m);
    let window = |kind: DataFaultKind, from: SimTime, to: SimTime| {
        [
            DataFaultPlanEntry {
                at: from,
                kind,
                up: false,
            },
            DataFaultPlanEntry {
                at: to,
                kind,
                up: true,
            },
        ]
    };
    let mut plan = Vec::new();
    // Tier 1 (day 1): degraded links.
    plan.extend(window(
        DataFaultKind::Link {
            edge: 0,
            fault: LinkFault::Lossy { drop_permille: 200 },
        },
        d(0, 9, 0),
        d(0, 11, 0),
    ));
    plan.extend(window(
        DataFaultKind::Link {
            edge: 1,
            fault: LinkFault::Delay { extra_secs: 45 },
        },
        d(0, 13, 0),
        d(0, 15, 0),
    ));
    // Tier 2 (day 2): reordering + a trigger-monitor crash.
    plan.extend(window(
        DataFaultKind::Link {
            edge: 2,
            fault: LinkFault::Reorder { jitter_secs: 30 },
        },
        d(1, 9, 0),
        d(1, 11, 0),
    ));
    plan.extend(window(
        DataFaultKind::MonitorCrash { site: 3 },
        d(1, 13, 0),
        d(1, 14, 0),
    ));
    // Tier 3 (day 3): partitions — the first forces Schaumburg onto the
    // Tokyo disaster-recovery re-feed.
    plan.extend(window(
        DataFaultKind::Link {
            edge: 0,
            fault: LinkFault::Partition,
        },
        d(2, 9, 0),
        d(2, 11, 0),
    ));
    plan.extend(window(
        DataFaultKind::Link {
            edge: 3,
            fault: LinkFault::Partition,
        },
        d(2, 13, 0),
        d(2, 14, 0),
    ));
    plan.sort_by_key(|e| e.at);
    plan
}

/// A serving-plane fault: the request → cache → regenerate path of one
/// site, as opposed to the replication data plane above (DESIGN.md §11).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServingFaultKind {
    /// Demand regeneration at `site` takes `factor ×` its modelled cost
    /// (an overloaded or thrashing backend; the paper's "pathologically
    /// long time to calculate" tier).
    RenderSlowdown {
        /// Site index (see [`crate::topology::SITES`]).
        site: usize,
        /// Cost multiplier while active (10.0 = ten times slower).
        factor: f64,
    },
    /// The render/db backend at `site` is unreachable: demand fills fail
    /// outright until the outage heals. Serving survives on cache hits,
    /// stale tombstones, and the circuit breaker's fail-fast path.
    BackendOutage {
        /// Site index.
        site: usize,
    },
    /// One member cache at `site` cold-restarts: live entries, stale
    /// tombstones, and in-flight coalescing state are all wiped — the
    /// stampede-on-restart scenario single-flight exists for. A point
    /// event: the crash *is* the fault, so plan entries carry `up: false`
    /// and no heal.
    CacheShardCrash {
        /// Site index.
        site: usize,
        /// Fleet member index within the site.
        node: usize,
    },
}

/// One scheduled serving-plane fault or heal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServingFaultPlanEntry {
    /// When it happens.
    pub at: SimTime,
    /// What faults or heals.
    pub kind: ServingFaultKind,
    /// `false` = fault starts, `true` = fault heals. Always `false` for
    /// [`ServingFaultKind::CacheShardCrash`] (a point event).
    pub up: bool,
}

/// The scripted one-day serving-fault schedule behind the `resilience`
/// experiment: a 10× render slowdown through the morning peak, two
/// backend outages, and one cache cold-restart in between — the
/// acceptance scenario of DESIGN.md §11 (≥ 99% non-error responses with
/// bounded staleness).
pub fn scripted_serving_plan(day: u32) -> Vec<ServingFaultPlanEntry> {
    let at = |h: u32, m: u32| SimTime::at(day, h, m);
    let window = |kind: ServingFaultKind, from: SimTime, to: SimTime| {
        [
            ServingFaultPlanEntry {
                at: from,
                kind,
                up: false,
            },
            ServingFaultPlanEntry {
                at: to,
                kind,
                up: true,
            },
        ]
    };
    let mut plan = Vec::new();
    // The morning peak regenerates ten times slower.
    plan.extend(window(
        ServingFaultKind::RenderSlowdown {
            site: 0,
            factor: 10.0,
        },
        at(9, 0),
        at(11, 0),
    ));
    // First backend outage, mid-afternoon.
    plan.extend(window(
        ServingFaultKind::BackendOutage { site: 0 },
        at(13, 0),
        at(13, 20),
    ));
    // A serving cache cold-restarts between the outages: the stampede
    // window the single-flight maps must flatten.
    plan.push(ServingFaultPlanEntry {
        at: at(14, 30),
        kind: ServingFaultKind::CacheShardCrash { site: 0, node: 1 },
        up: false,
    });
    // Second outage, evening, on a different site.
    plan.extend(window(
        ServingFaultKind::BackendOutage { site: 2 },
        at(16, 0),
        at(16, 15),
    ));
    plan.sort_by_key(|e| e.at);
    plan
}

/// Generate a random data-plane fault plan: `events_per_day` faults per
/// day across `start_day..=end_day`, each healing after 10 to 45
/// minutes. At most one fault is in flight per edge or monitor at a time
/// (a colliding draw is skipped), so heals are unambiguous. Deterministic
/// in `seed`; the `soak` experiment mixes this with the routing-tier
/// [`random_soak_plan`](crate::sim::random_soak_plan).
pub fn random_fault_plan(
    start_day: u32,
    end_day: u32,
    events_per_day: u32,
    seed: u64,
) -> Vec<DataFaultPlanEntry> {
    let mut rng = DeterministicRng::seed_from_u64(seed);
    let mut plan = Vec::new();
    // Busy-until minute per edge (5) and per monitor (4).
    let mut edge_busy: [i64; 5] = [-1; 5];
    let mut monitor_busy: [i64; 4] = [-1; 4];
    for day in start_day..=end_day {
        for _ in 0..events_per_day {
            let at_min = (day as u64 - 1) * 1440 + rng.index(1380) as u64;
            // Window 10..=45 min; 4-in-5 draws fault a link, 1-in-5
            // crashes a monitor.
            let duration = 10 + rng.index(36) as u64;
            let kind = if rng.index(5) < 4 {
                let edge = rng.index(4); // primary edges only; DR stays up
                let fault = match rng.index(4) {
                    0 => LinkFault::Lossy {
                        drop_permille: 100 + rng.index(301) as u16,
                    },
                    1 => LinkFault::Delay {
                        extra_secs: 15 + rng.range_u64(0, 45),
                    },
                    2 => LinkFault::Reorder {
                        jitter_secs: 5 + rng.range_u64(0, 25),
                    },
                    _ => LinkFault::Partition,
                };
                if (at_min as i64) <= edge_busy[edge] {
                    continue;
                }
                edge_busy[edge] = (at_min + duration) as i64;
                DataFaultKind::Link { edge, fault }
            } else {
                let site = rng.index(4);
                if (at_min as i64) <= monitor_busy[site] {
                    continue;
                }
                monitor_busy[site] = (at_min + duration) as i64;
                DataFaultKind::MonitorCrash { site }
            };
            plan.push(DataFaultPlanEntry {
                at: SimTime::from_mins(at_min),
                kind,
                up: false,
            });
            plan.push(DataFaultPlanEntry {
                at: SimTime::from_mins(at_min + duration),
                kind,
                up: true,
            });
        }
    }
    plan.sort_by_key(|e| e.at);
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_reproduce_the_per_site_replication_delays() {
        use crate::topology::SITES;
        for (s, spec) in SITES.iter().enumerate() {
            let mut delay = 0;
            let mut site = s;
            // Walk the primary-feed chain back to the master.
            loop {
                let edge = REPLICATION_EDGES[PRIMARY_FEED[site]];
                assert_eq!(edge.to, site);
                delay += edge.base_delay_secs;
                match edge.from {
                    Some(up) => site = up,
                    None => break,
                }
            }
            assert_eq!(
                delay, spec.replication_delay_secs,
                "site {} chained delay",
                spec.name
            );
        }
    }

    #[test]
    fn scripted_plan_is_paired_and_ordered() {
        let plan = scripted_chaos_plan(3);
        assert_eq!(plan.len(), 12, "six faults, each with a heal");
        assert!(plan.windows(2).all(|w| w[0].at <= w[1].at));
        // Every fault entry has a matching heal of the same kind.
        for e in plan.iter().filter(|e| !e.up) {
            assert!(
                plan.iter().any(|h| h.up && h.kind == e.kind && h.at > e.at),
                "unhealed fault {e:?}"
            );
        }
        // The DR tier is present: a partition of the primary Schaumburg feed.
        assert!(plan.iter().any(|e| matches!(
            e.kind,
            DataFaultKind::Link {
                edge: 0,
                fault: LinkFault::Partition
            }
        )));
    }

    #[test]
    fn serving_plan_matches_the_acceptance_scenario() {
        let plan = scripted_serving_plan(5);
        assert!(plan.windows(2).all(|w| w[0].at <= w[1].at));
        // One 10× render slowdown.
        let slowdowns: Vec<_> = plan
            .iter()
            .filter(|e| matches!(e.kind, ServingFaultKind::RenderSlowdown { .. }))
            .collect();
        assert_eq!(slowdowns.len(), 2, "one slowdown window (fault + heal)");
        assert!(slowdowns.iter().any(
            |e| matches!(e.kind, ServingFaultKind::RenderSlowdown { factor, .. } if factor == 10.0)
        ));
        // Two backend outages.
        assert_eq!(
            plan.iter()
                .filter(|e| matches!(e.kind, ServingFaultKind::BackendOutage { .. }) && !e.up)
                .count(),
            2
        );
        // One shard crash, a point event with no heal.
        let crashes: Vec<_> = plan
            .iter()
            .filter(|e| matches!(e.kind, ServingFaultKind::CacheShardCrash { .. }))
            .collect();
        assert_eq!(crashes.len(), 1);
        assert!(!crashes[0].up);
        // Every windowed fault has a later matching heal.
        for e in plan
            .iter()
            .filter(|e| !e.up && !matches!(e.kind, ServingFaultKind::CacheShardCrash { .. }))
        {
            assert!(
                plan.iter().any(|h| h.up && h.kind == e.kind && h.at > e.at),
                "unhealed serving fault {e:?}"
            );
        }
        // All of it lands inside the requested day.
        assert!(plan
            .iter()
            .all(|e| e.at >= SimTime::at(5, 0, 0) && e.at < SimTime::at(6, 0, 0)));
    }

    #[test]
    fn random_plan_is_deterministic_and_non_overlapping() {
        let a = random_fault_plan(2, 4, 5, 77);
        let b = random_fault_plan(2, 4, 5, 77);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
        // Rebuild per-target windows and check no overlap.
        for target in 0..5 {
            let mut windows: Vec<(SimTime, SimTime)> = Vec::new();
            for e in a.iter().filter(|e| {
                matches!(e.kind, DataFaultKind::Link { edge, .. } if edge == target) && !e.up
            }) {
                let heal = a
                    .iter()
                    .find(|h| h.up && h.kind == e.kind && h.at > e.at)
                    .expect("paired heal");
                windows.push((e.at, heal.at));
            }
            windows.sort_by_key(|w| w.0);
            assert!(
                windows.windows(2).all(|w| w[0].1 < w[1].0),
                "edge {target} fault windows overlap"
            );
        }
        let c = random_fault_plan(2, 4, 5, 78);
        assert_ne!(a, c, "different seed, different plan");
    }
}
