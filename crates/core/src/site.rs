//! The [`ServingSite`] facade: one SP2-complex worth of the production
//! system — database, renderer, trigger monitor, and a fleet of serving
//! caches — behind a small API.

use std::sync::Arc;

use bytes::Bytes;

use nagano_cache::{CacheConfig, CacheFleet, StatsSnapshot};
use nagano_db::{seed_games, EventId, GamesConfig, OlympicDb};
use nagano_httpd::{Handler, Request, Response, Server, ServerConfig};
use nagano_odg::StalenessPolicy;
use nagano_pagegen::{PageKey, PageRegistry, Renderer};
use nagano_trigger::{ConsistencyPolicy, TriggerMonitor, TriggerRunner, TriggerStatsSnapshot};

/// Configuration for a serving site.
#[derive(Debug, Clone)]
pub struct SiteConfig {
    /// Synthetic Games dimensions.
    pub games: GamesConfig,
    /// Number of serving caches (the production SP2 had eight serving
    /// UPs per frame).
    pub fleet_size: usize,
    /// Per-cache configuration.
    pub cache: CacheConfig,
    /// Consistency policy for the trigger monitor.
    pub policy: ConsistencyPolicy,
    /// DUP staleness policy.
    pub staleness: StalenessPolicy,
    /// When set, page generation burns real CPU at `cost × scale`
    /// (throughput experiments).
    pub cpu_scale: Option<f64>,
    /// Warm every page and build the full ODG at construction (the
    /// production prefetch). Disable to study cold-start behaviour.
    pub prewarm: bool,
}

impl SiteConfig {
    /// Paper-scale Games, eight serving caches, update-in-place.
    pub fn full() -> Self {
        SiteConfig {
            games: GamesConfig::full(),
            fleet_size: 8,
            cache: CacheConfig::default(),
            policy: ConsistencyPolicy::UpdateInPlace,
            staleness: StalenessPolicy::Strict,
            cpu_scale: None,
            prewarm: true,
        }
    }

    /// Small Games for tests and examples.
    pub fn small() -> Self {
        SiteConfig {
            games: GamesConfig::small(),
            fleet_size: 2,
            ..Self::full()
        }
    }
}

/// A page served by the site.
#[derive(Debug, Clone)]
pub struct ServedPage {
    /// The page body.
    pub body: Bytes,
    /// Whether it came from the cache (vs generated on demand).
    pub cache_hit: bool,
    /// Server-side cost in modelled CPU milliseconds.
    pub cost_ms: f64,
    /// Cache version of the entry (1 on first insert, bumped on every
    /// in-place update); doubles as the HTTP entity tag.
    pub version: u64,
}

impl ServedPage {
    /// The entity tag for this representation.
    pub fn etag(&self) -> String {
        format!("\"v{}\"", self.version)
    }
}

/// Result of one [`ServingSite::pump`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PumpOutcome {
    /// Transactions processed.
    pub txns: u64,
    /// Pages regenerated in place.
    pub regenerated: u64,
    /// Pages invalidated.
    pub invalidated: u64,
}

/// Point-in-time metrics for the site.
#[derive(Debug, Clone, Copy)]
pub struct SiteMetrics {
    /// Aggregated cache statistics over the fleet.
    pub cache: StatsSnapshot,
    /// Trigger-monitor statistics.
    pub trigger: TriggerStatsSnapshot,
    /// Object dependence graph size (nodes, edges).
    pub odg: (usize, usize),
    /// Number of pages in the registry.
    pub pages: usize,
}

/// One serving complex: database + trigger monitor + cache fleet.
pub struct ServingSite {
    db: Arc<OlympicDb>,
    registry: Arc<PageRegistry>,
    monitor: Arc<TriggerMonitor>,
    fleet: Arc<CacheFleet>,
    txn_rx: crossbeam::channel::Receiver<Arc<nagano_db::Transaction>>,
    marquee: (EventId, EventId),
}

impl ServingSite {
    /// Seed the Games, build the registry, construct the trigger monitor,
    /// and (by default) prewarm every page.
    pub fn build(config: SiteConfig) -> Self {
        let db = Arc::new(OlympicDb::new());
        let marquee = seed_games(&db, &config.games);
        let registry = Arc::new(PageRegistry::build(&db, config.games.days));
        let fleet = Arc::new(CacheFleet::new(config.fleet_size, config.cache.clone()));
        let mut renderer = Renderer::new(Arc::clone(&db));
        if let Some(scale) = config.cpu_scale {
            renderer = renderer.with_simulated_cpu(scale);
        }
        let monitor = Arc::new(TriggerMonitor::new(
            renderer,
            Arc::clone(&fleet),
            Arc::clone(&registry),
            config.policy,
        ));
        monitor.set_staleness_policy(config.staleness);
        let txn_rx = db.subscribe();
        if config.prewarm {
            monitor.prewarm();
        }
        ServingSite {
            db,
            registry,
            monitor,
            fleet,
            txn_rx,
            marquee,
        }
    }

    /// The site database (mutations here feed the trigger monitor).
    pub fn db(&self) -> &Arc<OlympicDb> {
        &self.db
    }

    /// The page registry.
    pub fn registry(&self) -> &Arc<PageRegistry> {
        &self.registry
    }

    /// The trigger monitor.
    pub fn monitor(&self) -> &Arc<TriggerMonitor> {
        &self.monitor
    }

    /// The serving cache fleet.
    pub fn fleet(&self) -> &Arc<CacheFleet> {
        &self.fleet
    }

    /// The marquee event ids `(figure_skating, ski_jumping)` pinned by the
    /// seeder.
    pub fn marquee_events(&self) -> (EventId, EventId) {
        self.marquee
    }

    /// Serve one request path from serving node `node` — the FastCGI
    /// server-program path: check the cache; on a miss, generate, cache
    /// locally, and register dependencies. Returns `None` for paths that
    /// are not part of the site.
    pub fn handle(&self, node: usize, path: &str) -> Option<ServedPage> {
        let key = PageKey::parse(path)?;
        match self.fleet.get_from(node, &key.to_url()) {
            Some(page) => Some(ServedPage {
                body: page.body,
                cache_hit: true,
                cost_ms: 0.5,
                version: page.version,
            }),
            None => {
                let out = self.monitor.demand_fill(node, key);
                let version = self
                    .fleet
                    .member(node)
                    .peek(&key.to_url())
                    .map(|p| p.version)
                    .unwrap_or(1);
                Some(ServedPage {
                    body: out.body,
                    cache_hit: false,
                    cost_ms: out.cost_ms,
                    version,
                })
            }
        }
    }

    /// Synchronously process every transaction committed since the last
    /// pump (tests and replay harnesses; live deployments use
    /// [`ServingSite::spawn_trigger_runner`]).
    pub fn pump(&self) -> PumpOutcome {
        let mut outcome = PumpOutcome::default();
        while let Ok(txn) = self.txn_rx.try_recv() {
            let o = self.monitor.process_txn(&txn);
            outcome.txns += 1;
            outcome.regenerated += o.regenerated.len() as u64;
            outcome.invalidated += o.invalidated.len() as u64;
        }
        outcome
    }

    /// Spawn the background trigger monitor thread over a fresh
    /// subscription (live-deployment shape). Updates committed *after*
    /// this call are processed automatically until the runner is dropped.
    pub fn spawn_trigger_runner(&self) -> TriggerRunner {
        TriggerRunner::spawn(Arc::clone(&self.monitor), self.db.subscribe())
    }

    /// An HTTP handler serving this site from node `node`, with
    /// ETag/If-None-Match revalidation: the cache version is the entity
    /// tag, so browser caches revalidate dynamic pages with a 55-byte 304
    /// instead of a 55 KB transfer — until DUP bumps the version.
    pub fn http_handler(self: &Arc<Self>, node: usize) -> Arc<dyn Handler> {
        let site = Arc::clone(self);
        Arc::new(move |req: &Request| match site.handle(node, &req.path) {
            Some(page) => {
                let etag = page.etag();
                if req.if_none_match.as_deref() == Some(etag.as_str()) {
                    Response::not_modified(etag)
                } else {
                    Response::html(page.body).with_etag(etag)
                }
            }
            None => Response::not_found(),
        })
    }

    /// Bind an HTTP server for serving node `node`.
    pub fn serve_http(
        self: &Arc<Self>,
        addr: &str,
        node: usize,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        Server::bind(addr, self.http_handler(node), config)
    }

    /// The `/status` JSON document: registry size, ODG dimensions,
    /// trigger progress (transactions, replication watermark, deferred-
    /// regeneration queue depth and shed count), and per-node cache
    /// occupancy. Hand-assembled with deterministic key order so same-
    /// state sites produce byte-identical documents.
    pub fn status_json(&self) -> String {
        let trig = self.monitor.stats().snapshot();
        let (odg_nodes, odg_edges) = self.monitor.graph_size();
        let mut out = String::with_capacity(512);
        out.push_str(&format!(
            "{{\"pages\":{},\"odg\":{{\"nodes\":{},\"edges\":{}}},\
             \"trigger\":{{\"txns\":{},\"watermark\":{},\"deferred_depth\":{},\
             \"deferred_shed\":{}}},\"caches\":[",
            self.registry.len(),
            odg_nodes,
            odg_edges,
            trig.txns,
            self.monitor.watermark(),
            trig.deferred_depth,
            trig.deferred_shed,
        ));
        for (i, member) in self.fleet.members().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let s = member.stats();
            out.push_str(&format!(
                "{{\"node\":{},\"entries\":{},\"bytes\":{},\"hits\":{},\"misses\":{}}}",
                i,
                member.len(),
                member.bytes(),
                s.hits,
                s.misses,
            ));
        }
        out.push_str("]}");
        out
    }

    /// The page handler for `node` wrapped in an [`AdminPlane`]:
    /// `/metrics` scrapes `registry` as Prometheus text, `/healthz`
    /// probes liveness, `/status` returns [`ServingSite::status_json`],
    /// and every other path serves pages as [`ServingSite::http_handler`].
    pub fn admin_handler(
        self: &Arc<Self>,
        node: usize,
        registry: Arc<nagano_telemetry::MetricsRegistry>,
    ) -> Arc<dyn Handler> {
        let site = Arc::clone(self);
        let status: nagano_httpd::StatusFn = Arc::new(move || site.status_json());
        Arc::new(
            nagano_httpd::AdminPlane::new(registry, status).with_inner(self.http_handler(node)),
        )
    }

    /// Bind an HTTP server for serving node `node` with the admin plane
    /// attached, scrapeable over TCP while the site serves page traffic.
    pub fn serve_admin_http(
        self: &Arc<Self>,
        addr: &str,
        node: usize,
        registry: Arc<nagano_telemetry::MetricsRegistry>,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        Server::bind(addr, self.admin_handler(node, registry), config)
    }

    /// Bring a recovered serving node back: resynchronise its cache from
    /// a healthy peer so it rejoins rotation warm and version-consistent.
    /// Returns the number of pages copied.
    pub fn recover_node(&self, node: usize) -> usize {
        let donor = (0..self.fleet.len())
            .find(|&i| i != node)
            .expect("fleet has another member");
        self.fleet.resync(donor, node)
    }

    /// Register this site's live metric cells — trigger counters, the
    /// propagation-latency histogram, and per-node cache statistics —
    /// into a telemetry registry. Counters appear under the
    /// `nagano_trigger_*` / `nagano_cache_*` names with the given labels
    /// (cache cells additionally carry a `node` label per fleet member),
    /// so one registry can hold several sites distinguished by label.
    pub fn bind_telemetry(
        &self,
        registry: &nagano_telemetry::MetricsRegistry,
        labels: &[(&str, &str)],
    ) {
        self.monitor.stats().bind(registry, labels);
        for (i, member) in self.fleet.members().iter().enumerate() {
            let node = i.to_string();
            let mut node_labels: Vec<(&str, &str)> = labels.to_vec();
            node_labels.push(("node", node.as_str()));
            member.stats_handle().bind(registry, &node_labels);
        }
    }

    /// Current metrics.
    pub fn metrics(&self) -> SiteMetrics {
        SiteMetrics {
            cache: self.fleet.aggregate_stats(),
            trigger: self.monitor.stats().snapshot(),
            odg: self.monitor.graph_size(),
            pages: self.registry.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site() -> ServingSite {
        ServingSite::build(SiteConfig::small())
    }

    #[test]
    fn build_prewarms_everything() {
        let s = site();
        let m = s.metrics();
        assert_eq!(m.cache.inserts as usize, m.pages * 2); // 2 fleet members
        assert!(m.odg.0 > 0 && m.odg.1 > 0);
    }

    #[test]
    fn handle_serves_cache_hits() {
        let s = site();
        let page = s.handle(0, "/medals").unwrap();
        assert!(page.cache_hit);
        assert!(page.cost_ms < 1.0);
        assert!(s.handle(1, "/day/3/").unwrap().cache_hit);
        assert!(s.handle(0, "/nonexistent").is_none());
    }

    #[test]
    fn cold_site_demand_fills() {
        let mut cfg = SiteConfig::small();
        cfg.prewarm = false;
        let s = ServingSite::build(cfg);
        let first = s.handle(0, "/medals").unwrap();
        assert!(!first.cache_hit);
        assert!(first.cost_ms > 10.0);
        let second = s.handle(0, "/medals").unwrap();
        assert!(second.cache_hit);
        // Demand fill is node-local.
        let other_node = s.handle(1, "/medals").unwrap();
        assert!(!other_node.cache_hit);
    }

    #[test]
    fn update_flow_refreshes_in_place() {
        let s = site();
        let ev = s.db().events()[0].clone();
        let before = s.handle(0, &PageKey::Event(ev.id).to_url()).unwrap();
        let athletes = s.db().athletes_of_sport(ev.sport);
        s.db().record_results(
            ev.id,
            &[
                (athletes[0].id, 10.0),
                (athletes[1].id, 9.0),
                (athletes[2].id, 8.0),
            ],
            true,
            ev.day,
        );
        let outcome = s.pump();
        assert_eq!(outcome.txns, 1);
        assert!(outcome.regenerated > 5);
        assert_eq!(outcome.invalidated, 0);
        let after = s.handle(0, &PageKey::Event(ev.id).to_url()).unwrap();
        assert!(after.cache_hit, "updated in place, not invalidated");
        assert_ne!(after.body, before.body);
        // Pump with nothing queued is a no-op.
        assert_eq!(s.pump(), PumpOutcome::default());
    }

    #[test]
    fn http_end_to_end() {
        use nagano_httpd::HttpClient;
        let s = Arc::new(site());
        let server = s
            .serve_http("127.0.0.1:0", 0, ServerConfig::default())
            .unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        let (code, body) = client.get("/medals").unwrap();
        assert_eq!(code, 200);
        assert!(body.len() > 5_000);
        let (code, _) = client.get("/bogus/path").unwrap();
        assert_eq!(code, 404);
        drop(client);
        server.shutdown();
    }

    #[test]
    fn conditional_get_revalidates_with_304_until_dup_updates() {
        use nagano_httpd::HttpClient;
        let s = Arc::new(site());
        let server = s
            .serve_http("127.0.0.1:0", 0, ServerConfig::default())
            .unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        // First fetch: 200 with an ETag.
        let (code, body, etag) = client.get_conditional("/medals", None).unwrap();
        assert_eq!(code, 200);
        let etag = etag.expect("etag present");
        assert!(!body.is_empty());
        // Revalidation: 304, empty body — the browser-cache path that
        // saved a 55 KB modem transfer in 1998.
        let (code, body, _) = client.get_conditional("/medals", Some(&etag)).unwrap();
        assert_eq!(code, 304);
        assert!(body.is_empty());
        // An update bumps the cache version → revalidation now misses.
        let ev = s.db().events()[0].clone();
        let a = s.db().athletes_of_sport(ev.sport)[0].clone();
        s.db().record_results(ev.id, &[(a.id, 9.0)], true, ev.day);
        s.pump();
        let (code, body, new_etag) = client.get_conditional("/medals", Some(&etag)).unwrap();
        assert_eq!(code, 200);
        assert!(!body.is_empty());
        assert_ne!(new_etag, Some(etag));
        drop(client);
        server.shutdown();
    }

    #[test]
    fn marquee_events_exposed() {
        let s = site();
        let (fs, sj) = s.marquee_events();
        assert!(s.db().event(fs).is_some());
        assert!(s.db().event(sj).is_some());
    }

    #[test]
    fn recovered_node_rejoins_warm_and_consistent() {
        let s = site();
        // Node 1 "fails": loses its cache.
        s.fleet().member(1).clear();
        assert!(
            !s.handle(1, "/medals").unwrap().cache_hit,
            "cold after failure"
        );
        // Recovery resyncs from node 0.
        let copied = s.recover_node(1);
        assert_eq!(copied, s.registry().len());
        let a = s.handle(0, "/day/3/").unwrap();
        let b = s.handle(1, "/day/3/").unwrap();
        assert!(b.cache_hit);
        assert_eq!(a.body, b.body);
        assert_eq!(a.version, b.version, "entity tags agree after resync");
    }

    #[test]
    fn metrics_track_activity() {
        let s = site();
        s.handle(0, "/medals");
        s.handle(0, "/medals");
        let m = s.metrics();
        assert_eq!(m.cache.hits, 2);
        assert_eq!(m.trigger.txns, 0);
    }

    #[test]
    fn bind_telemetry_exposes_live_cells() {
        use nagano_telemetry::{prometheus_text, MetricsRegistry};
        let s = site();
        let registry = MetricsRegistry::new();
        s.bind_telemetry(&registry, &[("site", "test")]);
        s.handle(0, "/medals");
        s.handle(0, "/medals");
        let hits = registry.counter(
            "nagano_cache_hits_total",
            &[("site", "test"), ("node", "0")],
        );
        assert_eq!(hits.get(), 2);
        let text = prometheus_text(&registry);
        assert!(text.contains("nagano_cache_hits_total{node=\"0\",site=\"test\"} 2"));
        assert!(text.contains("nagano_trigger_txns_total{site=\"test\"} 0"));
    }

    #[test]
    fn status_json_reports_live_state() {
        let s = site();
        s.handle(0, "/medals");
        let doc = s.status_json();
        assert!(doc.starts_with(&format!("{{\"pages\":{}", s.registry().len())));
        assert!(doc.contains("\"deferred_depth\":0"));
        assert!(doc.contains("\"node\":0") && doc.contains("\"node\":1"));
        assert!(doc.contains("\"hits\":1"));
        // Deterministic: identical state, identical bytes.
        assert_eq!(doc, s.status_json());
    }

    #[test]
    fn admin_handler_serves_metrics_status_and_pages() {
        use nagano_httpd::HttpClient;
        use nagano_telemetry::MetricsRegistry;
        let s = Arc::new(site());
        let registry = Arc::new(MetricsRegistry::new());
        s.bind_telemetry(&registry, &[("site", "t")]);
        let server = s
            .serve_admin_http("127.0.0.1:0", 0, registry, ServerConfig::default())
            .unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        let (code, body) = client.get("/medals").unwrap();
        assert_eq!(code, 200);
        assert!(body.len() > 5_000);
        let (code, body) = client.get("/metrics").unwrap();
        assert_eq!(code, 200);
        let text = String::from_utf8(body.to_vec()).unwrap();
        assert!(text.contains("nagano_cache_hits_total"));
        let (code, body) = client.get("/status").unwrap();
        assert_eq!(code, 200);
        assert!(body.starts_with(b"{\"pages\":"));
        let (code, body) = client.get("/healthz").unwrap();
        assert_eq!(code, 200);
        assert_eq!(&body[..], b"ok\n");
        drop(client);
        server.shutdown();
    }
}
