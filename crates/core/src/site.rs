//! The [`ServingSite`] facade: one SP2-complex worth of the production
//! system — database, renderer, trigger monitor, and a fleet of serving
//! caches — behind a small API.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use parking_lot::Mutex;

use nagano_cache::{CacheConfig, CacheFleet, FlightOutcome, StatsSnapshot};
use nagano_db::{seed_games, EventId, GamesConfig, OlympicDb};
use nagano_httpd::{Handler, Request, Response, RetryAfterHint, Server, ServerConfig};
use nagano_odg::StalenessPolicy;
use nagano_pagegen::{PageKey, PageRegistry, Renderer};
use nagano_trigger::{ConsistencyPolicy, TriggerMonitor, TriggerRunner, TriggerStatsSnapshot};

use crate::resilience::CircuitBreaker;

thread_local! {
    /// Per-worker URL-formatting buffer for the request hot path:
    /// [`ServingSite::respond`] renders the cache key into this instead
    /// of allocating a `String` per request.
    static URL_SCRATCH: std::cell::RefCell<String> =
        std::cell::RefCell::new(String::with_capacity(32));
}

/// Parse a `"vN"` entity tag back to the cache version it names;
/// `None` for any other validator shape (weak tags, junk).
fn etag_version(etag: &str) -> Option<u64> {
    etag.strip_prefix("\"v")?.strip_suffix('"')?.parse().ok()
}

/// Configuration for a serving site.
#[derive(Debug, Clone)]
pub struct SiteConfig {
    /// Synthetic Games dimensions.
    pub games: GamesConfig,
    /// Number of serving caches (the production SP2 had eight serving
    /// UPs per frame).
    pub fleet_size: usize,
    /// Per-cache configuration.
    pub cache: CacheConfig,
    /// Consistency policy for the trigger monitor.
    pub policy: ConsistencyPolicy,
    /// DUP staleness policy.
    pub staleness: StalenessPolicy,
    /// When set, page generation burns real CPU at `cost × scale`
    /// (throughput experiments).
    pub cpu_scale: Option<f64>,
    /// Warm every page and build the full ODG at construction (the
    /// production prefetch). Disable to study cold-start behaviour.
    pub prewarm: bool,
    /// Preserialise each cache entry's HTTP head at fill time so hits
    /// skip header formatting entirely. Disable to measure the
    /// pre-rearchitecture baseline (`BENCH_serving.json`).
    pub prebuilt_heads: bool,
    /// Per-request latency budget in seconds: a miss that coalesces onto
    /// another node-local regeneration waits at most this long before
    /// falling back to a stale copy (DESIGN.md §11).
    pub request_budget_secs: f64,
    /// Serve pages as compositions over an independently cached fragment
    /// store (DESIGN.md §14): dirty fragments re-render once, embedding
    /// pages recompose, and demand fills return the skeleton/fragment
    /// slices for vectored writes. Off by default (legacy whole-page
    /// rendering).
    pub fragment_mode: bool,
}

impl SiteConfig {
    /// Paper-scale Games, eight serving caches, update-in-place.
    pub fn full() -> Self {
        SiteConfig {
            games: GamesConfig::full(),
            fleet_size: 8,
            cache: CacheConfig::default(),
            policy: ConsistencyPolicy::UpdateInPlace,
            staleness: StalenessPolicy::Strict,
            cpu_scale: None,
            prewarm: true,
            prebuilt_heads: true,
            request_budget_secs: 2.0,
            fragment_mode: false,
        }
    }

    /// Small Games for tests and examples.
    pub fn small() -> Self {
        SiteConfig {
            games: GamesConfig::small(),
            fleet_size: 2,
            ..Self::full()
        }
    }
}

/// A page served by the site.
#[derive(Debug, Clone)]
pub struct ServedPage {
    /// The page body.
    pub body: Bytes,
    /// Whether it came from the cache (vs generated on demand).
    pub cache_hit: bool,
    /// Server-side cost in modelled CPU milliseconds.
    pub cost_ms: f64,
    /// Cache version of the entry (1 on first insert, bumped on every
    /// in-place update); doubles as the HTTP entity tag.
    pub version: u64,
    /// Whether the body is a tombstoned stale copy served because fresh
    /// regeneration was unavailable within budget (serve-stale-on-error).
    pub stale: bool,
    /// For fragment-mode demand fills: the skeleton and fragment slices
    /// whose concatenation is `body`, each a refcounted view of a cache
    /// buffer, ready for one vectored write (DESIGN.md §14).
    pub parts: Option<Vec<Bytes>>,
}

impl ServedPage {
    /// The entity tag for this representation.
    pub fn etag(&self) -> String {
        format!("\"v{}\"", self.version)
    }
}

/// Result of one [`ServingSite::pump`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PumpOutcome {
    /// Transactions processed.
    pub txns: u64,
    /// Pages regenerated in place.
    pub regenerated: u64,
    /// Pages invalidated.
    pub invalidated: u64,
}

/// Point-in-time metrics for the site.
#[derive(Debug, Clone, Copy)]
pub struct SiteMetrics {
    /// Aggregated cache statistics over the fleet.
    pub cache: StatsSnapshot,
    /// Trigger-monitor statistics.
    pub trigger: TriggerStatsSnapshot,
    /// Object dependence graph size (nodes, edges).
    pub odg: (usize, usize),
    /// Number of pages in the registry.
    pub pages: usize,
}

/// One serving complex: database + trigger monitor + cache fleet.
pub struct ServingSite {
    db: Arc<OlympicDb>,
    registry: Arc<PageRegistry>,
    monitor: Arc<TriggerMonitor>,
    fleet: Arc<CacheFleet>,
    txn_rx: crossbeam::channel::Receiver<Arc<nagano_db::Transaction>>,
    marquee: (EventId, EventId),
    /// Breaker around the render/db backend, visible in `/status`. The
    /// live site has no wall clock: breaker time is the request tick
    /// count, so `open_secs: 10` means "fail fast for ten requests".
    breaker: Mutex<CircuitBreaker>,
    /// Monotonic request counter doubling as the breaker's clock.
    ticks: AtomicU64,
    request_budget_secs: f64,
    /// Live `Retry-After` advisory for shed 503s, derived from breaker
    /// state; installed into servers bound via [`ServingSite::serve_http`].
    retry_hint: RetryAfterHint,
    /// Healthy-state `Retry-After` floor (the bound server's static
    /// `retry_after_secs`), advertised while the breaker is closed.
    retry_floor: AtomicU64,
}

impl ServingSite {
    /// Seed the Games, build the registry, construct the trigger monitor,
    /// and (by default) prewarm every page.
    pub fn build(config: SiteConfig) -> Self {
        let db = Arc::new(OlympicDb::new());
        let marquee = seed_games(&db, &config.games);
        let registry = Arc::new(PageRegistry::build(&db, config.games.days));
        let fleet = Arc::new(CacheFleet::new(config.fleet_size, config.cache.clone()));
        if config.prebuilt_heads {
            // Installed before the prewarm below so every prefetched page
            // carries a ready-to-send head from its first fill.
            fleet.set_head_builder(Arc::new(|body: &Bytes, version: u64| {
                let (pre, post) = nagano_httpd::prebuilt_html_head(body.len(), version);
                nagano_cache::PrebuiltHead { pre, post }
            }));
        }
        let mut renderer = Renderer::new(Arc::clone(&db));
        if let Some(scale) = config.cpu_scale {
            renderer = renderer.with_simulated_cpu(scale);
        }
        let mut monitor = TriggerMonitor::new(
            renderer,
            Arc::clone(&fleet),
            Arc::clone(&registry),
            config.policy,
        );
        if config.fragment_mode {
            monitor = monitor.with_fragments(Arc::new(nagano_cache::FragmentStore::new()));
        }
        let monitor = Arc::new(monitor);
        monitor.set_staleness_policy(config.staleness);
        let txn_rx = db.subscribe();
        if config.prewarm {
            monitor.prewarm();
        }
        ServingSite {
            db,
            registry,
            monitor,
            fleet,
            txn_rx,
            marquee,
            breaker: Mutex::new(CircuitBreaker::default()),
            ticks: AtomicU64::new(0),
            request_budget_secs: config.request_budget_secs,
            retry_hint: RetryAfterHint::new(2),
            retry_floor: AtomicU64::new(2),
        }
    }

    /// The site database (mutations here feed the trigger monitor).
    pub fn db(&self) -> &Arc<OlympicDb> {
        &self.db
    }

    /// The page registry.
    pub fn registry(&self) -> &Arc<PageRegistry> {
        &self.registry
    }

    /// The trigger monitor.
    pub fn monitor(&self) -> &Arc<TriggerMonitor> {
        &self.monitor
    }

    /// The serving cache fleet.
    pub fn fleet(&self) -> &Arc<CacheFleet> {
        &self.fleet
    }

    /// The marquee event ids `(figure_skating, ski_jumping)` pinned by the
    /// seeder.
    pub fn marquee_events(&self) -> (EventId, EventId) {
        self.marquee
    }

    /// Serve one request path from serving node `node` — the FastCGI
    /// server-program path: check the cache; on a miss, coalesce onto any
    /// in-flight regeneration of the same page (single-flight), otherwise
    /// generate, cache locally, and register dependencies. When the
    /// breaker is open or a coalesced wait overruns the request budget,
    /// a tombstoned stale copy is served instead (`stale: true`).
    /// Returns `None` for paths that are not part of the site.
    pub fn handle(&self, node: usize, path: &str) -> Option<ServedPage> {
        let key = PageKey::parse(path)?;
        let url = key.to_url();
        let now = self.ticks.fetch_add(1, Relaxed) as f64;
        if let Some(page) = self.fleet.get_from(node, &url) {
            return Some(ServedPage {
                body: page.body,
                cache_hit: true,
                cost_ms: 0.5,
                version: page.version,
                stale: false,
                parts: None,
            });
        }
        Some(self.handle_miss(node, key, &url, now))
    }

    /// The slow path shared by [`ServingSite::handle`] and
    /// [`ServingSite::respond`]: single-flight coalescing, breaker
    /// admission, serve-stale fallback, demand regeneration. `now` is the
    /// request tick observed before the cache lookup.
    fn handle_miss(&self, node: usize, key: PageKey, url: &str, now: f64) -> ServedPage {
        let member = self.fleet.member(node);
        let budget = Duration::from_secs_f64(self.request_budget_secs);
        match member.join_or_lead(url, budget) {
            FlightOutcome::Joined(page) => ServedPage {
                body: page.body,
                cache_hit: false,
                cost_ms: 0.5,
                version: page.version,
                stale: false,
                parts: None,
            },
            FlightOutcome::TimedOut => {
                // The leader overran the budget or failed: fall back to
                // a stale copy; with none, regenerate ourselves —
                // availability over latency.
                match member.serve_stale(url) {
                    Some(copy) => ServedPage {
                        body: copy.body,
                        cache_hit: false,
                        cost_ms: 0.5,
                        version: copy.version,
                        stale: true,
                        parts: None,
                    },
                    None => self.regenerate(node, key, url),
                }
            }
            FlightOutcome::Lead(token) => {
                // The guard is a statement temporary: it must be gone
                // before `regenerate` re-locks the breaker below.
                let admitted = self.breaker.lock().allow(now);
                if !admitted {
                    member.complete_flight(token, None);
                    if let Some(copy) = member.serve_stale(url) {
                        return ServedPage {
                            body: copy.body,
                            cache_hit: false,
                            cost_ms: 0.5,
                            version: copy.version,
                            stale: true,
                            parts: None,
                        };
                    }
                    // No stale copy to fail fast with: attempt the
                    // render anyway rather than turn away a request the
                    // backend might still serve.
                    return self.regenerate(node, key, url);
                }
                let page = self.regenerate(node, key, url);
                member.complete_flight(token, member.peek(url));
                page
            }
        }
    }

    /// Serve one parsed HTTP request from serving node `node` — the
    /// zero-copy hot path behind [`ServingSite::http_handler`]. A cache
    /// hit whose entry carries a preserialised head becomes a prebuilt
    /// [`Response`]: no header formatting, no ETag `String`, and the body
    /// is a refcount bump of the cached buffer. A matching
    /// `If-None-Match` validator is answered 304 straight from the
    /// entry's version without ever touching the render pool. Misses and
    /// headless entries fall through to the [`ServingSite::handle`]
    /// machinery (single-flight, breaker, serve-stale).
    pub fn respond(&self, node: usize, req: &Request) -> Response {
        let Some(key) = PageKey::parse(&req.path) else {
            return Response::not_found();
        };
        URL_SCRATCH.with(|cell| {
            let mut url = cell.borrow_mut();
            url.clear();
            key.push_url(&mut url);
            let now = self.ticks.fetch_add(1, Relaxed) as f64;
            if let Some(page) = self.fleet.get_from(node, &url) {
                // Revalidation is version arithmetic on the hit — the
                // render pool is never consulted for a 304.
                if let Some(inm) = req.if_none_match.as_deref() {
                    if etag_version(inm) == Some(page.version) {
                        return Response::not_modified(format!("\"v{}\"", page.version));
                    }
                }
                return match page.head {
                    Some(head) => Response::prebuilt(head.pre, head.post, page.body),
                    None => {
                        let etag = format!("\"v{}\"", page.version);
                        Response::html(page.body).with_etag(etag)
                    }
                };
            }
            let page = self.handle_miss(node, key, &url, now);
            let etag = page.etag();
            if req.if_none_match.as_deref() == Some(etag.as_str()) {
                Response::not_modified(etag)
            } else if let Some(parts) = page.parts {
                // Fragment-mode fill: the skeleton and fragment slices go
                // out through one vectored write, never flattened again.
                Response::composed(parts).with_etag(etag)
            } else {
                Response::html(page.body).with_etag(etag)
            }
        })
    }

    /// Demand-fill `key` on `node` and record the outcome in the breaker
    /// (the in-process renderer cannot fail, so this always succeeds;
    /// the failure edges are exercised by the cluster simulation).
    fn regenerate(&self, node: usize, key: PageKey, url: &str) -> ServedPage {
        let out = self.monitor.demand_fill_rich(node, key);
        self.breaker.lock().record_success();
        self.publish_retry_after();
        let version = self
            .fleet
            .member(node)
            .peek(url)
            .map(|p| p.version)
            .unwrap_or(1);
        ServedPage {
            body: out.body,
            cache_hit: false,
            cost_ms: out.cost_ms,
            version,
            stale: false,
            parts: out.parts,
        }
    }

    /// Run `f` against the backend circuit breaker (status inspection,
    /// fault injection in tests). Republish the `Retry-After` hint
    /// afterwards so shed responses reflect the new state.
    pub fn with_breaker<R>(&self, f: impl FnOnce(&mut CircuitBreaker) -> R) -> R {
        let r = f(&mut self.breaker.lock());
        self.publish_retry_after();
        r
    }

    /// The live `Retry-After` advisory derived from breaker state. An
    /// open breaker advertises its remaining open window; a healthy site
    /// advertises the bound server's static floor.
    pub fn retry_after_hint(&self) -> RetryAfterHint {
        self.retry_hint.clone()
    }

    fn publish_retry_after(&self) {
        let now = self.ticks.load(Relaxed) as f64;
        let window = self.breaker.lock().retry_after_secs(now);
        let secs = if window > 0.0 {
            window.ceil() as u32
        } else {
            self.retry_floor.load(Relaxed) as u32
        };
        self.retry_hint.set_secs(secs);
    }

    /// Requests admitted so far — the breaker's clock.
    pub fn request_ticks(&self) -> u64 {
        self.ticks.load(Relaxed)
    }

    /// Synchronously process every transaction committed since the last
    /// pump (tests and replay harnesses; live deployments use
    /// [`ServingSite::spawn_trigger_runner`]).
    pub fn pump(&self) -> PumpOutcome {
        let mut outcome = PumpOutcome::default();
        while let Ok(txn) = self.txn_rx.try_recv() {
            let o = self.monitor.process_txn(&txn);
            outcome.txns += 1;
            outcome.regenerated += o.regenerated.len() as u64;
            outcome.invalidated += o.invalidated.len() as u64;
        }
        outcome
    }

    /// Spawn the background trigger monitor thread over a fresh
    /// subscription (live-deployment shape). Updates committed *after*
    /// this call are processed automatically until the runner is dropped.
    pub fn spawn_trigger_runner(&self) -> TriggerRunner {
        TriggerRunner::spawn(Arc::clone(&self.monitor), self.db.subscribe())
    }

    /// An HTTP handler serving this site from node `node`, with
    /// ETag/If-None-Match revalidation: the cache version is the entity
    /// tag, so browser caches revalidate dynamic pages with a 55-byte 304
    /// instead of a 55 KB transfer — until DUP bumps the version.
    pub fn http_handler(self: &Arc<Self>, node: usize) -> Arc<dyn Handler> {
        let site = Arc::clone(self);
        Arc::new(move |req: &Request| site.respond(node, req))
    }

    /// Bind an HTTP server for serving node `node`. Unless the caller
    /// installed its own hint, shed 503s advertise the site's live
    /// breaker-derived `Retry-After` (the configured `retry_after_secs`
    /// becomes the healthy-state floor).
    pub fn serve_http(
        self: &Arc<Self>,
        addr: &str,
        node: usize,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let config = self.install_retry_hint(config);
        Server::bind(addr, self.http_handler(node), config)
    }

    /// Attach the site's live `Retry-After` hint to `config` (no-op if
    /// the caller supplied a hint of its own).
    fn install_retry_hint(&self, mut config: ServerConfig) -> ServerConfig {
        if config.retry_after_hint.is_none() {
            self.retry_floor
                .store(u64::from(config.retry_after_secs), Relaxed);
            self.publish_retry_after();
            config.retry_after_hint = Some(self.retry_hint.clone());
        }
        config
    }

    /// The `/status` JSON document: registry size, ODG dimensions,
    /// trigger progress (transactions, replication watermark, deferred-
    /// regeneration queue depth and shed count), and per-node cache
    /// occupancy. Hand-assembled with deterministic key order so same-
    /// state sites produce byte-identical documents.
    pub fn status_json(&self) -> String {
        let trig = self.monitor.stats().snapshot();
        let (odg_nodes, odg_edges) = self.monitor.graph_size();
        let (breaker_state, breaker_trips) = {
            let b = self.breaker.lock();
            (b.state_name(), b.trips())
        };
        let mut out = String::with_capacity(512);
        out.push_str(&format!(
            "{{\"pages\":{},\"odg\":{{\"nodes\":{},\"edges\":{}}},\
             \"trigger\":{{\"txns\":{},\"watermark\":{},\"deferred_depth\":{},\
             \"deferred_shed\":{}}},\"breaker\":{{\"state\":\"{}\",\"trips\":{}}},\
             \"caches\":[",
            self.registry.len(),
            odg_nodes,
            odg_edges,
            trig.txns,
            self.monitor.watermark(),
            trig.deferred_depth,
            trig.deferred_shed,
            breaker_state,
            breaker_trips,
        ));
        for (i, member) in self.fleet.members().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let s = member.stats();
            out.push_str(&format!(
                "{{\"node\":{},\"entries\":{},\"bytes\":{},\"hits\":{},\"misses\":{}}}",
                i,
                member.len(),
                member.bytes(),
                s.hits,
                s.misses,
            ));
        }
        out.push_str("]}");
        out
    }

    /// The page handler for `node` wrapped in an [`AdminPlane`]:
    /// `/metrics` scrapes `registry` as Prometheus text, `/healthz`
    /// probes liveness, `/status` returns [`ServingSite::status_json`],
    /// and every other path serves pages as [`ServingSite::http_handler`].
    pub fn admin_handler(
        self: &Arc<Self>,
        node: usize,
        registry: Arc<nagano_telemetry::MetricsRegistry>,
    ) -> Arc<dyn Handler> {
        let site = Arc::clone(self);
        let status: nagano_httpd::StatusFn = Arc::new(move || site.status_json());
        Arc::new(
            nagano_httpd::AdminPlane::new(registry, status).with_inner(self.http_handler(node)),
        )
    }

    /// Bind an HTTP server for serving node `node` with the admin plane
    /// attached, scrapeable over TCP while the site serves page traffic.
    pub fn serve_admin_http(
        self: &Arc<Self>,
        addr: &str,
        node: usize,
        registry: Arc<nagano_telemetry::MetricsRegistry>,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let config = self.install_retry_hint(config);
        Server::bind(addr, self.admin_handler(node, registry), config)
    }

    /// Bring a recovered serving node back: resynchronise its cache from
    /// a healthy peer so it rejoins rotation warm and version-consistent.
    /// Returns the number of pages copied.
    pub fn recover_node(&self, node: usize) -> usize {
        let donor = (0..self.fleet.len())
            .find(|&i| i != node)
            .expect("fleet has another member");
        self.fleet.resync(donor, node)
    }

    /// Register this site's live metric cells — trigger counters, the
    /// propagation-latency histogram, and per-node cache statistics —
    /// into a telemetry registry. Counters appear under the
    /// `nagano_trigger_*` / `nagano_cache_*` names with the given labels
    /// (cache cells additionally carry a `node` label per fleet member),
    /// so one registry can hold several sites distinguished by label.
    pub fn bind_telemetry(
        &self,
        registry: &nagano_telemetry::MetricsRegistry,
        labels: &[(&str, &str)],
    ) {
        self.monitor.stats().bind(registry, labels);
        for (i, member) in self.fleet.members().iter().enumerate() {
            let node = i.to_string();
            let mut node_labels: Vec<(&str, &str)> = labels.to_vec();
            node_labels.push(("node", node.as_str()));
            member.stats_handle().bind(registry, &node_labels);
        }
    }

    /// Current metrics.
    pub fn metrics(&self) -> SiteMetrics {
        SiteMetrics {
            cache: self.fleet.aggregate_stats(),
            trigger: self.monitor.stats().snapshot(),
            odg: self.monitor.graph_size(),
            pages: self.registry.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site() -> ServingSite {
        ServingSite::build(SiteConfig::small())
    }

    #[test]
    fn build_prewarms_everything() {
        let s = site();
        let m = s.metrics();
        assert_eq!(m.cache.inserts as usize, m.pages * 2); // 2 fleet members
        assert!(m.odg.0 > 0 && m.odg.1 > 0);
    }

    #[test]
    fn handle_serves_cache_hits() {
        let s = site();
        let page = s.handle(0, "/medals").unwrap();
        assert!(page.cache_hit);
        assert!(page.cost_ms < 1.0);
        assert!(s.handle(1, "/day/3/").unwrap().cache_hit);
        assert!(s.handle(0, "/nonexistent").is_none());
    }

    #[test]
    fn cold_site_demand_fills() {
        let mut cfg = SiteConfig::small();
        cfg.prewarm = false;
        let s = ServingSite::build(cfg);
        let first = s.handle(0, "/medals").unwrap();
        assert!(!first.cache_hit);
        assert!(first.cost_ms > 10.0);
        let second = s.handle(0, "/medals").unwrap();
        assert!(second.cache_hit);
        // Demand fill is node-local.
        let other_node = s.handle(1, "/medals").unwrap();
        assert!(!other_node.cache_hit);
    }

    #[test]
    fn update_flow_refreshes_in_place() {
        let s = site();
        let ev = s.db().events()[0].clone();
        let before = s.handle(0, &PageKey::Event(ev.id).to_url()).unwrap();
        let athletes = s.db().athletes_of_sport(ev.sport);
        s.db().record_results(
            ev.id,
            &[
                (athletes[0].id, 10.0),
                (athletes[1].id, 9.0),
                (athletes[2].id, 8.0),
            ],
            true,
            ev.day,
        );
        let outcome = s.pump();
        assert_eq!(outcome.txns, 1);
        assert!(outcome.regenerated > 5);
        assert_eq!(outcome.invalidated, 0);
        let after = s.handle(0, &PageKey::Event(ev.id).to_url()).unwrap();
        assert!(after.cache_hit, "updated in place, not invalidated");
        assert_ne!(after.body, before.body);
        // Pump with nothing queued is a no-op.
        assert_eq!(s.pump(), PumpOutcome::default());
    }

    #[test]
    fn http_end_to_end() {
        use nagano_httpd::HttpClient;
        let s = Arc::new(site());
        let server = s
            .serve_http("127.0.0.1:0", 0, ServerConfig::default())
            .unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        let (code, body) = client.get("/medals").unwrap();
        assert_eq!(code, 200);
        assert!(body.len() > 5_000);
        let (code, _) = client.get("/bogus/path").unwrap();
        assert_eq!(code, 404);
        drop(client);
        server.shutdown();
    }

    #[test]
    fn conditional_get_revalidates_with_304_until_dup_updates() {
        use nagano_httpd::HttpClient;
        let s = Arc::new(site());
        let server = s
            .serve_http("127.0.0.1:0", 0, ServerConfig::default())
            .unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        // First fetch: 200 with an ETag.
        let (code, body, etag) = client.get_conditional("/medals", None).unwrap();
        assert_eq!(code, 200);
        let etag = etag.expect("etag present");
        assert!(!body.is_empty());
        // Revalidation: 304, empty body — the browser-cache path that
        // saved a 55 KB modem transfer in 1998.
        let (code, body, _) = client.get_conditional("/medals", Some(&etag)).unwrap();
        assert_eq!(code, 304);
        assert!(body.is_empty());
        // An update bumps the cache version → revalidation now misses.
        let ev = s.db().events()[0].clone();
        let a = s.db().athletes_of_sport(ev.sport)[0].clone();
        s.db().record_results(ev.id, &[(a.id, 9.0)], true, ev.day);
        s.pump();
        let (code, body, new_etag) = client.get_conditional("/medals", Some(&etag)).unwrap();
        assert_eq!(code, 200);
        assert!(!body.is_empty());
        assert_ne!(new_etag, Some(etag));
        drop(client);
        server.shutdown();
    }

    fn get_request(path: &str, inm: Option<&str>) -> Request {
        let mut req = Request::empty();
        req.method.push_str("GET");
        req.path.push_str(path);
        req.keep_alive = true;
        req.if_none_match = inm.map(str::to_string);
        req
    }

    #[test]
    fn respond_prebuilt_hit_serves_identical_bytes_to_formatted_path() {
        let fast = site();
        let mut cfg = SiteConfig::small();
        cfg.prebuilt_heads = false;
        let slow = ServingSite::build(cfg);
        for path in ["/medals", "/day/3/", "/welcome"] {
            let req = get_request(path, None);
            let a = fast.respond(0, &req);
            let b = slow.respond(0, &req);
            assert!(a.prebuilt.is_some(), "{path}: fast path took slow route");
            assert!(
                b.prebuilt.is_none(),
                "{path}: baseline unexpectedly prebuilt"
            );
            for keep_alive in [true, false] {
                let mut fast_bytes = Vec::new();
                let mut slow_bytes = Vec::new();
                a.write_to(&mut fast_bytes, keep_alive).unwrap();
                b.write_to(&mut slow_bytes, keep_alive).unwrap();
                assert_eq!(
                    fast_bytes, slow_bytes,
                    "{path} keep_alive={keep_alive}: wire bytes diverge"
                );
            }
        }
    }

    #[test]
    fn respond_304_never_touches_the_render_pool() {
        let s = site();
        let before = s.metrics().trigger;
        // Prewarmed entries are at version 1; a matching validator must
        // revalidate from the cache entry alone.
        let resp = s.respond(0, &get_request("/medals", Some("\"v1\"")));
        assert_eq!(resp.status, nagano_httpd::Status::NotModified);
        assert!(resp.body.is_empty());
        // A stale validator gets the full page, still without rendering.
        let resp = s.respond(0, &get_request("/medals", Some("\"v9\"")));
        assert_eq!(resp.status, nagano_httpd::Status::Ok);
        assert!(!resp.body.is_empty());
        let after = s.metrics().trigger;
        assert_eq!(before.pages_regenerated, after.pages_regenerated);
        assert_eq!(before.regen_cpu_ms, after.regen_cpu_ms);
    }

    #[test]
    fn respond_reuses_cached_body_allocation() {
        let s = site();
        let cached = s.fleet().member(0).peek("/medals").unwrap().body;
        let resp = s.respond(0, &get_request("/medals", None));
        assert_eq!(
            resp.body.as_ptr(),
            cached.as_ptr(),
            "hit body must be a refcounted view of the cache buffer"
        );
    }

    #[test]
    fn marquee_events_exposed() {
        let s = site();
        let (fs, sj) = s.marquee_events();
        assert!(s.db().event(fs).is_some());
        assert!(s.db().event(sj).is_some());
    }

    #[test]
    fn recovered_node_rejoins_warm_and_consistent() {
        let s = site();
        // Node 1 "fails": loses its cache.
        s.fleet().member(1).clear();
        assert!(
            !s.handle(1, "/medals").unwrap().cache_hit,
            "cold after failure"
        );
        // Recovery resyncs from node 0.
        let copied = s.recover_node(1);
        assert_eq!(copied, s.registry().len());
        let a = s.handle(0, "/day/3/").unwrap();
        let b = s.handle(1, "/day/3/").unwrap();
        assert!(b.cache_hit);
        assert_eq!(a.body, b.body);
        assert_eq!(a.version, b.version, "entity tags agree after resync");
    }

    #[test]
    fn metrics_track_activity() {
        let s = site();
        s.handle(0, "/medals");
        s.handle(0, "/medals");
        let m = s.metrics();
        assert_eq!(m.cache.hits, 2);
        assert_eq!(m.trigger.txns, 0);
    }

    #[test]
    fn bind_telemetry_exposes_live_cells() {
        use nagano_telemetry::{prometheus_text, MetricsRegistry};
        let s = site();
        let registry = MetricsRegistry::new();
        s.bind_telemetry(&registry, &[("site", "test")]);
        s.handle(0, "/medals");
        s.handle(0, "/medals");
        let hits = registry.counter(
            "nagano_cache_hits_total",
            &[("site", "test"), ("node", "0")],
        );
        assert_eq!(hits.get(), 2);
        let text = prometheus_text(&registry);
        assert!(text.contains("nagano_cache_hits_total{node=\"0\",site=\"test\"} 2"));
        assert!(text.contains("nagano_trigger_txns_total{site=\"test\"} 0"));
    }

    #[test]
    fn status_json_reports_live_state() {
        let s = site();
        s.handle(0, "/medals");
        let doc = s.status_json();
        assert!(doc.starts_with(&format!("{{\"pages\":{}", s.registry().len())));
        assert!(doc.contains("\"deferred_depth\":0"));
        assert!(doc.contains("\"breaker\":{\"state\":\"closed\",\"trips\":0}"));
        assert!(doc.contains("\"node\":0") && doc.contains("\"node\":1"));
        assert!(doc.contains("\"hits\":1"));
        // Deterministic: identical state, identical bytes.
        assert_eq!(doc, s.status_json());
        // A tripped breaker shows up.
        s.with_breaker(|b| {
            for _ in 0..10 {
                b.record_failure(0.0);
            }
        });
        assert!(s
            .status_json()
            .contains("\"breaker\":{\"state\":\"open\",\"trips\":1}"));
    }

    #[test]
    fn open_breaker_serves_stale_copy() {
        let mut cfg = SiteConfig::small();
        cfg.cache = CacheConfig::default().with_stale(nagano_cache::StalePolicy::bounded(3600.0));
        let s = ServingSite::build(cfg);
        let url = PageKey::parse("/medals").unwrap().to_url();
        let before = s.handle(0, "/medals").unwrap();
        assert!(before.cache_hit && !before.stale);
        // Invalidate the page (tombstoning it) and trip the breaker.
        s.fleet().invalidate_everywhere(&url);
        s.with_breaker(|b| {
            for _ in 0..10 {
                b.record_failure(0.0);
            }
        });
        assert!(s.with_breaker(|b| b.state_name() == "open"));
        let page = s.handle(0, "/medals").unwrap();
        assert!(page.stale, "open breaker falls back to the stale copy");
        assert!(!page.cache_hit);
        assert_eq!(page.body, before.body);
        assert_eq!(s.metrics().cache.stale_served, 1);
    }

    #[test]
    fn retry_after_hint_tracks_breaker_state() {
        let s = Arc::new(site());
        let server = s
            .serve_http(
                "127.0.0.1:0",
                0,
                ServerConfig {
                    retry_after_secs: 3,
                    ..Default::default()
                },
            )
            .unwrap();
        let hint = s.retry_after_hint();
        assert_eq!(hint.get_secs(), 3, "healthy floor = configured static");
        // Breaker opens (default window 10 tick-seconds): the hint now
        // advertises the remaining open window.
        s.with_breaker(|b| {
            for _ in 0..10 {
                b.record_failure(0.0);
            }
        });
        assert_eq!(hint.get_secs(), 10);
        // Recovery closes it; the hint returns to the floor.
        s.with_breaker(|b| {
            let now = 1e9; // far past the open window
            assert!(b.allow(now));
            b.record_success();
            b.record_success();
        });
        assert_eq!(hint.get_secs(), 3);
        server.shutdown();
    }

    #[test]
    fn open_breaker_without_stale_copy_still_serves() {
        let mut cfg = SiteConfig::small();
        cfg.prewarm = false;
        let s = ServingSite::build(cfg);
        s.with_breaker(|b| {
            for _ in 0..10 {
                b.record_failure(0.0);
            }
        });
        // No stale policy, nothing cached: availability wins — the
        // request is rendered anyway rather than turned away.
        let page = s.handle(0, "/medals").unwrap();
        assert!(!page.stale && !page.cache_hit);
        assert!(!page.body.is_empty());
    }

    fn fragment_site() -> ServingSite {
        let mut cfg = SiteConfig::small();
        cfg.fragment_mode = true;
        ServingSite::build(cfg)
    }

    #[test]
    fn fragment_mode_serves_identical_bytes_to_legacy() {
        let frag = fragment_site();
        let legacy = site();
        assert!(frag.monitor().fragment_mode());
        for path in ["/welcome", "/medals", "/day/3/", "/sports/1", "/events/2"] {
            let a = frag.handle(0, path).unwrap();
            let b = legacy.handle(0, path).unwrap();
            assert!(a.cache_hit && b.cache_hit);
            assert_eq!(a.body, b.body, "{path}: composed body diverges");
        }
        // And after an update flows through the trigger monitor.
        for s in [&frag, &legacy] {
            let ev = s.db().events()[0].clone();
            let a = s.db().athletes_of_sport(ev.sport)[0].clone();
            s.db().record_results(ev.id, &[(a.id, 9.0)], true, ev.day);
            s.pump();
        }
        for path in ["/welcome", "/medals", "/events/1"] {
            let a = frag.handle(0, path).unwrap();
            let b = legacy.handle(0, path).unwrap();
            assert_eq!(a.body, b.body, "{path}: post-update body diverges");
        }
    }

    #[test]
    fn fragment_mode_demand_fill_serves_composed_parts() {
        let mut cfg = SiteConfig::small();
        cfg.fragment_mode = true;
        cfg.prewarm = false;
        let s = ServingSite::build(cfg);
        let page = s.handle(0, "/medals").unwrap();
        assert!(!page.cache_hit);
        let parts = page.parts.as_ref().expect("fragment fill returns parts");
        assert!(parts.len() > 1, "skeleton plus at least one fragment");
        let flat: Vec<u8> = parts.iter().flat_map(|p| p.iter().copied()).collect();
        assert_eq!(&page.body[..], &flat[..], "parts concatenate to body");
        // The HTTP layer sends those parts as a composed response whose
        // wire bytes match a contiguous-body response exactly.
        let mut cold = SiteConfig::small();
        cold.prewarm = false;
        let legacy = ServingSite::build(cold);
        let req = get_request("/day/2/", None);
        let a = s.respond(0, &req);
        assert!(a.parts.is_some(), "miss response is composed");
        let b = legacy.respond(0, &req);
        for keep_alive in [true, false] {
            let mut via_parts = Vec::new();
            a.write_to(&mut via_parts, keep_alive).unwrap();
            let mut via_body = Vec::new();
            b.write_to(&mut via_body, keep_alive).unwrap();
            assert_eq!(via_parts, via_body, "wire bytes diverge");
        }
        // A second request hits the freshly filled local cache.
        assert!(s.handle(0, "/medals").unwrap().cache_hit);
    }

    #[test]
    fn admin_handler_serves_metrics_status_and_pages() {
        use nagano_httpd::HttpClient;
        use nagano_telemetry::MetricsRegistry;
        let s = Arc::new(site());
        let registry = Arc::new(MetricsRegistry::new());
        s.bind_telemetry(&registry, &[("site", "t")]);
        let server = s
            .serve_admin_http("127.0.0.1:0", 0, registry, ServerConfig::default())
            .unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        let (code, body) = client.get("/medals").unwrap();
        assert_eq!(code, 200);
        assert!(body.len() > 5_000);
        let (code, body) = client.get("/metrics").unwrap();
        assert_eq!(code, 200);
        let text = String::from_utf8(body.to_vec()).unwrap();
        assert!(text.contains("nagano_cache_hits_total"));
        let (code, body) = client.get("/status").unwrap();
        assert_eq!(code, 200);
        assert!(body.starts_with(b"{\"pages\":"));
        let (code, body) = client.get("/healthz").unwrap();
        assert_eq!(code, 200);
        assert_eq!(&body[..], b"ok\n");
        drop(client);
        server.shutdown();
    }
}
