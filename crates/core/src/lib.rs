//! **nagano** — a complete reproduction of the serving system behind the
//! 1998 Olympic Winter Games web site (Challenger, Dantzig & Iyengar,
//! SC '98): dynamic-page caching with **Data Update Propagation (DUP)**,
//! a trigger monitor that updates stale pages *in place*, and the
//! supporting substrates (results database, page renderer, HTTP server,
//! global cluster simulation).
//!
//! # Quickstart
//!
//! ```
//! use nagano::{ServingSite, SiteConfig};
//!
//! // Build a site over a small synthetic Games: seeds the database,
//! // renders every page, registers the object dependence graph, and
//! // warms the serving caches.
//! let site = ServingSite::build(SiteConfig::small());
//!
//! // Serve a page (node 0 of the serving fleet). It's a cache hit.
//! let medal_page = site.handle(0, "/medals").expect("served");
//! assert!(medal_page.cache_hit);
//!
//! // New results arrive: the trigger monitor runs DUP and refreshes
//! // every affected page in place — the next read sees fresh content
//! // and is *still* a cache hit.
//! let event = site.db().events()[0].clone();
//! let athletes = site.db().athletes_of_sport(event.sport);
//! site.db().record_results(
//!     event.id,
//!     &[(athletes[0].id, 100.0), (athletes[1].id, 99.0), (athletes[2].id, 98.0)],
//!     true,
//!     event.day,
//! );
//! let outcome = site.pump();
//! assert!(outcome.regenerated > 0);
//! let updated = site.handle(0, "/medals").expect("served");
//! assert!(updated.cache_hit);
//! assert_ne!(updated.body, medal_page.body);
//! ```
//!
//! # Crate map
//!
//! | Crate | Role |
//! |---|---|
//! | [`nagano_odg`] | Object dependence graph + the DUP algorithm |
//! | [`nagano_cache`] | Concurrent page cache (update-in-place, policies) |
//! | [`nagano_db`] | Results database, transaction log, replication |
//! | [`nagano_pagegen`] | Page space, renderer, dependency derivation |
//! | [`nagano_trigger`] | The trigger monitor |
//! | [`nagano_httpd`] | Threaded HTTP server + load generator |
//! | [`nagano_simcore`] | Discrete-event simulation kernel |
//!
//! The global four-complex architecture simulation lives in
//! `nagano-cluster`, and `nagano-bench` regenerates every table and
//! figure of the paper (`cargo run -p nagano-bench --bin reproduce`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod resilience;
pub mod site;

pub use resilience::{BreakerConfig, BreakerState, CircuitBreaker, Deadline, RetryBackoff};
pub use site::{PumpOutcome, ServedPage, ServingSite, SiteConfig, SiteMetrics};

// Re-export the component crates under stable names.
pub use nagano_cache as cache;
pub use nagano_db as db;
pub use nagano_httpd as httpd;
pub use nagano_odg as odg;
pub use nagano_pagegen as pagegen;
pub use nagano_simcore as simcore;
pub use nagano_trigger as trigger;

/// Convenient access to the most-used types.
pub mod prelude {
    pub use crate::site::{ServingSite, SiteConfig};
    pub use nagano_cache::{CacheConfig, PageCache, ReplacementPolicy};
    pub use nagano_db::{GamesConfig, OlympicDb};
    pub use nagano_odg::{DupEngine, Odg, StalenessPolicy};
    pub use nagano_pagegen::{PageKey, Renderer};
    pub use nagano_trigger::{ConsistencyPolicy, TriggerMonitor};
}
