//! Serving-path resilience primitives (DESIGN.md §11).
//!
//! Three small, clock-free building blocks shared by the live serving
//! site and the cluster simulation:
//!
//! * [`CircuitBreaker`] — a three-state (Closed → Open → HalfOpen)
//!   breaker around the render/db backend. Time is *passed in* as
//!   seconds (sim-time in the DES, a request tick count on the live
//!   site), so the type never reads a wall clock (D001-clean).
//! * [`RetryBackoff`] — bounded exponential backoff with full jitter
//!   drawn from a caller-supplied [`DeterministicRng`], so retry
//!   schedules are reproducible under a fixed seed (D002-clean).
//! * [`Deadline`] — a per-request latency budget propagated into render
//!   dispatch; followers of a single-flight regeneration wait at most
//!   the remaining budget before falling back to a stale copy.

use nagano_simcore::DeterministicRng;

/// Breaker state, in the order transitions happen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BreakerState {
    /// Healthy: requests flow, consecutive failures are counted.
    Closed {
        /// Consecutive failures seen so far (reset on success).
        consecutive_failures: u32,
    },
    /// Tripped: requests fail fast (serve stale / shed) until `until`.
    Open {
        /// Time (seconds, caller's clock) when the breaker half-opens.
        until: f64,
    },
    /// Probing: a limited number of trial requests are let through.
    HalfOpen {
        /// Successful probes so far.
        probes_ok: u32,
    },
}

/// Configuration for a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive failures that trip Closed → Open.
    pub failure_threshold: u32,
    /// Seconds the breaker stays Open before probing.
    pub open_secs: f64,
    /// Successful probes that close a HalfOpen breaker.
    pub probe_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            open_secs: 10.0,
            probe_successes: 2,
        }
    }
}

/// A three-state circuit breaker. All methods take `now` in seconds on
/// whatever clock the caller runs (sim-time, request ticks); the breaker
/// only compares and stores these values.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    /// Breaker trips since construction (Closed/HalfOpen → Open edges).
    trips: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed {
                consecutive_failures: 0,
            },
            trips: 0,
        }
    }

    /// Should this request be attempted against the backend? `false`
    /// means fail fast (serve stale or shed). An Open breaker whose
    /// window has elapsed transitions to HalfOpen and lets the probe
    /// through.
    pub fn allow(&mut self, now: f64) -> bool {
        match self.state {
            BreakerState::Closed { .. } | BreakerState::HalfOpen { .. } => true,
            BreakerState::Open { until } => {
                if now >= until {
                    self.state = BreakerState::HalfOpen { probes_ok: 0 };
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Record a successful backend call.
    pub fn record_success(&mut self) {
        match self.state {
            BreakerState::Closed { .. } => {
                self.state = BreakerState::Closed {
                    consecutive_failures: 0,
                };
            }
            BreakerState::HalfOpen { probes_ok } => {
                let probes_ok = probes_ok + 1;
                self.state = if probes_ok >= self.config.probe_successes {
                    BreakerState::Closed {
                        consecutive_failures: 0,
                    }
                } else {
                    BreakerState::HalfOpen { probes_ok }
                };
            }
            BreakerState::Open { .. } => {} // stray completion; ignore
        }
    }

    /// Record a failed (or timed-out) backend call.
    pub fn record_failure(&mut self, now: f64) {
        match self.state {
            BreakerState::Closed {
                consecutive_failures,
            } => {
                let consecutive_failures = consecutive_failures + 1;
                if consecutive_failures >= self.config.failure_threshold {
                    self.trip(now);
                } else {
                    self.state = BreakerState::Closed {
                        consecutive_failures,
                    };
                }
            }
            // A failed probe re-opens immediately.
            BreakerState::HalfOpen { .. } => self.trip(now),
            BreakerState::Open { .. } => {}
        }
    }

    fn trip(&mut self, now: f64) {
        self.trips += 1;
        self.state = BreakerState::Open {
            until: now + self.config.open_secs,
        };
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// State name for status documents: `"closed"`, `"open"`, or
    /// `"half_open"`.
    pub fn state_name(&self) -> &'static str {
        match self.state {
            BreakerState::Closed { .. } => "closed",
            BreakerState::Open { .. } => "open",
            BreakerState::HalfOpen { .. } => "half_open",
        }
    }

    /// Breaker trips since construction.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Seconds until an Open breaker admits a probe (0 otherwise) —
    /// the honest `Retry-After` for a shed response.
    pub fn retry_after_secs(&self, now: f64) -> f64 {
        match self.state {
            BreakerState::Open { until } => (until - now).max(0.0),
            _ => 0.0,
        }
    }
}

impl Default for CircuitBreaker {
    fn default() -> Self {
        CircuitBreaker::new(BreakerConfig::default())
    }
}

/// Bounded exponential backoff with full jitter.
///
/// Attempt `n` (0-based) sleeps `uniform(0, base · 2ⁿ)` seconds, capped
/// at `max_secs` — AWS-style "full jitter", which de-synchronises
/// retrying clients better than equal jitter at the same load. Jitter
/// comes from a caller-supplied seeded RNG, never a global one.
#[derive(Debug, Clone, Copy)]
pub struct RetryBackoff {
    base_secs: f64,
    max_secs: f64,
    max_attempts: u32,
    attempt: u32,
}

impl RetryBackoff {
    /// A backoff schedule of at most `max_attempts` retries starting at
    /// `base_secs`, with per-sleep cap `max_secs`.
    pub fn new(base_secs: f64, max_secs: f64, max_attempts: u32) -> Self {
        RetryBackoff {
            base_secs,
            max_secs,
            max_attempts,
            attempt: 0,
        }
    }

    /// The next jittered sleep in seconds, or `None` once the attempt
    /// budget is spent (give up; serve stale or shed).
    pub fn next_delay(&mut self, rng: &mut DeterministicRng) -> Option<f64> {
        if self.attempt >= self.max_attempts {
            return None;
        }
        let ceiling = (self.base_secs * f64::from(1u32 << self.attempt.min(20))).min(self.max_secs);
        self.attempt += 1;
        Some(rng.range_f64(0.0, ceiling))
    }

    /// Retries consumed so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Retries remaining.
    pub fn remaining(&self) -> u32 {
        self.max_attempts - self.attempt
    }

    /// Reset to attempt 0 (after a success).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

/// A per-request latency budget.
///
/// Created at request admission with the caller's clock; render dispatch
/// and single-flight waits check the remaining budget instead of
/// sleeping unboundedly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deadline {
    start: f64,
    budget_secs: f64,
}

impl Deadline {
    /// A deadline of `budget_secs` starting at `now`.
    pub fn new(now: f64, budget_secs: f64) -> Self {
        Deadline {
            start: now,
            budget_secs,
        }
    }

    /// Seconds left at `now` (0 when expired).
    pub fn remaining(&self, now: f64) -> f64 {
        (self.start + self.budget_secs - now).max(0.0)
    }

    /// Has the budget run out at `now`?
    pub fn expired(&self, now: f64) -> bool {
        self.remaining(now) <= 0.0
    }

    /// The total budget.
    pub fn budget_secs(&self) -> f64 {
        self.budget_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breaker_trips_after_threshold_and_recovers_via_probes() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            open_secs: 10.0,
            probe_successes: 2,
        });
        assert_eq!(b.state_name(), "closed");
        assert!(b.allow(0.0));
        b.record_failure(0.0);
        b.record_failure(1.0);
        assert_eq!(b.state_name(), "closed");
        b.record_failure(2.0);
        assert_eq!(b.state_name(), "open");
        assert_eq!(b.trips(), 1);
        // Fail fast while open; honest Retry-After.
        assert!(!b.allow(5.0));
        assert!((b.retry_after_secs(5.0) - 7.0).abs() < 1e-9);
        // Window elapses → half-open, probes admitted.
        assert!(b.allow(12.0));
        assert_eq!(b.state_name(), "half_open");
        b.record_success();
        assert_eq!(b.state_name(), "half_open");
        b.record_success();
        assert_eq!(b.state_name(), "closed");
        assert_eq!(b.retry_after_secs(12.0), 0.0);
    }

    #[test]
    fn failed_probe_reopens() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            open_secs: 5.0,
            probe_successes: 1,
        });
        b.record_failure(0.0);
        assert!(b.allow(5.0)); // half-open probe
        b.record_failure(5.0);
        assert_eq!(b.state_name(), "open");
        assert_eq!(b.trips(), 2);
        assert!(!b.allow(9.0));
        assert!(b.allow(10.0));
        b.record_success();
        assert_eq!(b.state_name(), "closed");
    }

    #[test]
    fn closed_failures_reset_on_success() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            ..BreakerConfig::default()
        });
        b.record_failure(0.0);
        b.record_success();
        b.record_failure(1.0);
        assert_eq!(b.state_name(), "closed", "success reset the streak");
    }

    #[test]
    fn backoff_is_bounded_jittered_and_seeded() {
        let mut rng = DeterministicRng::seed_from_u64(42);
        let mut bo = RetryBackoff::new(0.1, 2.0, 4);
        let mut ceilings = [0.1, 0.2, 0.4, 0.8].into_iter();
        let mut delays = Vec::new();
        while let Some(d) = bo.next_delay(&mut rng) {
            let ceiling = ceilings.next().unwrap();
            assert!((0.0..ceiling).contains(&d), "{d} within [0, {ceiling})");
            delays.push(d);
        }
        assert_eq!(delays.len(), 4, "budget of 4 attempts");
        assert_eq!(bo.remaining(), 0);
        // Same seed → same schedule.
        let mut rng2 = DeterministicRng::seed_from_u64(42);
        let mut bo2 = RetryBackoff::new(0.1, 2.0, 4);
        let replay: Vec<f64> = std::iter::from_fn(|| bo2.next_delay(&mut rng2)).collect();
        assert_eq!(delays, replay);
    }

    #[test]
    fn backoff_caps_at_max_and_resets() {
        let mut rng = DeterministicRng::seed_from_u64(7);
        let mut bo = RetryBackoff::new(1.0, 3.0, 40);
        for _ in 0..40 {
            let d = bo.next_delay(&mut rng).unwrap();
            assert!(d < 3.0, "per-sleep cap holds even at huge exponents");
        }
        assert!(bo.next_delay(&mut rng).is_none());
        bo.reset();
        assert_eq!(bo.attempts(), 0);
        assert!(bo.next_delay(&mut rng).is_some());
    }

    #[test]
    fn deadline_budget_accounting() {
        let d = Deadline::new(100.0, 2.5);
        assert!((d.remaining(100.0) - 2.5).abs() < 1e-12);
        assert!((d.remaining(101.0) - 1.5).abs() < 1e-12);
        assert!(!d.expired(102.0));
        assert!(d.expired(102.5));
        assert_eq!(d.remaining(200.0), 0.0);
        assert_eq!(d.budget_secs(), 2.5);
    }
}
