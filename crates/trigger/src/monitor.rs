//! The trigger monitor core: DB transaction → DUP → regenerate/invalidate
//! → distribute.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use rayon::prelude::*;
use rustc_hash::{FxHashMap, FxHashSet};

use nagano_cache::{CacheFleet, FragmentStore};
use nagano_db::Transaction;
use nagano_odg::{DupEngine, Interner, NodeId, StalenessPolicy};
use nagano_pagegen::{
    CompositionPlan, Dependency, FragmentKey, PageKey, PageRegistry, RenderOutput, Renderer,
};
use nagano_simcore::{SimDuration, SimTime};

use crate::policy::ConsistencyPolicy;
use crate::stats::TriggerStats;

/// Upper bound on the hybrid policy's deferred queue. Overflow beyond
/// this sheds to invalidation instead of queueing, so a regen storm can
/// never accumulate unbounded catch-up work (backpressure, not memory).
const DEFERRED_CAP: usize = 4096;

/// Outcome of processing one transaction.
#[derive(Debug, Clone, Default)]
pub struct TxnOutcome {
    /// Pages regenerated and distributed.
    pub regenerated: Vec<PageKey>,
    /// Pages invalidated.
    pub invalidated: Vec<PageKey>,
    /// Affected pages tolerated as slightly stale (threshold policy).
    pub tolerated: Vec<PageKey>,
    /// Hot pages past the hybrid regen budget, parked on the deferred
    /// queue for a later [`TriggerMonitor::drain_deferred`] tick.
    pub deferred: Vec<PageKey>,
    /// ODG nodes visited by the propagation.
    pub visited: usize,
    /// Modeled processing latency on the sim clock — a deterministic
    /// function of the work done (see [`modeled_latency`]), never the
    /// host wall clock, so same-seed runs export identical latency
    /// distributions.
    pub latency: SimDuration,
}

impl TxnOutcome {
    /// Total pages affected by this transaction.
    pub fn affected(&self) -> usize {
        self.regenerated.len() + self.invalidated.len() + self.tolerated.len() + self.deferred.len()
    }
}

/// Modeled trigger-monitor service time: a propagation visit per ODG
/// node, an invalidation message per dropped page, and regeneration CPU
/// (the renderer's modeled cost) spread over a worker pool. Calibrated
/// to the paper's trigger-monitor throughput figures; the point is that
/// it is a pure function of the work done, so the exported
/// `nagano_trigger_latency_seconds` distribution is identical across
/// same-seed runs.
fn modeled_latency(visited: usize, invalidated: usize, render_ms: f64) -> SimDuration {
    const VISIT_COST_US: u64 = 20;
    const INVALIDATE_COST_US: u64 = 50;
    const RENDER_WORKERS: u64 = 8;
    let render_us = (render_ms * 1_000.0 / RENDER_WORKERS as f64).round() as u64;
    SimDuration::from_micros(
        visited as u64 * VISIT_COST_US + invalidated as u64 * INVALIDATE_COST_US + render_us,
    )
}

/// State shared behind one mutex: the graph and the name interner change
/// together (registering a render adds names *and* edges), so a single
/// lock avoids ordering bugs between them.
struct GraphState {
    dup: DupEngine,
    names: Interner,
}

/// One demand fill's result: the servable body — kept as a zero-copy rope
/// when fragment mode composed it — plus the registered dependencies and
/// the modelled CPU actually spent.
#[derive(Debug, Clone)]
pub struct DemandFill {
    /// The finished page body.
    pub body: Bytes,
    /// The body as composition parts in wire order, when fragment mode
    /// built it as a rope (`None` on the whole-page path). Hand these to
    /// a vectored write untouched.
    pub parts: Option<Vec<Bytes>>,
    /// Dependencies registered for the page.
    pub deps: Vec<Dependency>,
    /// Modelled CPU spent producing the body (fragments actually
    /// rendered + skeleton replan + composition; the whole-page render
    /// cost in legacy mode).
    pub cost_ms: f64,
}

/// Composition plans plus the fragment→embedding-pages reverse index,
/// guarded by one mutex so the index can never drift from the plans.
#[derive(Default)]
struct PlanIndex {
    plans: FxHashMap<PageKey, Arc<CompositionPlan>>,
    embedders: FxHashMap<FragmentKey, FxHashSet<PageKey>>,
}

impl PlanIndex {
    fn insert(&mut self, plan: Arc<CompositionPlan>) {
        let key = plan.key();
        self.remove(key);
        for &f in plan.slots() {
            self.embedders.entry(f).or_default().insert(key);
        }
        self.plans.insert(key, plan);
    }

    fn remove(&mut self, key: PageKey) {
        if let Some(old) = self.plans.remove(&key) {
            for f in old.slots() {
                if let Some(set) = self.embedders.get_mut(f) {
                    set.remove(&key);
                    if set.is_empty() {
                        self.embedders.remove(f);
                    }
                }
            }
        }
    }
}

/// The fragment serving plane (DESIGN.md §14): the store of independently
/// cached fragment bodies plus every page's composition plan. Present only
/// when the monitor was built [`TriggerMonitor::with_fragments`].
///
/// Invariant: **a plan in the index always has a fresh skeleton.** The
/// batch path drops the plan of any affected page whose skeleton data
/// reads intersect the batch's changed keys, so every later recompose —
/// batch, drain, or demand fill, none of which know the original changed
/// set — can trust a found plan and replan only on a missing one.
struct FragmentPlane {
    store: Arc<FragmentStore>,
    index: Mutex<PlanIndex>,
}

/// The trigger monitor.
pub struct TriggerMonitor {
    graph: Mutex<GraphState>,
    renderer: Renderer,
    fleet: Arc<CacheFleet>,
    registry: Arc<PageRegistry>,
    policy: ConsistencyPolicy,
    stats: Arc<TriggerStats>,
    /// Highest transaction id this monitor has processed — the resume
    /// point after a crash ([`TriggerMonitor::recover`]).
    watermark: AtomicU64,
    /// When each currently stale-or-missing page went stale (earliest
    /// mark wins). Fed by the invalidate/defer paths, cleared whenever a
    /// fresh body reaches the fleet; [`TriggerMonitor::observe_request`]
    /// turns it into traffic-weighted staleness samples.
    stale_since: Mutex<FxHashMap<PageKey, SimTime>>,
    /// The hybrid policy's bounded backpressure queue: hot stale pages
    /// whose regeneration missed the per-batch budget, drained
    /// hottest-first by [`TriggerMonitor::drain_deferred`].
    deferred: Mutex<FxHashSet<PageKey>>,
    /// `Some` in fragment mode: fragments are cached and regenerated
    /// independently, pages recompose from plans (DESIGN.md §14).
    fragments: Option<FragmentPlane>,
}

impl TriggerMonitor {
    /// Build a monitor. `renderer` reads the site database; `fleet` is the
    /// set of serving caches updates are distributed to.
    pub fn new(
        renderer: Renderer,
        fleet: Arc<CacheFleet>,
        registry: Arc<PageRegistry>,
        policy: ConsistencyPolicy,
    ) -> Self {
        TriggerMonitor {
            graph: Mutex::new(GraphState {
                dup: DupEngine::new(),
                names: Interner::new(),
            }),
            renderer,
            fleet,
            registry,
            policy,
            stats: Arc::new(TriggerStats::default()),
            watermark: AtomicU64::new(0),
            stale_since: Mutex::new(FxHashMap::default()),
            deferred: Mutex::new(FxHashSet::default()),
            fragments: None,
        }
    }

    /// Switch the monitor to fragment mode: fragment bodies live in
    /// `store`, pages carry composition plans and recompose instead of
    /// re-rendering when only their fragments changed. Call before
    /// [`TriggerMonitor::prewarm`] so the plans and the store are built
    /// together.
    pub fn with_fragments(mut self, store: Arc<FragmentStore>) -> Self {
        self.fragments = Some(FragmentPlane {
            store,
            index: Mutex::new(PlanIndex::default()),
        });
        self
    }

    /// Whether fragment mode is active.
    pub fn fragment_mode(&self) -> bool {
        self.fragments.is_some()
    }

    /// The fragment store (fragment mode only).
    pub fn fragment_store(&self) -> Option<&Arc<FragmentStore>> {
        self.fragments.as_ref().map(|p| &p.store)
    }

    /// Set the DUP staleness policy (threshold tolerance of
    /// slightly-obsolete pages).
    pub fn set_staleness_policy(&self, policy: StalenessPolicy) {
        self.graph.lock().dup.set_policy(policy);
    }

    /// The consistency policy.
    pub fn policy(&self) -> ConsistencyPolicy {
        self.policy
    }

    /// Statistics handle.
    pub fn stats(&self) -> Arc<TriggerStats> {
        Arc::clone(&self.stats)
    }

    /// The serving cache fleet.
    pub fn fleet(&self) -> &Arc<CacheFleet> {
        &self.fleet
    }

    /// Number of (nodes, edges) currently in the ODG.
    pub fn graph_size(&self) -> (usize, usize) {
        let g = self.graph.lock();
        (g.dup.graph().node_count(), g.dup.graph().edge_count())
    }

    /// Render every registered page once, distribute it to the fleet, and
    /// register its dependencies — the prefetch pass that lets the site
    /// start with a warm cache and a complete ODG. Static pages are
    /// preloaded too: the production site served them from the filesystem
    /// (i.e. the OS page cache); holding them in the serving cache is the
    /// equivalent steady state.
    ///
    /// Returns the number of pages warmed.
    pub fn prewarm(&self) -> usize {
        let keys: Vec<PageKey> = self.registry.pages().iter().map(|(k, _)| *k).collect();
        if let Some(plane) = &self.fragments {
            return self.prewarm_fragmented(plane, &keys);
        }
        // Render in parallel (pure reads of the DB), then register and
        // distribute sequentially — graph mutation is the cheap part.
        let rendered: Vec<(PageKey, RenderOutput)> = keys
            .par_iter()
            .map(|&k| (k, self.renderer.render(k)))
            .collect();
        let n = rendered.len();
        for (key, out) in rendered {
            self.register_render(key, &out);
            self.fleet.distribute(&key.to_url(), out.body, out.cost_ms);
        }
        n
    }

    /// Fragment-mode prewarm: render every fragment body once into the
    /// store, then plan every page and compose it from the store. Ends in
    /// the same warm fleet and ODG as the legacy pass at strictly less
    /// render work — a shared fragment renders once, not once per
    /// embedding page.
    fn prewarm_fragmented(&self, plane: &FragmentPlane, keys: &[PageKey]) -> usize {
        let fragment_keys: Vec<FragmentKey> = keys
            .iter()
            .filter_map(|k| match k {
                PageKey::Fragment(f) => Some(*f),
                _ => None,
            })
            .collect();
        let rendered: Vec<(FragmentKey, RenderOutput)> = fragment_keys
            .par_iter()
            .map(|&f| (f, self.renderer.render_fragment(f)))
            .collect();
        for (f, out) in &rendered {
            let page = PageKey::Fragment(*f);
            self.register_render(page, out);
            plane
                .store
                .put(&page.to_url(), out.body.clone(), out.cost_ms);
        }
        let plans: Vec<Arc<CompositionPlan>> = keys
            .par_iter()
            .map(|&k| Arc::new(self.renderer.plan(k)))
            .collect();
        for plan in plans {
            let key = plan.key();
            self.register_deps(key, plan.deps());
            // Every slot was just rendered; should one be missing anyway
            // (evicted mid-prewarm), a whole-page render fills the gap —
            // prewarm must never panic a node.
            let body = match self.compose_from_store(plane, &plan) {
                Some(body) => body,
                None => self.renderer.render(key).body,
            };
            // The cache entry's cost is what recreating the body takes
            // with a warm fragment store (GreedyDual-Size currency).
            let cost = plan.skeleton_cost_ms() + plan.compose_cost_ms();
            self.fleet.distribute(&key.to_url(), body, cost);
            plane.index.lock().insert(plan);
        }
        keys.len()
    }

    /// Compose `plan` from the fragment store, or `None` if a slot
    /// fragment is missing.
    fn compose_from_store(&self, plane: &FragmentPlane, plan: &CompositionPlan) -> Option<Bytes> {
        plan.compose(|f| {
            plane
                .store
                .peek(&PageKey::Fragment(f).to_url())
                .map(|e| e.body)
        })
    }

    /// Register a rendered page's dependencies in the ODG (idempotent;
    /// re-registering after regeneration refreshes edges for pages whose
    /// composition changed).
    pub fn register_render(&self, key: PageKey, out: &RenderOutput) {
        self.register_deps(key, &out.deps);
    }

    fn register_deps(&self, key: PageKey, deps: &[Dependency]) {
        let mut g = self.graph.lock();
        let object = g.names.intern(&key.object_key());
        g.dup
            .graph_mut()
            .ensure_node(object, nagano_odg::NodeKind::Object);
        for dep in deps {
            let data = g.names.intern(&dep.data_key);
            // A non-finite/non-positive weight is a renderer bug; keep
            // the invalidation edge alive with unit weight rather than
            // panicking the serving path over a bad number.
            if g.dup.add_dependency(data, object, dep.weight).is_err() {
                let _ = g.dup.add_dependency(data, object, 1.0);
            }
        }
    }

    /// Process one committed transaction (at sim time zero; callers with
    /// a clock should prefer [`TriggerMonitor::process_txn_at`]).
    pub fn process_txn(&self, txn: &Transaction) -> TxnOutcome {
        self.process_txn_at(txn, SimTime::ZERO)
    }

    /// Process one committed transaction at sim time `now` — the
    /// timestamp feeds hotness decay, staleness marking, and the hybrid
    /// budget scheduler.
    pub fn process_txn_at(&self, txn: &Transaction, now: SimTime) -> TxnOutcome {
        self.process_batch_at(std::slice::from_ref(txn), now)
    }

    /// Process a batch of transactions with a **single** DUP propagation
    /// over the union of their changed data (at sim time zero; callers
    /// with a clock should prefer [`TriggerMonitor::process_batch_at`]).
    pub fn process_batch(&self, txns: &[impl std::borrow::Borrow<Transaction>]) -> TxnOutcome {
        self.process_batch_at(txns, SimTime::ZERO)
    }

    /// Process a batch of transactions with a **single** DUP propagation
    /// over the union of their changed data, at sim time `now`.
    ///
    /// The production trigger monitor coalesced updates arriving close
    /// together: a page affected by five transactions in one burst is
    /// regenerated once, not five times. The `batching` ablation
    /// quantifies the saving.
    pub fn process_batch_at(
        &self,
        txns: &[impl std::borrow::Borrow<Transaction>],
        now: SimTime,
    ) -> TxnOutcome {
        if txns.is_empty() {
            return TxnOutcome::default();
        }
        let merged: Vec<&Transaction> = txns.iter().map(|t| t.borrow()).collect();
        let hi = merged.iter().map(|t| t.id.0).max().unwrap_or(0);
        self.watermark.fetch_max(hi, Relaxed);
        let outcome = match self.policy {
            ConsistencyPolicy::Conservative96 => self.process_conservative(&merged),
            _ => self.process_precise(&merged, now),
        };
        self.stats.record_txn(
            outcome.regenerated.len() as u64,
            outcome.invalidated.len() as u64,
            outcome.tolerated.len() as u64,
            outcome.visited as u64,
            outcome.latency.as_micros(),
        );
        outcome
    }

    fn process_precise(&self, txns: &[&Transaction], now: SimTime) -> TxnOutcome {
        // Resolve changed data keys; unknown keys (no page ever depended
        // on them) are skipped. Duplicates across the batch collapse in
        // the propagation's per-node accumulation.
        let (stale, tolerated, visited) = {
            let mut g = self.graph.lock();
            let changed: Vec<NodeId> = txns
                .iter()
                .flat_map(|t| t.changes.iter())
                .filter_map(|c| g.names.get(&c.data_key))
                .collect();
            let prop = g.dup.propagate_ids(&changed);
            let to_pages = |pairs: &[(NodeId, f64)], g: &GraphState| -> Vec<PageKey> {
                pairs
                    .iter()
                    .filter_map(|&(id, _)| {
                        g.names
                            .name(id)
                            .and_then(|n| n.strip_prefix("page:"))
                            .and_then(PageKey::parse)
                    })
                    .collect()
            };
            (
                to_pages(&prop.stale, &g),
                to_pages(&prop.tolerated, &g),
                prop.visited,
            )
        };

        // Fragment mode: a plan whose *skeleton* read changed data can no
        // longer be trusted — drop it so the next refresh replans. Every
        // plan surviving this pass is skeleton-fresh, which is what lets
        // the drain/demand/recover paths (which never see the changed
        // set) recompose from any plan they find.
        if let Some(plane) = &self.fragments {
            let changed: FxHashSet<&str> = txns
                .iter()
                .flat_map(|t| t.changes.iter())
                .map(|c| c.data_key.as_str())
                .collect();
            let mut index = plane.index.lock();
            for key in stale.iter().chain(tolerated.iter()) {
                let dirty = index
                    .plans
                    .get(key)
                    .is_some_and(|p| p.skeleton_depends_on(|d| changed.contains(d)));
                if dirty {
                    index.remove(*key);
                }
            }
        }

        match self.policy {
            ConsistencyPolicy::UpdateInPlace => {
                let (regenerated, render_ms) = self.regenerate(&stale);
                TxnOutcome {
                    regenerated,
                    tolerated,
                    visited,
                    latency: modeled_latency(visited, 0, render_ms),
                    ..Default::default()
                }
            }
            ConsistencyPolicy::Invalidate => {
                let mut saved_ms = 0.0;
                for key in &stale {
                    saved_ms += self.regen_cost_ms(*key);
                    self.invalidate_everywhere(*key);
                    self.mark_stale(*key, now);
                }
                self.stats.record_regen_saved(saved_ms);
                TxnOutcome {
                    latency: modeled_latency(visited, stale.len(), 0.0),
                    invalidated: stale,
                    tolerated,
                    visited,
                    ..Default::default()
                }
            }
            ConsistencyPolicy::Hybrid(cfg) => {
                let minute = now.minute_index();
                let threshold = self.fleet.hotness_threshold(cfg.hot_permille, minute);
                // Deterministic priority order: hotness descending
                // (total_cmp — no NaNs can occur, but no unwrap either),
                // then PageKey ascending to break exact ties.
                let mut ranked: Vec<(PageKey, f64)> = stale
                    .iter()
                    .map(|&k| (k, self.hotness(k, minute)))
                    .collect();
                ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

                let budget = cfg.budget_ms();
                let mut to_regen = Vec::new();
                let mut overflow = Vec::new();
                let mut invalidated = Vec::new();
                let mut planned_ms = 0.0;
                let mut saved_ms = 0.0;
                for (key, hot) in ranked {
                    if hot < threshold {
                        // Cold tail: drop it, save the render.
                        saved_ms += self.regen_cost_ms(key);
                        self.invalidate_everywhere(key);
                        self.mark_stale(key, now);
                        invalidated.push(key);
                    } else if budget.is_none_or(|b| planned_ms < b) {
                        // Strict `<` admits the hottest page even when it
                        // alone exceeds the budget: progress is
                        // guaranteed, starvation is impossible.
                        planned_ms += self.regen_cost_ms(key);
                        to_regen.push(key);
                    } else {
                        overflow.push(key);
                    }
                }

                let (regenerated, render_ms) = self.regenerate(&to_regen);
                let deferred = self.defer(overflow, now, &mut invalidated, &mut saved_ms);
                self.stats.record_regen_saved(saved_ms);
                TxnOutcome {
                    latency: modeled_latency(visited, invalidated.len(), render_ms),
                    regenerated,
                    invalidated,
                    tolerated,
                    deferred,
                    visited,
                }
            }
            ConsistencyPolicy::Conservative96 => unreachable!("handled by caller"),
        }
    }

    /// Drop `key` from every serving cache; in fragment mode a fragment
    /// also loses its store entry, so embedding pages can never recompose
    /// from obsolete bytes.
    fn invalidate_everywhere(&self, key: PageKey) {
        if let (Some(plane), PageKey::Fragment(_)) = (&self.fragments, key) {
            plane.store.invalidate(&key.to_url());
        }
        self.fleet.invalidate_everywhere(&key.to_url());
    }

    /// Modelled CPU to refresh `key` right now: the whole-page render in
    /// legacy mode; in fragment mode the fragment render for fragments,
    /// or a compose (plus a skeleton replan when the plan was dropped)
    /// for composed pages. This is the currency of the hybrid budget and
    /// of `regen_saved_ms`.
    fn regen_cost_ms(&self, key: PageKey) -> f64 {
        let cm = self.renderer.cost_model();
        let Some(plane) = &self.fragments else {
            return cm.cost_ms(key);
        };
        match key {
            PageKey::Fragment(_) => cm.cost_ms(key),
            _ => match plane.index.lock().plans.get(&key) {
                Some(p) => p.compose_cost_ms(),
                None => cm.skeleton_cost_ms(key) + cm.compose_cost_ms(0),
            },
        }
    }

    /// Hotness for the hybrid ranking. A fragment inherits the hottest of
    /// its own URL and every page embedding it: refreshing a shared
    /// fragment is exactly what keeps those hot pages fresh, so its
    /// priority must not be its (rarely fetched) own URL's.
    fn hotness(&self, key: PageKey, minute: u64) -> f64 {
        let own = self.fleet.hotness(&key.to_url(), minute);
        let Some(plane) = &self.fragments else {
            return own;
        };
        let PageKey::Fragment(f) = key else {
            return own;
        };
        let embedders: Vec<PageKey> = plane
            .index
            .lock()
            .embedders
            .get(&f)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        embedders
            .iter()
            .map(|p| self.fleet.hotness(&p.to_url(), minute))
            .fold(own, f64::max)
    }

    /// Refresh `keys`: whole-page renders in legacy mode, fragment
    /// renders + recompositions in fragment mode. Both return the
    /// distributed keys and the summed modelled CPU, added to
    /// `nagano_trigger_regen_cpu_ms_total`.
    fn regenerate(&self, keys: &[PageKey]) -> (Vec<PageKey>, f64) {
        match &self.fragments {
            Some(plane) => self.regenerate_fragmented(plane, keys),
            None => self.regenerate_whole(keys),
        }
    }

    /// Fragment-mode refresh: re-render only the dirty *fragments* (in
    /// parallel), replan only the pages whose skeleton the batch
    /// preamble found dirty, and recompose everything else from cached
    /// plans and the store. The partial-regeneration saving (ROADMAP
    /// item 3) is exactly this: one shared fragment renders once and its
    /// hundred embedding pages recompose for static-class cost each.
    fn regenerate_fragmented(
        &self,
        plane: &FragmentPlane,
        keys: &[PageKey],
    ) -> (Vec<PageKey>, f64) {
        if keys.is_empty() {
            return (Vec::new(), 0.0);
        }
        // 1. Dirty fragments: render inner bodies in parallel, refresh
        //    the store, re-register the shared vertex's data edges.
        let fragment_keys: Vec<FragmentKey> = keys
            .iter()
            .filter_map(|k| match k {
                PageKey::Fragment(f) => Some(*f),
                _ => None,
            })
            .collect();
        let rendered: Vec<(FragmentKey, RenderOutput)> = fragment_keys
            .par_iter()
            .map(|&f| (f, self.renderer.render_fragment(f)))
            .collect();
        let mut render_ms: f64 = rendered.iter().map(|(_, out)| out.cost_ms).sum();
        for (f, out) in &rendered {
            let page = PageKey::Fragment(*f);
            self.register_render(page, out);
            plane
                .store
                .put(&page.to_url(), out.body.clone(), out.cost_ms);
        }
        self.stats
            .record_fragments_regenerated(rendered.len() as u64);

        // 2. Replan pages with no surviving plan (skeleton dirty, or
        //    never planned), in parallel.
        let need_plan: FxHashSet<PageKey> = {
            let index = plane.index.lock();
            keys.iter()
                .copied()
                .filter(|k| !index.plans.contains_key(k))
                .collect()
        };
        let new_plans: Vec<Arc<CompositionPlan>> = need_plan
            .iter()
            .copied()
            .collect::<Vec<_>>()
            .par_iter()
            .map(|&k| Arc::new(self.renderer.plan(k)))
            .collect();
        for plan in new_plans {
            render_ms += plan.skeleton_cost_ms();
            self.register_deps(plan.key(), plan.deps());
            plane.index.lock().insert(plan);
        }

        // 3. Recompose and distribute every key in the caller's order.
        let mut regenerated = Vec::with_capacity(keys.len());
        let mut recomposed = 0u64;
        for &key in keys {
            // The preamble planned every key it kept, but defend against
            // a plan dropped between locks: replan instead of panicking.
            let cached = plane.index.lock().plans.get(&key).cloned();
            let (plan, freshly_planned) = match cached {
                Some(p) => (p, false),
                None => {
                    let p = Arc::new(self.renderer.plan(key));
                    render_ms += p.skeleton_cost_ms();
                    self.register_deps(key, p.deps());
                    plane.index.lock().insert(Arc::clone(&p));
                    (p, true)
                }
            };
            // A slot fragment can be missing (invalidated by an earlier
            // batch) without being in this one: render it on demand so a
            // composition never serves a hole.
            for &f in plan.slots() {
                let url = PageKey::Fragment(f).to_url();
                if !plane.store.contains(&url) {
                    let out = self.renderer.render_fragment(f);
                    render_ms += out.cost_ms;
                    self.register_render(PageKey::Fragment(f), &out);
                    plane.store.put(&url, out.body.clone(), out.cost_ms);
                    self.stats.record_fragments_regenerated(1);
                }
            }
            // Slots were ensured just above; a slot evicted in between
            // falls back to a whole-page render rather than panicking.
            let body = match self.compose_from_store(plane, &plan) {
                Some(body) => body,
                None => {
                    let out = self.renderer.render(key);
                    render_ms += out.cost_ms;
                    out.body
                }
            };
            render_ms += plan.compose_cost_ms();
            let cost = plan.skeleton_cost_ms() + plan.compose_cost_ms();
            self.fleet.distribute(&key.to_url(), body, cost);
            if !freshly_planned && !need_plan.contains(&key) && !matches!(key, PageKey::Fragment(_))
            {
                recomposed += 1;
            }
            regenerated.push(key);
        }
        self.stats.record_pages_recomposed(recomposed);
        self.clear_stale_marks(&regenerated);
        self.stats.record_regen_cpu(render_ms);
        (regenerated, render_ms)
    }

    /// Render `keys` in parallel (pure DB reads), then register and
    /// distribute sequentially in the given order.
    fn regenerate_whole(&self, keys: &[PageKey]) -> (Vec<PageKey>, f64) {
        if keys.is_empty() {
            return (Vec::new(), 0.0);
        }
        let rendered: Vec<(PageKey, RenderOutput)> = keys
            .par_iter()
            .map(|&k| (k, self.renderer.render(k)))
            .collect();
        let render_ms: f64 = rendered.iter().map(|(_, out)| out.cost_ms).sum();
        let mut regenerated = Vec::with_capacity(rendered.len());
        for (key, out) in rendered {
            self.register_render(key, &out);
            self.fleet.distribute(&key.to_url(), out.body, out.cost_ms);
            regenerated.push(key);
        }
        self.clear_stale_marks(&regenerated);
        self.stats.record_regen_cpu(render_ms);
        (regenerated, render_ms)
    }

    /// Park hot-but-over-budget pages on the deferred queue. The queue is
    /// capped at [`DEFERRED_CAP`]: overflow beyond the cap sheds to
    /// invalidation (appended to `invalidated`, render cost to
    /// `saved_ms`) so backpressure never turns into unbounded memory.
    /// Every parked page is marked stale — it serves old bytes until a
    /// drain or a later batch refreshes it.
    fn defer(
        &self,
        overflow: Vec<PageKey>,
        now: SimTime,
        invalidated: &mut Vec<PageKey>,
        saved_ms: &mut f64,
    ) -> Vec<PageKey> {
        if overflow.is_empty() {
            return Vec::new();
        }
        let mut deferred = Vec::new();
        let mut shed = 0u64;
        let mut queue = self.deferred.lock();
        for key in overflow {
            self.mark_stale(key, now);
            if queue.contains(&key) {
                // Already queued from an earlier batch; don't double-count.
                continue;
            }
            if queue.len() >= DEFERRED_CAP {
                *saved_ms += self.regen_cost_ms(key);
                self.invalidate_everywhere(key);
                invalidated.push(key);
                shed += 1;
            } else {
                queue.insert(key);
                deferred.push(key);
            }
        }
        self.stats.record_deferred(deferred.len() as u64);
        self.stats.record_deferred_shed(shed);
        self.stats.set_deferred_depth(queue.len() as u64);
        deferred
    }

    /// Drain the hybrid deferred queue at sim time `now`: re-rank the
    /// parked pages by *current* hotness, regenerate hottest-first under
    /// the same per-batch budget, and park the remainder again for the
    /// next tick. Pages refreshed since they were parked (demand fill,
    /// retirement, or a later batch) are dropped without work. Returns
    /// the pages regenerated this tick.
    ///
    /// Any tick with a non-empty queue regenerates at least one page
    /// (strict budget admission), so the queue always drains to empty in
    /// the absence of new updates — bounded catch-up, no regen storm.
    pub fn drain_deferred(&self, now: SimTime) -> Vec<PageKey> {
        let ConsistencyPolicy::Hybrid(cfg) = self.policy else {
            return Vec::new();
        };
        let pending: Vec<PageKey> = {
            let mut queue = self.deferred.lock();
            if queue.is_empty() {
                return Vec::new();
            }
            queue.drain().collect()
        };
        let still_stale: Vec<PageKey> = {
            let marks = self.stale_since.lock();
            pending
                .into_iter()
                .filter(|k| marks.contains_key(k))
                .collect()
        };
        let minute = now.minute_index();
        let mut ranked: Vec<(PageKey, f64)> = still_stale
            .into_iter()
            .map(|k| {
                let hot = self.hotness(k, minute);
                (k, hot)
            })
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

        let budget = cfg.budget_ms();
        let mut selected = Vec::new();
        let mut planned_ms = 0.0;
        let mut requeue = Vec::new();
        for (key, _) in ranked {
            // The first page is admitted unconditionally (even under a
            // zero budget) so every non-empty drain makes progress.
            if selected.is_empty() || budget.is_none_or(|b| planned_ms < b) {
                planned_ms += self.regen_cost_ms(key);
                selected.push(key);
            } else {
                requeue.push(key);
            }
        }
        {
            let mut queue = self.deferred.lock();
            queue.extend(requeue);
            self.stats.set_deferred_depth(queue.len() as u64);
        }
        let (regenerated, _render_ms) = self.regenerate(&selected);
        self.stats.record_drained_regen(regenerated.len() as u64);
        regenerated
    }

    /// Number of pages currently parked on the hybrid deferred queue.
    pub fn deferred_len(&self) -> usize {
        self.deferred.lock().len()
    }

    /// Record that a request for `key` arrived at `now`: if the page is
    /// currently stale-or-missing due to propagation, one traffic-weighted
    /// staleness sample (seconds since it went stale) lands in
    /// `nagano_trigger_weighted_staleness_seconds`. Hot pages therefore
    /// weigh on the histogram in proportion to their traffic.
    pub fn observe_request(&self, key: PageKey, now: SimTime) {
        let since = self.stale_since.lock().get(&key).copied();
        if let Some(t) = since {
            self.stats
                .record_weighted_staleness(now.since(t).as_secs_f64());
        }
    }

    fn mark_stale(&self, key: PageKey, now: SimTime) {
        // Earliest mark wins: a page invalidated twice has been stale
        // since the first drop.
        self.stale_since.lock().entry(key).or_insert(now);
    }

    fn clear_stale_marks(&self, keys: &[PageKey]) {
        if keys.is_empty() {
            return;
        }
        let mut marks = self.stale_since.lock();
        for key in keys {
            marks.remove(key);
        }
    }

    /// The 1996 baseline: find which *content sections* the change touches
    /// (via the same propagation, used only as a section oracle) and
    /// invalidate every dynamic page in those sections.
    fn process_conservative(&self, txns: &[&Transaction]) -> TxnOutcome {
        let (affected_pages, visited) = {
            let mut g = self.graph.lock();
            let changed: Vec<NodeId> = txns
                .iter()
                .flat_map(|t| t.changes.iter())
                .filter_map(|c| g.names.get(&c.data_key))
                .collect();
            let prop = g.dup.propagate_ids(&changed);
            let pages: Vec<PageKey> = prop
                .stale
                .iter()
                .chain(prop.tolerated.iter())
                .filter_map(|&(id, _)| {
                    g.names
                        .name(id)
                        .and_then(|n| n.strip_prefix("page:"))
                        .and_then(PageKey::parse)
                })
                .collect();
            (pages, prop.visited)
        };
        let sections: FxHashSet<&'static str> =
            affected_pages.iter().map(|k| k.category()).collect();
        let mut invalidated = Vec::new();
        for (key, meta) in self.registry.pages() {
            if meta.dynamic && sections.contains(key.category()) {
                self.fleet.invalidate_everywhere(&key.to_url());
                invalidated.push(*key);
            }
        }
        TxnOutcome {
            latency: modeled_latency(visited, invalidated.len(), 0.0),
            invalidated,
            visited,
            ..Default::default()
        }
    }

    /// Highest transaction id processed so far (0 before any work). A
    /// restarted monitor resumes from here: everything in the site's
    /// replicated log after this id is replayed by
    /// [`TriggerMonitor::recover`].
    pub fn watermark(&self) -> u64 {
        self.watermark.load(Relaxed)
    }

    /// Crash/restart recovery: re-run DUP over the transactions missed
    /// while the monitor was down. `missed` is the tail of the site's
    /// replicated log; anything at or below the watermark is skipped, the
    /// rest is processed as **one** batch (a single propagation), which
    /// rewarms (update-in-place) or invalidates every affected page so no
    /// stale entry survives the outage. Increments
    /// `nagano_trigger_recoveries_total`.
    pub fn recover(&self, missed: &[impl std::borrow::Borrow<Transaction>]) -> TxnOutcome {
        self.recover_at(missed, SimTime::ZERO)
    }

    /// [`TriggerMonitor::recover`] with an explicit sim clock, so pages
    /// invalidated during replay are stale-marked at the recovery time
    /// rather than time zero.
    pub fn recover_at(
        &self,
        missed: &[impl std::borrow::Borrow<Transaction>],
        now: SimTime,
    ) -> TxnOutcome {
        let watermark = self.watermark.load(Relaxed);
        let fresh: Vec<&Transaction> = missed
            .iter()
            .map(|t| t.borrow())
            .filter(|t| t.id.0 > watermark)
            .collect();
        let outcome = self.process_batch_at(&fresh, now);
        self.stats.record_recovery();
        outcome
    }

    /// Retire a page: drop it from every serving cache and remove its
    /// object vertex (with all incident edges) from the ODG, so future
    /// propagations no longer touch it. The production site retired
    /// CBS-feed fragments and per-day pages after the Games; "ODGs are
    /// constantly changing" covers removal as much as addition.
    ///
    /// Returns whether the page was known to the graph.
    pub fn retire_page(&self, key: PageKey) -> bool {
        if let Some(plane) = &self.fragments {
            plane.index.lock().remove(key);
        }
        self.invalidate_everywhere(key);
        // A retired page is gone on purpose, not stale: drop any pending
        // mark or deferred regeneration.
        self.stale_since.lock().remove(&key);
        {
            let mut queue = self.deferred.lock();
            queue.remove(&key);
            self.stats.set_deferred_depth(queue.len() as u64);
        }
        let mut g = self.graph.lock();
        match g.names.get(&key.object_key()) {
            Some(id) => g.dup.graph_mut().remove_node(id).is_ok(),
            None => false,
        }
    }

    /// Demand-miss path used by server programs: render `key`, register
    /// its dependencies, and fill **one** serving cache (the node that
    /// took the miss). Returns the rendered output.
    pub fn demand_fill(&self, node: usize, key: PageKey) -> RenderOutput {
        let fill = self.demand_fill_rich(node, key);
        RenderOutput {
            body: fill.body,
            deps: fill.deps,
            cost_ms: fill.cost_ms,
        }
    }

    /// [`TriggerMonitor::demand_fill`] keeping the fragment-mode rope:
    /// `parts`, when present, go to the vectored writer untouched, so a
    /// miss response never flattens the composition either.
    pub fn demand_fill_rich(&self, node: usize, key: PageKey) -> DemandFill {
        let Some(plane) = &self.fragments else {
            let out = self.renderer.render(key);
            self.register_render(key, &out);
            self.fleet
                .put_local(node, &key.to_url(), out.body.clone(), out.cost_ms);
            // The page is fresh again (at least where the miss landed);
            // the staleness clock stops for it.
            self.stale_since.lock().remove(&key);
            return DemandFill {
                body: out.body,
                parts: None,
                deps: out.deps,
                cost_ms: out.cost_ms,
            };
        };
        let mut cost_ms = 0.0;
        // Bound separately: a `match` scrutinee's lock temporary would
        // live across the arms, and the `None` arm re-locks the index.
        let existing = plane.index.lock().plans.get(&key).cloned();
        let plan = match existing {
            Some(p) => p,
            None => {
                // No surviving plan: the skeleton is (or may be) dirty —
                // replan, which also re-registers the page's edges.
                let p = Arc::new(self.renderer.plan(key));
                cost_ms += p.skeleton_cost_ms();
                self.register_deps(key, p.deps());
                plane.index.lock().insert(Arc::clone(&p));
                p
            }
        };
        // A demand fill promises fresh bytes (the legacy path re-renders
        // everything): refresh any slot fragment that is missing from
        // the store or carries a stale mark.
        for &f in plan.slots() {
            let fkey = PageKey::Fragment(f);
            let url = fkey.to_url();
            let stale = self.stale_since.lock().contains_key(&fkey);
            if stale || !plane.store.contains(&url) {
                let out = self.renderer.render_fragment(f);
                cost_ms += out.cost_ms;
                self.register_render(fkey, &out);
                plane.store.put(&url, out.body.clone(), out.cost_ms);
                self.stats.record_fragments_regenerated(1);
                self.stale_since.lock().remove(&fkey);
            }
        }
        let composed = plan.compose_parts(|f| {
            plane
                .store
                .peek(&PageKey::Fragment(f).to_url())
                .map(|e| e.body)
        });
        // Slots were refreshed just above; should one vanish anyway (a
        // concurrent store eviction), serve a whole-page render — a
        // demand fill must never fail a request.
        let Some(rope) = composed else {
            let out = self.renderer.render(key);
            cost_ms += out.cost_ms;
            self.register_render(key, &out);
            self.fleet
                .put_local(node, &key.to_url(), out.body.clone(), out.cost_ms);
            self.stale_since.lock().remove(&key);
            return DemandFill {
                body: out.body,
                parts: None,
                deps: out.deps,
                cost_ms,
            };
        };
        cost_ms += plan.compose_cost_ms();
        let body = rope.to_bytes();
        self.fleet.put_local(
            node,
            &key.to_url(),
            body.clone(),
            plan.skeleton_cost_ms() + plan.compose_cost_ms(),
        );
        self.stale_since.lock().remove(&key);
        DemandFill {
            body,
            parts: Some(rope.parts),
            deps: plan.deps().to_vec(),
            cost_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nagano_cache::CacheConfig;
    use nagano_db::{seed_games, AthleteId, GamesConfig, OlympicDb};

    fn setup(policy: ConsistencyPolicy) -> (Arc<OlympicDb>, TriggerMonitor) {
        let db = Arc::new(OlympicDb::new());
        seed_games(&db, &GamesConfig::small());
        let registry = Arc::new(PageRegistry::build(&db, 16));
        let fleet = Arc::new(CacheFleet::new(2, CacheConfig::default()));
        let monitor = TriggerMonitor::new(Renderer::new(Arc::clone(&db)), fleet, registry, policy);
        (db, monitor)
    }

    fn podium(db: &OlympicDb, event: nagano_db::EventId) -> Vec<(AthleteId, f64)> {
        let ev = db.event(event).unwrap();
        db.athletes_of_sport(ev.sport)
            .iter()
            .take(5)
            .enumerate()
            .map(|(i, a)| (a.id, 100.0 - i as f64))
            .collect()
    }

    #[test]
    fn prewarm_fills_every_dynamic_page_and_builds_the_graph() {
        let (_db, monitor) = setup(ConsistencyPolicy::UpdateInPlace);
        let warmed = monitor.prewarm();
        assert!(warmed > 50);
        let fleet = monitor.fleet();
        assert_eq!(fleet.member(0).len(), warmed);
        assert_eq!(fleet.member(1).len(), warmed);
        let (nodes, edges) = monitor.graph_size();
        assert!(nodes > warmed, "graph has data + object nodes");
        assert!(edges > 0);
    }

    #[test]
    fn update_in_place_regenerates_affected_pages() {
        let (db, monitor) = setup(ConsistencyPolicy::UpdateInPlace);
        monitor.prewarm();
        let ev = db.events()[0].clone();
        let url = PageKey::Event(ev.id).to_url();
        let before = monitor.fleet().member(0).peek(&url).unwrap();
        let txn = db.record_results(ev.id, &podium(&db, ev.id), true, ev.day);
        let outcome = monitor.process_txn(&txn);
        assert!(outcome.regenerated.contains(&PageKey::Event(ev.id)));
        assert!(outcome.regenerated.contains(&PageKey::Fragment(
            nagano_pagegen::FragmentKey::ResultTable(ev.id)
        )));
        assert!(outcome.regenerated.contains(&PageKey::Medals));
        assert!(outcome.regenerated.contains(&PageKey::Home(ev.day)));
        assert!(outcome.invalidated.is_empty());
        // Cache entry was replaced in place with new content, not dropped.
        let after = monitor.fleet().member(0).peek(&url).unwrap();
        assert!(after.version > before.version);
        assert_ne!(after.body, before.body);
        // Both fleet members updated.
        let after1 = monitor.fleet().member(1).peek(&url).unwrap();
        assert_eq!(after1.body, after.body);
    }

    #[test]
    fn results_fan_out_to_athlete_and_country_pages() {
        let (db, monitor) = setup(ConsistencyPolicy::UpdateInPlace);
        monitor.prewarm();
        let ev = db.events()[0].clone();
        let placements = podium(&db, ev.id);
        let txn = db.record_results(ev.id, &placements, true, ev.day);
        let outcome = monitor.process_txn(&txn);
        // Every placed athlete's page regenerates; so do their countries'.
        for (a, _) in &placements {
            assert!(
                outcome.regenerated.contains(&PageKey::Athlete(*a)),
                "athlete {a:?} not regenerated"
            );
        }
        let country = db.athlete(placements[0].0).unwrap().country;
        assert!(outcome.regenerated.contains(&PageKey::Country(country)));
        // The update affects tens of pages — the paper's "one typical
        // update ... affected 128 pages" effect at small scale.
        assert!(outcome.affected() >= 10, "affected {}", outcome.affected());
    }

    #[test]
    fn invalidate_policy_drops_pages() {
        let (db, monitor) = setup(ConsistencyPolicy::Invalidate);
        monitor.prewarm();
        let ev = db.events()[0].clone();
        let url = PageKey::Event(ev.id).to_url();
        assert!(monitor.fleet().member(0).peek(&url).is_some());
        let txn = db.record_results(ev.id, &podium(&db, ev.id), true, ev.day);
        let outcome = monitor.process_txn(&txn);
        assert!(outcome.regenerated.is_empty());
        assert!(outcome.invalidated.contains(&PageKey::Event(ev.id)));
        assert!(monitor.fleet().member(0).peek(&url).is_none());
        assert!(monitor.fleet().member(1).peek(&url).is_none());
    }

    #[test]
    fn conservative_invalidates_whole_sections() {
        let (db, monitor) = setup(ConsistencyPolicy::Conservative96);
        monitor.prewarm();
        let ev = db.events()[0].clone();
        let txn = db.record_results(ev.id, &podium(&db, ev.id), true, ev.day);
        let precise = {
            // For comparison: what precise DUP would have touched.
            let (db2, m2) = setup(ConsistencyPolicy::UpdateInPlace);
            m2.prewarm();
            let ev2 = db2.events()[0].clone();
            let txn2 = db2.record_results(ev2.id, &podium(&db2, ev2.id), true, ev2.day);
            m2.process_txn(&txn2).affected()
        };
        let outcome = monitor.process_txn(&txn);
        assert!(
            outcome.invalidated.len() > precise * 2,
            "conservative {} vs precise {}",
            outcome.invalidated.len(),
            precise
        );
        // Every Sports-section page is gone, touched or not.
        let untouched_event = db.events().last().unwrap().id;
        assert!(monitor
            .fleet()
            .member(0)
            .peek(&PageKey::Event(untouched_event).to_url())
            .is_none());
    }

    #[test]
    fn changes_to_unknown_data_are_noops() {
        let (db, monitor) = setup(ConsistencyPolicy::UpdateInPlace);
        monitor.prewarm();
        // A photo nobody depends on yet.
        let txn = db.add_photo(nagano_db::Photo {
            id: nagano_db::PhotoId(999),
            day: 1,
            about_event: None,
            bytes: 1000,
        });
        let outcome = monitor.process_txn(&txn);
        assert_eq!(outcome.affected(), 0);
    }

    #[test]
    fn demand_fill_is_local_and_registers_deps() {
        let (db, monitor) = setup(ConsistencyPolicy::Invalidate);
        let key = PageKey::Event(db.events()[0].id);
        monitor.demand_fill(0, key);
        assert!(monitor.fleet().member(0).peek(&key.to_url()).is_some());
        assert!(monitor.fleet().member(1).peek(&key.to_url()).is_none());
        let (nodes, edges) = monitor.graph_size();
        assert!(nodes >= 2 && edges >= 1);
    }

    #[test]
    fn retired_pages_leave_the_graph_and_caches() {
        let (db, monitor) = setup(ConsistencyPolicy::UpdateInPlace);
        monitor.prewarm();
        let ev = db.events()[0].clone();
        let key = PageKey::Event(ev.id);
        let (nodes_before, edges_before) = monitor.graph_size();
        assert!(monitor.retire_page(key));
        assert!(monitor.fleet().member(0).peek(&key.to_url()).is_none());
        let (nodes_after, edges_after) = monitor.graph_size();
        assert_eq!(nodes_after, nodes_before - 1);
        assert!(edges_after < edges_before);
        // Future updates no longer regenerate the retired page.
        let txn = db.record_results(ev.id, &podium(&db, ev.id), true, ev.day);
        let outcome = monitor.process_txn(&txn);
        assert!(!outcome.regenerated.contains(&key));
        assert!(monitor.fleet().member(0).peek(&key.to_url()).is_none());
        // Other affected pages still regenerate.
        assert!(outcome.regenerated.contains(&PageKey::Medals));
        // Retiring again (or an unknown page) reports false.
        assert!(!monitor.retire_page(key));
        // A retired page can come back via a demand fill, which re-links
        // its dependencies.
        monitor.demand_fill(0, key);
        assert!(monitor.fleet().member(0).peek(&key.to_url()).is_some());
        let txn = db.record_results(ev.id, &podium(&db, ev.id), false, ev.day);
        let outcome = monitor.process_txn(&txn);
        assert!(
            outcome.regenerated.contains(&key),
            "re-registered after refill"
        );
    }

    #[test]
    fn stats_accumulate_over_txns() {
        let (db, monitor) = setup(ConsistencyPolicy::UpdateInPlace);
        monitor.prewarm();
        let ev = db.events()[0].clone();
        for i in 0..3 {
            let txn = db.record_results(ev.id, &podium(&db, ev.id), i == 2, ev.day);
            monitor.process_txn(&txn);
        }
        let s = monitor.stats().snapshot();
        assert_eq!(s.txns, 3);
        assert!(s.pages_regenerated > 0);
        assert!(s.nodes_visited > 0);
        assert!(s.latency_count == 3);
        assert!(s.max_latency_ms() >= s.mean_latency_ms());
    }

    #[test]
    fn batch_processing_coalesces_regeneration() {
        let (db, monitor) = setup(ConsistencyPolicy::UpdateInPlace);
        monitor.prewarm();
        let ev = db.events()[0].clone();
        // Three bursts of results for the same event.
        let txns: Vec<_> = (0..3)
            .map(|i| db.record_results(ev.id, &podium(&db, ev.id), i == 2, ev.day))
            .collect();
        let batch = monitor.process_batch(&txns);
        // One propagation: the event page appears exactly once.
        let event_count = batch
            .regenerated
            .iter()
            .filter(|&&k| k == PageKey::Event(ev.id))
            .count();
        assert_eq!(event_count, 1);
        assert_eq!(monitor.stats().snapshot().txns, 1, "one batched record");

        // Processing the same bursts individually regenerates at least as
        // many pages in total.
        let (db2, monitor2) = setup(ConsistencyPolicy::UpdateInPlace);
        monitor2.prewarm();
        let ev2 = db2.events()[0].clone();
        let mut individual = 0;
        for i in 0..3 {
            let txn = db2.record_results(ev2.id, &podium(&db2, ev2.id), i == 2, ev2.day);
            individual += monitor2.process_txn(&txn).regenerated.len();
        }
        assert!(
            individual >= batch.regenerated.len(),
            "batch {} vs individual {individual}",
            batch.regenerated.len()
        );
        // Empty batch is a no-op.
        let empty: Vec<Arc<nagano_db::Transaction>> = Vec::new();
        assert_eq!(monitor.process_batch(&empty).affected(), 0);
    }

    #[test]
    fn watermark_tracks_the_highest_processed_txn() {
        let (db, monitor) = setup(ConsistencyPolicy::UpdateInPlace);
        monitor.prewarm();
        assert_eq!(monitor.watermark(), 0);
        let ev = db.events()[0].clone();
        let t1 = db.record_results(ev.id, &podium(&db, ev.id), false, ev.day);
        let t2 = db.record_results(ev.id, &podium(&db, ev.id), true, ev.day);
        monitor.process_txn(&t1);
        assert_eq!(monitor.watermark(), t1.id.0);
        monitor.process_txn(&t2);
        assert_eq!(monitor.watermark(), t2.id.0);
        // Replaying an old transaction never regresses the watermark.
        monitor.process_txn(&t1);
        assert_eq!(monitor.watermark(), t2.id.0);
    }

    #[test]
    fn recover_replays_missed_txns_and_rewarms_the_fleet() {
        let (db, monitor) = setup(ConsistencyPolicy::UpdateInPlace);
        monitor.prewarm();
        let ev = db.events()[0].clone();
        let url = PageKey::Event(ev.id).to_url();
        let before = monitor.fleet().member(0).peek(&url).unwrap();
        // The monitor processes t1, then "crashes"; t2 and t3 commit
        // while it is down.
        let t1 = db.record_results(ev.id, &podium(&db, ev.id), false, ev.day);
        monitor.process_txn(&t1);
        let after_t1 = monitor.fleet().member(0).peek(&url).unwrap();
        let t2 = db.record_results(ev.id, &podium(&db, ev.id), false, ev.day);
        let t3 = db.record_results(ev.id, &podium(&db, ev.id), true, ev.day);
        // Restart: replay the log tail. t1 is at the watermark and must
        // be skipped; t2/t3 are processed as one batch.
        let missed = vec![t1, t2, t3];
        let outcome = monitor.recover(&missed);
        assert!(outcome.regenerated.contains(&PageKey::Event(ev.id)));
        let after = monitor.fleet().member(0).peek(&url).unwrap();
        assert!(after.version > after_t1.version, "page rewarmed");
        assert!(after.version > before.version);
        assert_eq!(monitor.watermark(), missed[2].id.0);
        let s = monitor.stats().snapshot();
        assert_eq!(s.recoveries, 1);
        // t1's processing + one batched recovery record.
        assert_eq!(s.txns, 2);
        // Recovering with nothing new still counts (a clean restart).
        let outcome = monitor.recover(&missed);
        assert_eq!(outcome.affected(), 0);
        assert_eq!(monitor.stats().snapshot().recoveries, 2);
    }

    #[test]
    fn recover_under_invalidate_leaves_no_stale_entry() {
        let (db, monitor) = setup(ConsistencyPolicy::Invalidate);
        monitor.prewarm();
        let ev = db.events()[0].clone();
        let url = PageKey::Event(ev.id).to_url();
        assert!(monitor.fleet().member(0).peek(&url).is_some());
        // Commit while the monitor is down, then recover.
        let txn = db.record_results(ev.id, &podium(&db, ev.id), true, ev.day);
        let outcome = monitor.recover(&[txn]);
        assert!(outcome.invalidated.contains(&PageKey::Event(ev.id)));
        assert!(
            monitor.fleet().member(0).peek(&url).is_none(),
            "stale page must not survive recovery"
        );
    }

    /// Drive enough traffic at `urls` (via fleet member 0) that they are
    /// tracked hot as of minute 1.
    fn heat_pages(monitor: &TriggerMonitor, urls: &[String], hits: usize) {
        for url in urls {
            for _ in 0..hits {
                monitor.fleet().get_from(0, url);
            }
        }
        monitor.fleet().fold_hotness(1);
    }

    #[test]
    fn hybrid_regenerates_hot_and_invalidates_cold() {
        let (db, monitor) = setup(ConsistencyPolicy::hybrid(0.5, None));
        monitor.prewarm();
        let ev = db.events()[0].clone();
        // Make the event page (and a couple of fan-out targets) hot; the
        // rest of the affected set stays cold.
        let hot_urls = vec![
            PageKey::Event(ev.id).to_url(),
            PageKey::Medals.to_url(),
            PageKey::Home(ev.day).to_url(),
        ];
        heat_pages(&monitor, &hot_urls, 10);
        let txn = db.record_results(ev.id, &podium(&db, ev.id), true, ev.day);
        let outcome = monitor.process_txn_at(&txn, SimTime::from_mins(2));
        assert!(outcome.regenerated.contains(&PageKey::Event(ev.id)));
        assert!(outcome.regenerated.contains(&PageKey::Medals));
        assert!(
            !outcome.invalidated.is_empty(),
            "cold tail should be invalidated"
        );
        // Hot pages were replaced in place, never missing.
        assert!(monitor
            .fleet()
            .member(0)
            .peek(&PageKey::Event(ev.id).to_url())
            .is_some());
        // Cold pages are gone until demand refills them.
        let cold = outcome.invalidated[0];
        assert!(monitor.fleet().member(0).peek(&cold.to_url()).is_none());
        let snap = monitor.stats().snapshot();
        assert!(snap.regen_cpu_ms > 0);
        assert!(snap.regen_saved_ms > 0, "cold invalidations save CPU");
    }

    #[test]
    fn hybrid_budget_defers_overflow_and_drains_it() {
        // Everything is hot (fraction 1.0) but the budget is tiny, so most
        // of the affected set lands on the deferred queue.
        let (db, monitor) = setup(ConsistencyPolicy::hybrid(1.0, Some(1)));
        monitor.prewarm();
        let ev = db.events()[0].clone();
        let txn = db.record_results(ev.id, &podium(&db, ev.id), true, ev.day);
        let now = SimTime::from_mins(2);
        let outcome = monitor.process_txn_at(&txn, now);
        // Strict admission: at least one page regenerates per batch.
        assert!(!outcome.regenerated.is_empty());
        assert!(!outcome.deferred.is_empty(), "budget overflow must defer");
        assert!(outcome.invalidated.is_empty(), "nothing is cold");
        assert_eq!(monitor.deferred_len(), outcome.deferred.len());
        assert_eq!(
            monitor.stats().snapshot().pages_deferred,
            outcome.deferred.len() as u64
        );
        // The FIFO depth gauge tracks the live queue; nothing hit the cap.
        assert_eq!(
            monitor.stats().snapshot().deferred_depth,
            outcome.deferred.len() as u64
        );
        assert_eq!(monitor.stats().snapshot().deferred_shed, 0);
        // Deferred pages keep serving stale bytes (update-in-place never
        // dropped them) and carry a stale mark.
        let parked = outcome.deferred[0];
        assert!(monitor.fleet().member(0).peek(&parked.to_url()).is_some());
        monitor.observe_request(parked, now + SimDuration::from_mins(3));
        assert_eq!(monitor.stats().snapshot().weighted_staleness_count, 1);
        // Ticking the drain clears the queue completely in finite time.
        let mut drained = Vec::new();
        let mut tick = now;
        while monitor.deferred_len() > 0 {
            tick += SimDuration::from_mins(1);
            let got = monitor.drain_deferred(tick);
            assert!(!got.is_empty(), "non-empty queue must make progress");
            drained.extend(got);
        }
        let mut expected: Vec<PageKey> = outcome.deferred.clone();
        expected.sort();
        drained.sort();
        assert_eq!(drained, expected);
        // Regenerated pages lose their stale marks: a later request
        // records no staleness sample.
        monitor.observe_request(parked, tick + SimDuration::from_mins(1));
        assert_eq!(monitor.stats().snapshot().weighted_staleness_count, 1);
        // An empty queue drains to nothing, and the depth gauge went back
        // to zero with the last requeue.
        assert!(monitor.drain_deferred(tick).is_empty());
        assert_eq!(monitor.stats().snapshot().deferred_depth, 0);
    }

    #[test]
    fn hybrid_priority_is_hottest_first() {
        let (db, monitor) = setup(ConsistencyPolicy::hybrid(1.0, Some(1)));
        monitor.prewarm();
        let ev = db.events()[0].clone();
        // Medals is the hottest affected page by a wide margin.
        heat_pages(&monitor, &[PageKey::Medals.to_url()], 50);
        let txn = db.record_results(ev.id, &podium(&db, ev.id), true, ev.day);
        let outcome = monitor.process_txn_at(&txn, SimTime::from_mins(2));
        assert_eq!(
            outcome.regenerated.first(),
            Some(&PageKey::Medals),
            "hottest page must be admitted first"
        );
    }

    #[test]
    fn hybrid_cold_pages_accrue_weighted_staleness_until_refilled() {
        let (db, monitor) = setup(ConsistencyPolicy::hybrid(0.0, None));
        monitor.prewarm();
        let ev = db.events()[0].clone();
        let key = PageKey::Event(ev.id);
        let t0 = SimTime::from_mins(10);
        let txn = db.record_results(ev.id, &podium(&db, ev.id), true, ev.day);
        let outcome = monitor.process_txn_at(&txn, t0);
        assert!(outcome.invalidated.contains(&key));
        // Two requests at +60s and +120s observe 60 and 120 stale-seconds.
        monitor.observe_request(key, t0 + SimDuration::from_secs(60));
        monitor.observe_request(key, t0 + SimDuration::from_secs(120));
        let snap = monitor.stats().snapshot();
        assert_eq!(snap.weighted_staleness_count, 2);
        assert!(
            (snap.weighted_staleness_sum_secs - 180.0).abs() / 180.0 < 0.1,
            "sum {}",
            snap.weighted_staleness_sum_secs
        );
        // A demand fill stops the clock.
        monitor.demand_fill(0, key);
        monitor.observe_request(key, t0 + SimDuration::from_mins(60));
        assert_eq!(monitor.stats().snapshot().weighted_staleness_count, 2);
    }

    fn setup_fragmented(
        policy: ConsistencyPolicy,
    ) -> (Arc<OlympicDb>, TriggerMonitor, TriggerMonitor) {
        // A fragment-mode monitor and a legacy monitor over the SAME db,
        // with separate fleets, for equivalence checks.
        let db = Arc::new(OlympicDb::new());
        seed_games(&db, &GamesConfig::small());
        let registry = Arc::new(PageRegistry::build(&db, 16));
        let fragmented = TriggerMonitor::new(
            Renderer::new(Arc::clone(&db)),
            Arc::new(CacheFleet::new(2, CacheConfig::default())),
            Arc::clone(&registry),
            policy,
        )
        .with_fragments(Arc::new(nagano_cache::FragmentStore::new()));
        let legacy = TriggerMonitor::new(
            Renderer::new(Arc::clone(&db)),
            Arc::new(CacheFleet::new(2, CacheConfig::default())),
            registry,
            policy,
        );
        (db, fragmented, legacy)
    }

    #[test]
    fn fragment_prewarm_matches_legacy_bodies_exactly() {
        let (_db, fragmented, legacy) = setup_fragmented(ConsistencyPolicy::UpdateInPlace);
        assert!(fragmented.fragment_mode());
        assert!(!legacy.fragment_mode());
        let n1 = fragmented.prewarm();
        let n2 = legacy.prewarm();
        assert_eq!(n1, n2);
        for (url, body, _cost, _version) in legacy.fleet().member(0).export_entries() {
            let composed = fragmented
                .fleet()
                .member(0)
                .peek(&url)
                .unwrap_or_else(|| panic!("{url} missing from fragment-mode fleet"));
            assert_eq!(composed.body, body, "{url}: body diverges");
        }
        assert!(!fragmented.fragment_store().unwrap().is_empty());
    }

    #[test]
    fn fragment_update_in_place_stays_byte_equivalent_after_txns() {
        let (db, fragmented, legacy) = setup_fragmented(ConsistencyPolicy::UpdateInPlace);
        fragmented.prewarm();
        legacy.prewarm();
        let ev = db.events()[0].clone();
        for i in 0..3 {
            let txn = db.record_results(ev.id, &podium(&db, ev.id), i == 2, ev.day);
            let a = fragmented.process_txn(&txn);
            let b = legacy.process_txn(&txn);
            let sorted = |mut v: Vec<PageKey>| {
                v.sort();
                v
            };
            assert_eq!(
                sorted(a.regenerated.clone()),
                sorted(b.regenerated.clone()),
                "stale sets diverge"
            );
        }
        for (url, body, _cost, _version) in legacy.fleet().member(0).export_entries() {
            let composed = fragmented.fleet().member(0).peek(&url).unwrap();
            assert_eq!(composed.body, body, "{url}: body diverges");
        }
    }

    #[test]
    fn fragment_mode_renders_one_fragment_and_recomposes_embedders() {
        let (db, monitor, _) = setup_fragmented(ConsistencyPolicy::UpdateInPlace);
        monitor.prewarm();
        let before = monitor.stats().snapshot();
        let ev = db.events()[0].clone();
        // A non-final result touches data:event:N plus data:today:{day}:
        // under strict UIP exactly the ResultTable and that day's
        // Headlines fragments re-render; embedding pages recompose.
        let txn = db.record_results(ev.id, &podium(&db, ev.id), false, ev.day);
        let outcome = monitor.process_txn(&txn);
        assert!(outcome
            .regenerated
            .contains(&PageKey::Fragment(FragmentKey::ResultTable(ev.id))));
        assert!(outcome
            .regenerated
            .contains(&PageKey::Fragment(FragmentKey::Headlines(ev.day))));
        let after = monitor.stats().snapshot();
        assert_eq!(
            after.fragments_regenerated - before.fragments_regenerated,
            2,
            "exactly the two dirty fragments re-render"
        );
        assert!(
            after.pages_recomposed > before.pages_recomposed,
            "embedding pages recompose"
        );
    }

    #[test]
    fn fragment_invalidate_drops_store_entries_and_demand_fill_restores() {
        let (db, monitor, _) = setup_fragmented(ConsistencyPolicy::Invalidate);
        monitor.prewarm();
        let ev = db.events()[0].clone();
        let frag = PageKey::Fragment(nagano_pagegen::FragmentKey::ResultTable(ev.id));
        let store = Arc::clone(monitor.fragment_store().unwrap());
        assert!(store.contains(&frag.to_url()));
        let txn = db.record_results(ev.id, &podium(&db, ev.id), true, ev.day);
        let outcome = monitor.process_txn(&txn);
        assert!(outcome.invalidated.contains(&frag));
        assert!(
            !store.contains(&frag.to_url()),
            "stale fragment must leave the store"
        );
        // A demand miss on an embedding page restores the fragment and
        // serves bytes identical to a whole-page render.
        let fill = monitor.demand_fill_rich(0, PageKey::Event(ev.id));
        assert!(store.contains(&frag.to_url()));
        assert!(fill.parts.is_some());
        let legacy = Renderer::new(Arc::clone(&db)).render(PageKey::Event(ev.id));
        assert_eq!(fill.body, legacy.body);
    }

    #[test]
    fn fragment_hotness_inherits_from_embedding_pages() {
        let (db, monitor, _) = setup_fragmented(ConsistencyPolicy::hybrid(0.5, None));
        monitor.prewarm();
        let ev = db.events()[0].clone();
        // Heat ONLY the medals page; its MedalTable fragment is never
        // fetched by URL, yet must rank hot enough to regenerate.
        heat_pages(&monitor, &[PageKey::Medals.to_url()], 50);
        let txn = db.record_results(ev.id, &podium(&db, ev.id), true, ev.day);
        let outcome = monitor.process_txn_at(&txn, SimTime::from_mins(2));
        let medal_frag = PageKey::Fragment(nagano_pagegen::FragmentKey::MedalTable);
        assert!(
            outcome.regenerated.contains(&medal_frag),
            "shared fragment must inherit embedder hotness; regenerated {:?}",
            outcome.regenerated
        );
        assert!(outcome.regenerated.contains(&PageKey::Medals));
    }

    #[test]
    fn threshold_staleness_tolerates_soft_dependencies() {
        let (db, monitor) = setup(ConsistencyPolicy::UpdateInPlace);
        monitor.prewarm();
        // Tolerate anything accumulating less than 0.5: country pages'
        // medal-box dependency is weighted 0.25.
        monitor.set_staleness_policy(StalenessPolicy::Threshold(0.5));
        let ev = db.events()[0].clone();
        let txn = db.record_results(ev.id, &podium(&db, ev.id), true, ev.day);
        let outcome = monitor.process_txn(&txn);
        assert!(
            !outcome.tolerated.is_empty(),
            "some pages should be tolerated as slightly stale"
        );
        // Directly-hit pages still regenerate.
        assert!(outcome.regenerated.contains(&PageKey::Event(ev.id)));
        // Tolerated pages were *not* regenerated.
        for t in &outcome.tolerated {
            assert!(!outcome.regenerated.contains(t));
        }
    }
}
